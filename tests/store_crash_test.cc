/**
 * @file
 * Crash-consistency sweep for the persistent segment store.
 *
 * The store counts its durable operations (journal appends and
 * crash-atomic file publishes) from zero. One sweep iteration injects a
 * crash at exactly operation k — the write is torn at a seed-derived
 * byte length and every later operation aborts — then re-opens the
 * directory without faults and checks the recovery guarantee:
 *
 *   - every operation that reported success before the crash is
 *     exactly preserved (committed appends decode bit-identical,
 *     acknowledged retirements stay retired);
 *   - no corrupt batch is ever served — every live segment decodes to
 *     precisely the generator's partition;
 *   - torn temp files and unsealed segment files are removed;
 *   - recovering again changes nothing (idempotence).
 *
 * Sweeping k over the workload's full operation count visits every
 * crash window the workload has, including mid-append, mid-publish,
 * mid-compaction, mid-retire, and mid-checkpoint.
 */
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "common/fault_injector.h"
#include "datagen/generator.h"
#include "service/dataset_catalog.h"
#include "store/segment_store.h"

namespace presto {
namespace {

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    return cfg;
}

std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    ::system(("rm -rf " + dir).c_str());
    EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
    return dir;
}

std::vector<std::string>
listDir(const std::string& dir)
{
    std::vector<std::string> names;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr)
        return names;
    while (struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..")
            names.push_back(name);
    }
    ::closedir(d);
    return names;
}

/** What the workload knows it accomplished before the injected crash. */
struct WorkloadOutcome {
    std::set<uint64_t> committed;  ///< partitions whose append returned ok
    std::set<uint64_t> retired;    ///< partitions whose retire returned ok
    bool crashed = false;
    uint64_t durable_ops = 0;
};

/** ok = keep going; kAborted = the injected crash fired; else = bug. */
bool
stepOk(const Status& st, WorkloadOutcome& out)
{
    if (st.ok())
        return true;
    EXPECT_EQ(st.code(), StatusCode::kAborted) << st.message();
    out.crashed = true;
    return false;
}

/**
 * A workload touching every durable-op kind: four appends (one
 * deliberately fat so compaction has work), one compaction, one
 * retirement, one journal checkpoint.
 */
WorkloadOutcome
runWorkload(const std::string& dir, const FaultInjector* faults)
{
    WorkloadOutcome out;
    RawDataGenerator gen(smallConfig());

    SegmentStoreOptions opt;
    opt.directory = dir;
    opt.faults = faults;
    auto store = SegmentStore::open(opt);
    if (!store.ok()) {
        EXPECT_EQ(store.status().code(), StatusCode::kAborted)
            << store.status().message();
        out.crashed = true;
        return out;
    }

    WriterOptions fat;
    fat.force_plain = true;
    fat.codec = PageCodec::kNone;
    const auto fat_psf =
        ColumnarFileWriter(fat).write(gen.generatePartition(0), 0);
    for (uint64_t pid = 0; pid < 4; ++pid) {
        auto id = pid == 0
                      ? (*store)->appendEncoded(fat_psf, 0)
                      : (*store)->appendPartition(gen.generatePartition(pid),
                                                  pid);
        if (!stepOk(id.status(), out)) {
            out.durable_ops = (*store)->durableOps();
            return out;
        }
        out.committed.insert(pid);
    }

    auto compacted = (*store)->compactOnce();
    if (!stepOk(compacted.status(), out)) {
        out.durable_ops = (*store)->durableOps();
        return out;
    }
    EXPECT_NE(*compacted, 0u);  // the fat segment shrinks under LZ

    auto victim = (*store)->segmentForPartition(2);
    EXPECT_TRUE(victim.ok());
    if (victim.ok() &&
        stepOk((*store)->retireSegment(victim->meta.segment_id), out)) {
        out.retired.insert(2);
    } else if (out.crashed) {
        out.durable_ops = (*store)->durableOps();
        return out;
    }

    (void)stepOk((*store)->checkpointJournal(), out);
    out.durable_ops = (*store)->durableOps();
    return out;
}

/** Recovery-side check of the guarantee for one post-crash directory. */
void
verifyRecovered(const std::string& dir, const WorkloadOutcome& out)
{
    RawDataGenerator gen(smallConfig());
    SegmentStoreOptions opt;
    opt.directory = dir;
    RecoveryReport report;
    auto store = SegmentStore::open(opt, &report);
    ASSERT_TRUE(store.ok()) << store.status().message();

    // Crashes tear only the last durable op; every sealed segment's
    // file went durable earlier, so nothing can be quarantined.
    EXPECT_TRUE(report.quarantined.empty());

    // Committed prefix exactly restored.
    for (uint64_t pid : out.committed) {
        if (out.retired.count(pid) > 0)
            continue;
        auto info = (*store)->segmentForPartition(pid);
        ASSERT_TRUE(info.ok()) << "committed partition " << pid
                               << " lost: " << info.status().message();
        RowBatch got;
        ASSERT_TRUE(
            (*store)->readSegmentBlocking(info->meta.segment_id, got).ok());
        EXPECT_TRUE(got == gen.generatePartition(pid)) << pid;
    }
    for (uint64_t pid : out.retired) {
        EXPECT_EQ((*store)->segmentForPartition(pid).status().code(),
                  StatusCode::kNotFound)
            << "acknowledged retirement of partition " << pid << " lost";
    }

    // Zero corrupt batches: whatever else survived decodes exactly.
    std::set<std::string> referenced{"JOURNAL"};
    for (const SegmentInfo& info : (*store)->listSegments()) {
        if (info.state != SegmentState::kSealed &&
            info.state != SegmentState::kCompacted)
            continue;
        referenced.insert(info.meta.file_name);
        RowBatch got;
        ASSERT_TRUE(
            (*store)->readSegmentBlocking(info.meta.segment_id, got).ok());
        EXPECT_TRUE(got == gen.generatePartition(info.meta.partition_id));
    }

    // Torn temps and unsealed files are gone.
    for (const std::string& name : listDir(dir)) {
        EXPECT_TRUE(referenced.count(name) > 0)
            << "unswept leftover " << name;
    }

    // Recovering again is a no-op.
    const auto first = (*store)->listSegments();
    const auto journal_first = loadFromFile((*store)->journalPath());
    ASSERT_TRUE(journal_first.ok());
    store->reset();
    auto again = SegmentStore::open(opt);
    ASSERT_TRUE(again.ok());
    const auto second = (*again)->listSegments();
    ASSERT_EQ(second.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(second[i].meta.segment_id, first[i].meta.segment_id);
        EXPECT_EQ(second[i].state, first[i].state);
        EXPECT_EQ(second[i].meta.file_crc, first[i].meta.file_crc);
    }
    const auto journal_second = loadFromFile((*again)->journalPath());
    ASSERT_TRUE(journal_second.ok());
    EXPECT_TRUE(*journal_second == *journal_first);
}

// --- Catalog retention: crash sweep across the retire path -----------

/** Per-epoch shard state: all partitions present, all gone, or mixed. */
enum class EpochDisk { kFullyLive, kFullyRetired, kPartial };

EpochDisk
epochOnDisk(SegmentStore& shard_a, SegmentStore& shard_b,
            uint64_t epoch, size_t partitions)
{
    size_t present = 0;
    for (size_t i = 0; i < partitions; ++i) {
        SegmentStore& shard = i % 2 == 0 ? shard_a : shard_b;
        if (shard.segmentForPartition(epochPartitionId(epoch, i)).ok())
            ++present;
    }
    if (present == partitions)
        return EpochDisk::kFullyLive;
    return present == 0 ? EpochDisk::kFullyRetired : EpochDisk::kPartial;
}

/**
 * Crash sweep across DatasetCatalog::applyRetention: publish four
 * epochs over two shards (retain two), then crash at every durable
 * operation the retention pass performs. Recovery via
 * registerDataset() must leave each epoch fully live or fully retired
 * — a partially retired epoch below the head is finished, never
 * served — and a fault-free retention pass afterwards converges to
 * the policy's steady state.
 */
TEST(StoreCrashTest, RetentionSweepLeavesEpochsAtomic)
{
    const RmConfig config = smallConfig();
    DatasetSpec spec;
    spec.name = "clicks";
    spec.config = config;
    spec.generator.seed = 0xfeed;
    spec.partitions_per_epoch = 4;
    spec.retain_epochs = 2;

    // Fault-free baseline: fixes the sweep window [publish_ops,
    // total_ops) and the per-epoch encoded snapshots.
    uint64_t publish_ops = 0;
    uint64_t total_ops = 0;
    std::vector<std::vector<std::vector<uint8_t>>> epochs(5);
    {
        const std::string dir_a = freshDir("ret_crash_base_a");
        const std::string dir_b = freshDir("ret_crash_base_b");
        SegmentStoreOptions opt_a;
        opt_a.directory = dir_a;
        SegmentStoreOptions opt_b;
        opt_b.directory = dir_b;
        auto shard_a = SegmentStore::open(opt_a);
        auto shard_b = SegmentStore::open(opt_b);
        ASSERT_TRUE(shard_a.ok() && shard_b.ok());
        DatasetCatalog catalog;
        ASSERT_TRUE(catalog
                        .registerDataset(spec, {shard_a->get(),
                                                shard_b->get()})
                        .ok());
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
        for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
            auto reader = catalog.pin("clicks", epoch);
            ASSERT_TRUE(reader.ok());
            for (size_t i = 0; i < 4; ++i) {
                auto bytes = reader->fetchEncoded(i);
                ASSERT_TRUE(bytes.ok());
                epochs[epoch].push_back(std::move(bytes.value()));
            }
        }
        // Each store checks the crash index against its own durable-op
        // counter, so the sweep window is per-shard: crash index k
        // lands in the retention phase once every shard has finished
        // its publish ops, and some shard still has retention ops left.
        // The shards' workloads are symmetric (two partitions per epoch
        // each), so the windows coincide.
        publish_ops = std::max((*shard_a)->durableOps(),
                               (*shard_b)->durableOps());
        ASSERT_TRUE(catalog.applyRetention("clicks").ok());
        total_ops = std::max((*shard_a)->durableOps(),
                             (*shard_b)->durableOps());
    }
    ASSERT_GT(total_ops, publish_ops);  // retirement is journaled

    for (uint64_t k = publish_ops; k < total_ops; ++k) {
        SCOPED_TRACE("crash at durable op " + std::to_string(k));
        const std::string dir_a =
            freshDir("ret_crash_" + std::to_string(k) + "_a");
        const std::string dir_b =
            freshDir("ret_crash_" + std::to_string(k) + "_b");
        FaultSpec fault_spec;
        fault_spec.crash_at_durable_op = static_cast<int64_t>(k);
        FaultInjector faults(fault_spec);
        {
            // One injector shared by both shards: k counts durable
            // ops across the whole catalog, like one machine dying.
            SegmentStoreOptions opt_a;
            opt_a.directory = dir_a;
            SegmentStoreOptions opt_b;
            opt_b.directory = dir_b;
            opt_a.faults = &faults;
            opt_b.faults = &faults;
            auto shard_a = SegmentStore::open(opt_a);
            auto shard_b = SegmentStore::open(opt_b);
            ASSERT_TRUE(shard_a.ok() && shard_b.ok());
            DatasetCatalog catalog;
            ASSERT_TRUE(catalog
                            .registerDataset(spec, {shard_a->get(),
                                                    shard_b->get()})
                            .ok());
            for (int i = 0; i < 4; ++i)
                ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
            auto report = catalog.applyRetention("clicks");
            ASSERT_FALSE(report.ok());
            EXPECT_EQ(report.status().code(), StatusCode::kAborted);
        }

        // Recover fault-free. registerDataset() must complete any
        // half-retired epoch; epochs then split cleanly.
        SegmentStoreOptions opt_a;
        opt_a.directory = dir_a;
        SegmentStoreOptions opt_b;
        opt_b.directory = dir_b;
        auto shard_a = SegmentStore::open(opt_a);
        auto shard_b = SegmentStore::open(opt_b);
        ASSERT_TRUE(shard_a.ok() && shard_b.ok());
        DatasetCatalog catalog;
        ASSERT_TRUE(catalog
                        .registerDataset(spec, {shard_a->get(),
                                                shard_b->get()})
                        .ok());
        ASSERT_EQ(catalog.headEpoch("clicks").value(), 4u);
        for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
            const EpochDisk disk = epochOnDisk(**shard_a, **shard_b,
                                               epoch, 4);
            ASSERT_NE(disk, EpochDisk::kPartial)
                << "epoch " << epoch << " recovered half-retired";
            const bool retired =
                catalog.epochRetired("clicks", epoch).value();
            EXPECT_EQ(retired, disk == EpochDisk::kFullyRetired);
            auto reader = catalog.pin("clicks", epoch);
            ASSERT_EQ(reader.ok(), !retired);
            if (retired)
                continue;
            // A surviving epoch replays bit-identically.
            for (size_t i = 0; i < 4; ++i) {
                auto bytes = reader->fetchEncoded(i);
                ASSERT_TRUE(bytes.ok());
                EXPECT_TRUE(*bytes == epochs[epoch][i])
                    << "epoch " << epoch << " partition " << i;
            }
        }
        // Retained epochs are never touched by the crash window.
        EXPECT_FALSE(catalog.epochRetired("clicks", 3).value());
        EXPECT_FALSE(catalog.epochRetired("clicks", 4).value());

        // A fault-free pass converges to the policy's steady state.
        ASSERT_TRUE(catalog.applyRetention("clicks").ok());
        EXPECT_TRUE(catalog.epochRetired("clicks", 1).value());
        EXPECT_TRUE(catalog.epochRetired("clicks", 2).value());
        EXPECT_EQ(catalog.liveEpochs("clicks").value(), 2u);
    }
}

TEST(StoreCrashTest, SweepEveryDurableOpCrashWindow)
{
    // Fault-free baseline: the workload completes and fixes the sweep
    // bound (its durable-op count).
    const std::string base = freshDir("store_crash_base");
    const WorkloadOutcome baseline = runWorkload(base, nullptr);
    ASSERT_FALSE(baseline.crashed);
    ASSERT_EQ(baseline.committed.size(), 4u);
    ASSERT_EQ(baseline.retired.size(), 1u);
    ASSERT_GT(baseline.durable_ops, 10u);

    for (uint64_t k = 0; k < baseline.durable_ops; ++k) {
        SCOPED_TRACE("crash at durable op " + std::to_string(k));
        const std::string dir =
            freshDir("store_crash_" + std::to_string(k));
        FaultSpec spec;
        spec.crash_at_durable_op = static_cast<int64_t>(k);
        FaultInjector faults(spec);
        const WorkloadOutcome out = runWorkload(dir, &faults);
        EXPECT_TRUE(out.crashed);
        verifyRecovered(dir, out);
    }
}

}  // namespace
}  // namespace presto
