/**
 * @file
 * Tests for the fault-injection layer: deterministic fault draws,
 * failure-aware pool scheduling, degraded pipeline simulation, and the
 * functional fetch-retry/corruption-recovery path.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/fault_injector.h"
#include "core/managers.h"
#include "core/partition_store.h"
#include "core/pool_scheduler.h"
#include "core/provisioner.h"
#include "core/training_pipeline.h"
#include "datagen/generator.h"

namespace presto {
namespace {

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjectorTest, DefaultSpecInjectsNothing)
{
    const FaultInjector injector{FaultSpec{}};
    EXPECT_FALSE(injector.enabled());
    EXPECT_FALSE(injector.spec().anyFaults());
    EXPECT_FALSE(injector.failStopTime(0).has_value());
    EXPECT_DOUBLE_EQ(injector.slowdownFactor(3), 1.0);
    EXPECT_FALSE(injector.transientReadError(0, 0));
    EXPECT_FALSE(injector.corruptionOccurs(0, 0));
}

TEST(FaultInjectorTest, DrawsAreDeterministicAndOrderFree)
{
    FaultSpec spec;
    spec.seed = 42;
    spec.transient_read_error_prob = 0.3;
    spec.corruption_prob = 0.2;
    const FaultInjector a(spec);
    const FaultInjector b(spec);

    // Query b in reverse order: stateless draws must not care.
    std::vector<bool> forward, backward;
    for (uint64_t e = 0; e < 256; ++e)
        forward.push_back(a.transientReadError(7, e));
    for (uint64_t e = 256; e-- > 0;)
        backward.push_back(b.transientReadError(7, e));
    for (size_t i = 0; i < 256; ++i)
        EXPECT_EQ(forward[i], backward[255 - i]) << "event " << i;
}

TEST(FaultInjectorTest, SeedSelectsTheFaultTimeline)
{
    FaultSpec spec;
    spec.transient_read_error_prob = 0.5;
    FaultSpec other = spec;
    other.seed ^= 1;
    const FaultInjector a(spec), b(other);
    int differences = 0;
    for (uint64_t e = 0; e < 512; ++e)
        differences += a.transientReadError(0, e) !=
                       b.transientReadError(0, e);
    EXPECT_GT(differences, 0);
}

TEST(FaultInjectorTest, ErrorRateTracksProbability)
{
    FaultSpec spec;
    spec.transient_read_error_prob = 0.25;
    const FaultInjector injector(spec);
    int hits = 0;
    const int draws = 20000;
    for (int e = 0; e < draws; ++e)
        hits += injector.transientReadError(1, static_cast<uint64_t>(e));
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.25, 0.02);
}

TEST(FaultInjectorTest, BackoffDoublesPerRetry)
{
    FaultSpec spec;
    spec.retry_backoff_base_sec = 0.010;
    spec.transient_read_error_prob = 0.1;  // enable
    const FaultInjector injector(spec);
    EXPECT_DOUBLE_EQ(injector.retryBackoffSec(0), 0.010);
    EXPECT_DOUBLE_EQ(injector.retryBackoffSec(1), 0.020);
    EXPECT_DOUBLE_EQ(injector.retryBackoffSec(5), 0.320);
}

TEST(FaultInjectorTest, CorruptBytesFlipsExactlyOneBitDeterministically)
{
    FaultSpec spec;
    spec.corruption_prob = 1.0;
    const FaultInjector injector(spec);
    std::vector<uint8_t> original(64, 0xAB);
    std::vector<uint8_t> once = original;
    std::vector<uint8_t> twice = original;
    const auto bit_a = injector.corruptBytes(once, 9, 4);
    const auto bit_b = injector.corruptBytes(twice, 9, 4);
    ASSERT_TRUE(bit_a.has_value());
    EXPECT_EQ(*bit_a, *bit_b);
    EXPECT_EQ(once, twice);
    int differing_bits = 0;
    for (size_t i = 0; i < original.size(); ++i) {
        uint8_t diff = static_cast<uint8_t>(original[i] ^ once[i]);
        while (diff != 0) {
            differing_bits += diff & 1;
            diff >>= 1;
        }
    }
    EXPECT_EQ(differing_bits, 1);

    std::vector<uint8_t> empty;
    EXPECT_FALSE(injector.corruptBytes(empty, 0, 0).has_value());
}

TEST(FaultInjectorTest, FailStopsOrderedByTime)
{
    FaultSpec spec;
    spec.fail_stops = {{3, 9.0}, {1, 2.0}, {2, 2.0}, {1, 5.0}};
    const FaultInjector injector(spec);
    const auto ordered = injector.failStopsByTime();
    ASSERT_EQ(ordered.size(), 4u);
    EXPECT_EQ(ordered[0].device, 1);
    EXPECT_EQ(ordered[1].device, 2);
    EXPECT_DOUBLE_EQ(ordered[2].time_sec, 5.0);
    EXPECT_DOUBLE_EQ(ordered[3].time_sec, 9.0);
    ASSERT_TRUE(injector.failStopTime(1).has_value());
    EXPECT_DOUBLE_EQ(*injector.failStopTime(1), 2.0);  // earliest wins
    EXPECT_DOUBLE_EQ(injector.slowdownFactor(1), 1.0);
}

TEST(FaultInjectorDeathTest, InvalidSpecsPanic)
{
    FaultSpec bad_prob;
    bad_prob.transient_read_error_prob = 1.0;
    EXPECT_DEATH(FaultInjector{bad_prob}, "probability");
    FaultSpec bad_slow;
    bad_slow.stragglers = {{0, 0.5}};
    EXPECT_DEATH(FaultInjector{bad_slow}, "slowdown");
    FaultSpec bad_time;
    bad_time.fail_stops = {{0, -1.0}};
    EXPECT_DEATH(FaultInjector{bad_time}, "fail-stop");
}

// --- PoolScheduler under fail-stops ----------------------------------------

PoolJob
poolJob(double arrival, double duration, int rm = 1, int gpus = 8)
{
    PoolJob j;
    j.arrival_sec = arrival;
    j.duration_sec = duration;
    j.rm_id = rm;
    j.num_gpus = gpus;
    return j;
}

void
expectSamePoolResult(const PoolResult& a, const PoolResult& b)
{
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].devices, b.jobs[i].devices);
        EXPECT_EQ(a.jobs[i].start_sec, b.jobs[i].start_sec);
        EXPECT_EQ(a.jobs[i].finish_sec, b.jobs[i].finish_sec);
        EXPECT_EQ(a.jobs[i].rejected, b.jobs[i].rejected);
        EXPECT_EQ(a.jobs[i].reject_reason, b.jobs[i].reject_reason);
        EXPECT_EQ(a.jobs[i].devices_lost, b.jobs[i].devices_lost);
        EXPECT_EQ(a.jobs[i].reprovision_latency_sec,
                  b.jobs[i].reprovision_latency_sec);
        EXPECT_EQ(a.jobs[i].capacity_loss_device_sec,
                  b.jobs[i].capacity_loss_device_sec);
    }
    EXPECT_EQ(a.makespan_sec, b.makespan_sec);
    EXPECT_EQ(a.device_busy_sec, b.device_busy_sec);
    EXPECT_EQ(a.peak_devices_in_use, b.peak_devices_in_use);
    EXPECT_EQ(a.mean_wait_sec, b.mean_wait_sec);
    EXPECT_EQ(a.devices_failed, b.devices_failed);
    EXPECT_EQ(a.replacements_granted, b.replacements_granted);
    EXPECT_EQ(a.mean_reprovision_latency_sec,
              b.mean_reprovision_latency_sec);
    EXPECT_EQ(a.capacity_loss_device_sec, b.capacity_loss_device_sec);
}

TEST(PoolFaultTest, NoFaultInjectorReproducesPlainRun)
{
    PoolScheduler pool(16);
    std::vector<PoolJob> jobs;
    for (int i = 0; i < 12; ++i)
        jobs.push_back(poolJob(i * 4.0, 30.0 + i, (i % 5) + 1));
    const FaultInjector none{FaultSpec{}};
    expectSamePoolResult(pool.run(jobs), pool.run(jobs, none));
}

TEST(PoolFaultTest, IdleDeviceAbsorbsFailureSilently)
{
    // RM1 on 8 GPUs needs 2 devices; pool of 8 leaves 6 idle.
    PoolScheduler pool(8);
    FaultSpec spec;
    spec.fail_stops = {{0, 5.0}};
    const FaultInjector faults(spec);
    const PoolResult r = pool.run({poolJob(0, 100, 1)}, faults);
    EXPECT_EQ(r.devices_failed, 1);
    EXPECT_EQ(r.jobs[0].devices_lost, 0);
    EXPECT_EQ(r.replacements_granted, 0);
    EXPECT_DOUBLE_EQ(r.jobs[0].finish_sec, 100.0);
}

TEST(PoolFaultTest, RunningJobLosesDeviceAndGetsReplacement)
{
    // Pool 8, both jobs admitted (2 devices each -> 4 free). Fail 5
    // devices so the free pool drains and job 0 loses one; job 1
    // finishing at t=50 frees capacity, granting the replacement.
    PoolScheduler pool(8);
    FaultSpec spec;
    for (int i = 0; i < 5; ++i)
        spec.fail_stops.push_back({i, 10.0});
    const FaultInjector faults(spec);
    const PoolResult r =
        pool.run({poolJob(0, 100, 1), poolJob(0, 50, 1)}, faults);
    EXPECT_EQ(r.devices_failed, 5);
    EXPECT_EQ(r.jobs[0].devices_lost +
                  r.jobs[1].devices_lost, 1);
    EXPECT_EQ(r.replacements_granted, 1);
    // The victim waited from t=10 to t=50 for re-provisioning.
    EXPECT_DOUBLE_EQ(r.mean_reprovision_latency_sec, 40.0);
    EXPECT_DOUBLE_EQ(r.capacity_loss_device_sec, 40.0);
}

TEST(PoolFaultTest, UnreplacedLossIsAccountedToJobFinish)
{
    // Single job on an exactly-sized pool: a failure at t=20 can never
    // be replaced, so the job runs degraded for its remaining 80 s.
    PoolScheduler pool(2);
    FaultSpec spec;
    spec.fail_stops = {{0, 20.0}};
    const FaultInjector faults(spec);
    const PoolResult r = pool.run({poolJob(0, 100, 1)}, faults);
    EXPECT_EQ(r.jobs[0].devices_lost, 1);
    EXPECT_EQ(r.replacements_granted, 0);
    EXPECT_DOUBLE_EQ(r.jobs[0].capacity_loss_device_sec, 80.0);
    EXPECT_DOUBLE_EQ(r.capacity_loss_device_sec, 80.0);
}

TEST(PoolFaultTest, StarvedQueuedJobIsRejectedWithReason)
{
    // Pool 2 fits one RM1 job; failing both devices mid-run leaves the
    // queued second job permanently unadmittable.
    PoolScheduler pool(2);
    FaultSpec spec;
    spec.fail_stops = {{0, 10.0}, {1, 10.0}};
    const FaultInjector faults(spec);
    const PoolResult r =
        pool.run({poolJob(0, 50, 1), poolJob(5, 50, 1)}, faults);
    EXPECT_FALSE(r.jobs[0].rejected);
    EXPECT_TRUE(r.jobs[1].rejected);
    EXPECT_EQ(r.jobs[1].devices, 0);
    EXPECT_NE(r.jobs[1].reject_reason.find("capacity lost"),
              std::string::npos);
}

TEST(PoolFaultTest, DeterministicUnderFaults)
{
    PoolScheduler pool(12);
    std::vector<PoolJob> jobs;
    for (int i = 0; i < 16; ++i)
        jobs.push_back(poolJob(i * 2.0, 25.0 + i, (i % 5) + 1));
    FaultSpec spec;
    spec.fail_stops = {{0, 3.0}, {1, 17.0}, {2, 31.0}, {3, 44.0}};
    const FaultInjector faults(spec);
    expectSamePoolResult(pool.run(jobs, faults), pool.run(jobs, faults));
}

// --- TrainingPipeline degraded mode -----------------------------------------

PipelineOptions
pipelineOptions(int workers = 4, size_t batches = 256)
{
    PipelineOptions opt;
    opt.backend = PreprocBackend::kIsp;
    opt.isp_params = IspParams::smartSsd();
    opt.num_workers = workers;
    opt.num_gpus = 1;
    opt.batches_to_train = batches;
    return opt;
}

void
expectSamePipelineResult(const PipelineResult& a, const PipelineResult& b)
{
    EXPECT_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_EQ(a.batches_trained, b.batches_trained);
    EXPECT_EQ(a.train_throughput, b.train_throughput);
    EXPECT_EQ(a.preproc_throughput, b.preproc_throughput);
    EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
    EXPECT_EQ(a.max_stalled_producers, b.max_stalled_producers);
    EXPECT_EQ(a.degradation.workers_failed, b.degradation.workers_failed);
    EXPECT_EQ(a.degradation.straggler_workers,
              b.degradation.straggler_workers);
    EXPECT_EQ(a.degradation.surviving_workers,
              b.degradation.surviving_workers);
    EXPECT_EQ(a.degradation.transient_read_errors,
              b.degradation.transient_read_errors);
    EXPECT_EQ(a.degradation.read_retries, b.degradation.read_retries);
    EXPECT_EQ(a.degradation.retry_backoff_seconds,
              b.degradation.retry_backoff_seconds);
    EXPECT_EQ(a.degradation.corrupt_batches_refetched,
              b.degradation.corrupt_batches_refetched);
    EXPECT_EQ(a.degradation.refetch_seconds,
              b.degradation.refetch_seconds);
    EXPECT_EQ(a.degradation.gpu_idle_seconds,
              b.degradation.gpu_idle_seconds);
    EXPECT_EQ(a.degradation.starved, b.degradation.starved);
}

TEST(PipelineFaultTest, DefaultFaultSpecMatchesFaultFreeRun)
{
    const RmConfig cfg = rmConfig(1);
    const PipelineResult plain =
        TrainingPipeline(cfg, pipelineOptions()).run();
    PipelineOptions opt = pipelineOptions();
    opt.faults = FaultSpec{};  // explicit no-fault spec
    const PipelineResult with_spec = TrainingPipeline(cfg, opt).run();
    expectSamePipelineResult(plain, with_spec);
    EXPECT_EQ(plain.degradation.workers_failed, 0u);
    EXPECT_FALSE(plain.degradation.starved);
    EXPECT_EQ(plain.degradation.surviving_workers, 4);
}

TEST(PipelineFaultTest, FailStopDegradesThroughputButCompletes)
{
    // T/P-exact CPU provisioning: losing one of the ceil(T/P) workers
    // drops aggregate preprocessing below GPU demand, so the failure is
    // visible as a throughput/utilization dip (not masked by headroom).
    const RmConfig cfg = rmConfig(5);
    PipelineOptions opt = pipelineOptions();
    opt.backend = PreprocBackend::kDisaggCpu;
    opt.num_workers = Provisioner(cfg).provisionCpu(1).workers;
    const PipelineResult healthy = TrainingPipeline(cfg, opt).run();

    opt.faults.fail_stops = {{0, healthy.sim_seconds / 4}};
    const PipelineResult degraded = TrainingPipeline(cfg, opt).run();

    EXPECT_EQ(degraded.batches_trained, opt.batches_to_train);
    EXPECT_EQ(degraded.degradation.workers_failed, 1u);
    EXPECT_EQ(degraded.degradation.surviving_workers,
              opt.num_workers - 1);
    EXPECT_FALSE(degraded.degradation.starved);
    EXPECT_LT(degraded.train_throughput, healthy.train_throughput);
    EXPECT_LT(degraded.gpu_utilization, healthy.gpu_utilization);
    EXPECT_GT(degraded.degradation.gpu_idle_seconds,
              healthy.degradation.gpu_idle_seconds);
}

TEST(PipelineFaultTest, AllWorkersDeadStarvesTheRun)
{
    const RmConfig cfg = rmConfig(1);
    PipelineOptions opt = pipelineOptions(2, 100000);
    opt.faults.fail_stops = {{0, 0.5}, {1, 0.5}};
    const PipelineResult r = TrainingPipeline(cfg, opt).run();
    EXPECT_TRUE(r.degradation.starved);
    EXPECT_EQ(r.degradation.surviving_workers, 0);
    EXPECT_LT(r.batches_trained, opt.batches_to_train);
    EXPECT_GT(r.batches_trained, 0u);  // partial progress, not a crash
}

TEST(PipelineFaultTest, StragglerSlowsTheRunDown)
{
    const RmConfig cfg = rmConfig(1);
    const PipelineResult healthy =
        TrainingPipeline(cfg, pipelineOptions()).run();
    PipelineOptions opt = pipelineOptions();
    opt.faults.stragglers = {{0, 4.0}, {1, 4.0}};
    const PipelineResult slowed = TrainingPipeline(cfg, opt).run();
    EXPECT_EQ(slowed.degradation.straggler_workers, 2u);
    EXPECT_GT(slowed.sim_seconds, healthy.sim_seconds);
    EXPECT_LE(slowed.gpu_utilization, healthy.gpu_utilization);
}

TEST(PipelineFaultTest, TransientErrorsAreRetriedWithBackoff)
{
    const RmConfig cfg = rmConfig(1);
    PipelineOptions opt = pipelineOptions();
    opt.faults.transient_read_error_prob = 0.10;
    const PipelineResult r = TrainingPipeline(cfg, opt).run();
    EXPECT_EQ(r.batches_trained, opt.batches_to_train);
    EXPECT_GT(r.degradation.transient_read_errors, 0u);
    EXPECT_GT(r.degradation.read_retries, 0u);
    EXPECT_GT(r.degradation.retry_backoff_seconds, 0.0);
}

TEST(PipelineFaultTest, CorruptBatchesCostARefetch)
{
    const RmConfig cfg = rmConfig(1);
    PipelineOptions opt = pipelineOptions();
    opt.faults.corruption_prob = 0.10;
    const PipelineResult r = TrainingPipeline(cfg, opt).run();
    EXPECT_EQ(r.batches_trained, opt.batches_to_train);
    EXPECT_GT(r.degradation.corrupt_batches_refetched, 0u);
    EXPECT_GT(r.degradation.refetch_seconds, 0.0);
}

TEST(PipelineFaultTest, DeterministicUnderMixedFaults)
{
    const RmConfig cfg = rmConfig(3);
    PipelineOptions opt = pipelineOptions(6, 384);
    opt.faults.fail_stops = {{2, 1.0}};
    opt.faults.stragglers = {{4, 2.0}};
    opt.faults.transient_read_error_prob = 0.05;
    opt.faults.corruption_prob = 0.02;
    const PipelineResult a = TrainingPipeline(cfg, opt).run();
    const PipelineResult b = TrainingPipeline(cfg, opt).run();
    expectSamePipelineResult(a, b);
}

// --- Functional path: PartitionStore + managers -----------------------------

TEST(PartitionStoreFaultTest, FetchMatchesPristineWithoutInjector)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 64;
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    EXPECT_FALSE(store.faultInjectionEnabled());
    const auto fetched = store.fetchPartition(0);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(*fetched, store.partition(0));
}

TEST(PartitionStoreFaultTest, TransientErrorsAndCorruptionAreKeyedOnAttempt)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 64;
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    FaultSpec spec;
    spec.transient_read_error_prob = 0.5;
    spec.corruption_prob = 0.5;
    const FaultInjector faults(spec);
    store.setFaultInjector(&faults);
    ASSERT_TRUE(store.faultInjectionEnabled());

    int transient = 0, corrupt = 0, clean = 0;
    for (uint64_t attempt = 0; attempt < 64; ++attempt) {
        const auto a = store.fetchPartition(3, attempt);
        const auto b = store.fetchPartition(3, attempt);
        if (!a.ok()) {
            EXPECT_EQ(a.status().code(), StatusCode::kUnavailable);
            EXPECT_FALSE(b.ok());  // same (partition, attempt) -> same draw
            ++transient;
            continue;
        }
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(*a, *b);
        if (*a != store.partition(3))
            ++corrupt;
        else
            ++clean;
    }
    EXPECT_GT(transient, 0);
    EXPECT_GT(corrupt, 0);
    EXPECT_GT(clean, 0);
    // The cached copy stayed pristine throughout.
    store.setFaultInjector(nullptr);
    EXPECT_EQ(*store.fetchPartition(3), store.partition(3));
}

TEST(ManagersFaultTest, TrainingRecoversIdenticalDataUnderFaults)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 48;
    RawDataGenerator gen(cfg);
    const size_t batches = 24;

    PartitionStore clean_store(gen);
    TrainManager clean(cfg, clean_store, PreprocessMode::kPreSto);
    (void)clean.train(batches, 2);
    const uint64_t reference = clean.deliveredChecksum();

    PartitionStore faulty_store(gen);
    FaultSpec spec;
    spec.transient_read_error_prob = 0.2;
    spec.corruption_prob = 0.2;
    const FaultInjector faults(spec);
    faulty_store.setFaultInjector(&faults);
    TrainManager manager(cfg, faulty_store, PreprocessMode::kPreSto);
    const RunStats stats = manager.train(batches, 2);

    // Every partition was recovered bit-exactly despite injected faults.
    EXPECT_EQ(manager.deliveredChecksum(), reference);
    EXPECT_EQ(stats.batches_delivered, batches);
    EXPECT_GT(stats.transient_read_errors +
                  stats.corrupt_partition_refetches, 0u);
}

}  // namespace
}  // namespace presto
