/**
 * @file
 * Shape-preservation tests: lock the calibrated models to the paper's
 * headline results (within bands), so constant tweaks cannot silently
 * break the reproduction. DESIGN.md Section 5 documents each band.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "core/provisioner.h"
#include "core/training_pipeline.h"
#include "models/calibration.h"
#include "models/cost_model.h"
#include "models/cpu_model.h"
#include "models/gpu_model.h"
#include "models/isp_model.h"
#include "models/network_model.h"

namespace presto {
namespace {

double
averageOverRms(double (*metric)(const RmConfig&))
{
    double sum = 0;
    for (const auto& cfg : allRmConfigs())
        sum += metric(cfg);
    return sum / static_cast<double>(numRmConfigs());
}

// --- Figure 5 ------------------------------------------------------------------

TEST(CalibrationFig5, Rm5IsRoughly14xRm1)
{
    const double rm1 = CpuWorkerModel(rmConfig(1)).batchLatency().total();
    const double rm5 = CpuWorkerModel(rmConfig(5)).batchLatency().total();
    EXPECT_GE(rm5 / rm1, 12.0);
    EXPECT_LE(rm5 / rm1, 16.0);
}

TEST(CalibrationFig5, LatencyIncreasesMonotonicallyAcrossRms)
{
    double prev = 0;
    for (const auto& cfg : allRmConfigs()) {
        const double t = CpuWorkerModel(cfg).batchLatency().total();
        EXPECT_GT(t, prev) << cfg.name;
        prev = t;
    }
}

TEST(CalibrationFig5, TransformShareAverages79Percent)
{
    const double avg = averageOverRms([](const RmConfig& cfg) {
        return CpuWorkerModel(cfg).batchLatency().transformShare();
    });
    EXPECT_GE(avg, 0.70);  // paper: 79% average
    EXPECT_LE(avg, 0.88);
}

TEST(CalibrationFig5, ExtractReadIsMinorForCpuBaseline)
{
    for (const auto& cfg : allRmConfigs()) {
        const LatencyBreakdown b = CpuWorkerModel(cfg).batchLatency();
        EXPECT_LT(b.extract_read / b.total(), 0.12) << cfg.name;
    }
}

TEST(CalibrationFig5, NormalizationDominatesForProductionModels)
{
    // Paper: Log + SigridHash reach up to ~55% for RM2-5.
    for (int rm = 2; rm <= 5; ++rm) {
        const LatencyBreakdown b = CpuWorkerModel(rmConfig(rm)).batchLatency();
        const double norm_share = (b.sigrid_hash + b.log) / b.total();
        EXPECT_GE(norm_share, 0.45) << "RM" << rm;
        EXPECT_LE(norm_share, 0.70) << "RM" << rm;
    }
}

// --- Figure 3 ------------------------------------------------------------------

TEST(CalibrationFig3, SixteenColocatedCoresLeaveGpuUnder20Percent)
{
    const RmConfig& cfg = rmConfig(5);
    CpuWorkerModel cpu(cfg);
    GpuTrainModel gpu(cfg);
    const double supply = 16 * cpu.colocatedThroughputPerCore();
    const double ratio = supply / gpu.maxThroughput();
    EXPECT_LT(ratio, 0.20);
    EXPECT_GT(ratio, 0.10);  // not absurdly starved either
}

TEST(CalibrationFig3, DesScalingIsNearLinearTo16Workers)
{
    // The paper measures ~15x throughput from 1 -> 16 co-located
    // workers; reproduce via the discrete-event pipeline.
    auto run = [](int workers) {
        PipelineOptions opts;
        opts.backend = PreprocBackend::kColocatedCpu;
        opts.num_workers = workers;
        opts.batches_to_train = 256;
        return TrainingPipeline(rmConfig(5), opts).run()
            .preproc_throughput;
    };
    const double scaling = run(16) / run(1);
    EXPECT_GE(scaling, 14.0);
    EXPECT_LE(scaling, 16.0);
}

// --- Figure 4 / Figure 14 ---------------------------------------------------------

TEST(CalibrationFig4, Rm5NeedsHundredsOfCores)
{
    Provisioner prov(rmConfig(5));
    const int cores = prov.provisionCpu(cal::kGpusPerTrainingNode).workers;
    EXPECT_GE(cores, 300);  // paper: 367
    EXPECT_LE(cores, 420);
}

TEST(CalibrationFig14, AtMostNineIspUnits)
{
    int max_units = 0;
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        max_units = std::max(
            max_units, prov.provisionIsp(cal::kGpusPerTrainingNode,
                                         IspParams::smartSsd())
                           .workers);
    }
    EXPECT_LE(max_units, 9);  // paper: at most 9 units
    EXPECT_GE(max_units, 6);  // ...but not trivially few
}

TEST(CalibrationFig14, IspPowerStaysUnderWorstCaseEnvelope)
{
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        const Provision p = prov.provisionIsp(cal::kGpusPerTrainingNode,
                                              IspParams::smartSsd());
        EXPECT_LE(p.deployment.power_watts, 9 * 25.0) << cfg.name;
    }
}

// --- Figure 11 ----------------------------------------------------------------------

TEST(CalibrationFig11, OneSmartSsdBeats32Cores)
{
    for (const auto& cfg : allRmConfigs()) {
        CpuWorkerModel cpu(cfg);
        IspDeviceModel ssd(IspParams::smartSsd(), cfg);
        EXPECT_GT(ssd.throughput(), cpu.throughput(32)) << cfg.name;
    }
}

TEST(CalibrationFig11, SixtyFourCoresWinByRoughly27Percent)
{
    double ratio_sum = 0;
    for (const auto& cfg : allRmConfigs()) {
        CpuWorkerModel cpu(cfg);
        IspDeviceModel ssd(IspParams::smartSsd(), cfg);
        ratio_sum += cpu.throughput(64) / ssd.throughput();
    }
    const double avg = ratio_sum / numRmConfigs();
    EXPECT_GE(avg, 1.05);  // paper: 1.27x
    EXPECT_LE(avg, 1.60);
}

// --- Figure 12 ----------------------------------------------------------------------

TEST(CalibrationFig12, EndToEndSpeedupAverages9To11x)
{
    const double avg = averageOverRms([](const RmConfig& cfg) {
        return CpuWorkerModel(cfg).batchLatency().total() /
               IspDeviceModel(IspParams::smartSsd(), cfg)
                   .batchLatency()
                   .total();
    });
    EXPECT_GE(avg, 8.5);   // paper: 9.6x average
    EXPECT_LE(avg, 11.5);
}

TEST(CalibrationFig12, MaxSpeedupBelow13x)
{
    for (const auto& cfg : allRmConfigs()) {
        const double speedup =
            CpuWorkerModel(cfg).batchLatency().total() /
            IspDeviceModel(IspParams::smartSsd(), cfg).batchLatency()
                .total();
        EXPECT_LE(speedup, 13.0) << cfg.name;  // paper max: 11.6x
        EXPECT_GE(speedup, 8.0) << cfg.name;
    }
}

TEST(CalibrationFig12, PrestoExtractShareNear40Percent)
{
    // Decoding parallelizes worst, so Extract dominates PreSto's
    // residual latency (paper: 40.8% average).
    const double avg = averageOverRms([](const RmConfig& cfg) {
        return IspDeviceModel(IspParams::smartSsd(), cfg)
            .batchLatency()
            .extractShare();
    });
    EXPECT_GE(avg, 0.28);
    EXPECT_LE(avg, 0.50);
}

// --- Figure 13 ----------------------------------------------------------------------

TEST(CalibrationFig13, RpcReductionRoughly3x)
{
    const NetworkModel net = NetworkModel::datacenter();
    const double avg = [&] {
        double sum = 0;
        for (const auto& cfg : allRmConfigs())
            sum += net.disaggRpc(cfg).total() / net.prestoRpc(cfg).total();
        return sum / numRmConfigs();
    }();
    EXPECT_GE(avg, 2.0);  // paper: 2.9x
    EXPECT_LE(avg, 3.6);
}

// --- Figure 15 ----------------------------------------------------------------------

TEST(CalibrationFig15, EnergyEfficiencyGains)
{
    double sum = 0, max = 0;
    std::string argmax;
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        const Provision c = prov.provisionCpu(cal::kGpusPerTrainingNode);
        const Provision i = prov.provisionIsp(cal::kGpusPerTrainingNode,
                                              IspParams::smartSsd());
        const double gain =
            c.deployment.power_watts / i.deployment.power_watts;
        sum += gain;
        if (gain > max) {
            max = gain;
            argmax = cfg.name;
        }
    }
    EXPECT_GE(sum / 5, 9.0);   // paper: 11.3x average
    EXPECT_LE(sum / 5, 16.0);
    EXPECT_GE(max, 13.5);      // paper: 15.1x max...
    EXPECT_LE(max, 16.5);
    EXPECT_EQ(argmax, "RM5");  // ...reached on the largest workload
}

TEST(CalibrationFig15, CostEfficiencyGains)
{
    double sum = 0, max = 0;
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        const Provision c = prov.provisionCpu(cal::kGpusPerTrainingNode);
        const Provision i = prov.provisionIsp(cal::kGpusPerTrainingNode,
                                              IspParams::smartSsd());
        const double gain = costEfficiency(i.deployment,
                                           c.demand_batches_per_sec) /
                            costEfficiency(c.deployment,
                                           c.demand_batches_per_sec);
        sum += gain;
        max = std::max(max, gain);
    }
    EXPECT_GE(sum / 5, 3.5);  // paper: 4.3x average
    EXPECT_LE(sum / 5, 6.0);
    EXPECT_GE(max, 5.0);      // paper: 5.6x max
    EXPECT_LE(max, 6.5);
}

// --- Figure 16 ----------------------------------------------------------------------

TEST(CalibrationFig16, SmartSsdRoughly2point5xFasterThanA100)
{
    const double avg = averageOverRms([](const RmConfig& cfg) {
        return GpuPreprocModel(cfg).batchLatency().total() /
               IspDeviceModel(IspParams::smartSsd(), cfg).batchLatency()
                   .total();
    });
    EXPECT_GE(avg, 2.0);  // paper: 2.5x
    EXPECT_LE(avg, 3.2);
}

TEST(CalibrationFig16, SmartSsdRoughlyMatchesDisaggU280)
{
    // Paper: ~5% performance loss vs the 225 W disaggregated U280.
    const double avg = averageOverRms([](const RmConfig& cfg) {
        return IspDeviceModel(IspParams::disaggU280(), cfg)
                   .batchLatency()
                   .total() /
               IspDeviceModel(IspParams::smartSsd(), cfg).batchLatency()
                   .total();
    });
    EXPECT_GE(avg, 0.80);
    EXPECT_LE(avg, 1.25);
}

TEST(CalibrationFig16, DisaggU280PaysLargeCopyOverhead)
{
    // Paper: data copy is 47.6% of the disaggregated U280's e2e time.
    const LatencyBreakdown b =
        IspDeviceModel(IspParams::disaggU280(), rmConfig(5)).batchLatency();
    EXPECT_GE(b.extract_read / b.total(), 0.30);
    EXPECT_LE(b.extract_read / b.total(), 0.55);
}

TEST(CalibrationFig16, SmartSsdMoreEnergyEfficientThanPrestoU280)
{
    // Paper: 2.9x better perf/W than PreSto (U280).
    const double avg = averageOverRms([](const RmConfig& cfg) {
        IspDeviceModel ssd(IspParams::smartSsd(), cfg);
        IspDeviceModel u280(IspParams::prestoU280(), cfg);
        const double pw_ssd =
            1.0 / ssd.batchLatency().total() / ssd.params().watts;
        const double pw_u280 =
            1.0 / u280.batchLatency().total() / u280.params().watts;
        return pw_ssd / pw_u280;
    });
    EXPECT_GE(avg, 2.0);
    EXPECT_LE(avg, 3.5);
}

// --- Figure 17 ----------------------------------------------------------------------

TEST(CalibrationFig17, DisaggLatencyScalesWithFeatures)
{
    RmConfig quarter = rmConfig(5);
    quarter.num_dense /= 4;
    quarter.num_sparse /= 4;
    quarter.num_generated /= 4;
    const LatencyBreakdown big = CpuWorkerModel(rmConfig(5)).batchLatency();
    const LatencyBreakdown small = CpuWorkerModel(quarter).batchLatency();
    EXPECT_NEAR(big.sigrid_hash / small.sigrid_hash, 4.0, 0.5);
    EXPECT_NEAR(big.log / small.log, 4.0, 0.1);
}

TEST(CalibrationFig17, PrestoKeepsLargeSpeedupAcrossScales)
{
    for (double k : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        RmConfig cfg = rmConfig(5);
        cfg.num_dense = static_cast<size_t>(cfg.num_dense * k);
        cfg.num_sparse = static_cast<size_t>(cfg.num_sparse * k);
        cfg.num_generated = static_cast<size_t>(cfg.num_generated * k);
        const LatencyBreakdown d = CpuWorkerModel(cfg).batchLatency();
        const LatencyBreakdown p =
            IspDeviceModel(IspParams::smartSsd(), cfg).batchLatency();
        const double gen_norm_speedup =
            (d.bucketize + d.sigrid_hash + d.log) /
            (p.bucketize + p.sigrid_hash + p.log);
        EXPECT_GT(gen_norm_speedup, 15.0) << "scale " << k;
    }
}

}  // namespace
}  // namespace presto
