/**
 * @file
 * Epoch retention, memory tiering, and pin-aware scrub tests for the
 * ingestion-service catalog (docs/SERVICE.md "Retention and tiering").
 *
 * The retention guarantees under test:
 *
 *  - applyRetention() keeps the newest retain_epochs epochs plus every
 *    epoch a live EpochReader pins; everything older is retired.
 *  - A pinned epoch replays bit-identically no matter how many newer
 *    epochs are published and retired around it, in both memory-only
 *    and persistent mode.
 *  - pin() and applyRetention() linearize: a racing pin either lands
 *    before the pass claims the epoch (sparing it, valid replay) or
 *    fails kNotFound — never a reader over retired storage.
 *  - A crash mid-retire recovers to fully-live or fully-retired: the
 *    next registerDataset() finishes any half-retired epoch.
 *  - publishEpoch() promotes the head into the hot memory tier (reads
 *    skip the device) and demotes the previous head to the cold path.
 *  - The shards' scrub cursors prioritize pinned epochs' segments.
 */
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "service/dataset_catalog.h"
#include "service/ingest_service.h"
#include "service/service_scenario.h"
#include "store/segment_store.h"

namespace presto {
namespace {

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 64;
    return cfg;
}

DatasetSpec
smallSpec(const std::string& name, size_t partitions = 4,
          size_t shards = 2)
{
    DatasetSpec spec;
    spec.name = name;
    spec.config = smallConfig();
    spec.generator.seed = 0xfeed;
    spec.partitions_per_epoch = partitions;
    spec.shards = shards;
    return spec;
}

std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    ::system(("rm -rf " + dir).c_str());
    EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
    return dir;
}

std::unique_ptr<SegmentStore>
openStore(const std::string& dir, const FaultInjector* faults = nullptr)
{
    SegmentStoreOptions options;
    options.directory = dir;
    options.faults = faults;
    auto store = SegmentStore::open(options);
    EXPECT_TRUE(store.ok());
    return std::move(store.value());
}

std::vector<std::vector<uint8_t>>
snapshotEpoch(const EpochReader& reader)
{
    std::vector<std::vector<uint8_t>> encoded;
    for (size_t i = 0; i < reader.numPartitions(); ++i) {
        auto bytes = reader.fetchEncoded(i);
        EXPECT_TRUE(bytes.ok());
        encoded.push_back(std::move(bytes.value()));
    }
    return encoded;
}

// --- Retention policy, memory-only mode ------------------------------

TEST(RetentionTest, KeepsNewestKRetiresOlder)
{
    DatasetCatalog catalog;
    DatasetSpec spec = smallSpec("clicks");
    spec.retain_epochs = 2;
    ASSERT_TRUE(catalog.registerDataset(spec).ok());
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    auto report = catalog.applyRetention("clicks");
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->epochs_retired, 3u);
    EXPECT_EQ(report->epochs_kept_pinned, 0u);
    EXPECT_EQ(report->partitions_retired, 3u * 4u);
    EXPECT_EQ(report->live_epochs, 2u);
    EXPECT_EQ(catalog.liveEpochs("clicks").value(), 2u);

    for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
        EXPECT_TRUE(catalog.epochRetired("clicks", epoch).value());
        auto pin = catalog.pin("clicks", epoch);
        ASSERT_FALSE(pin.ok());
        EXPECT_EQ(pin.status().code(), StatusCode::kNotFound);
    }
    for (uint64_t epoch = 4; epoch <= 5; ++epoch) {
        EXPECT_FALSE(catalog.epochRetired("clicks", epoch).value());
        EXPECT_TRUE(catalog.pin("clicks", epoch).ok());
    }

    // Idempotent: a second pass finds nothing eligible.
    report = catalog.applyRetention("clicks");
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->epochs_retired, 0u);
    EXPECT_EQ(report->live_epochs, 2u);
}

TEST(RetentionTest, DisabledPolicyIsNoOp)
{
    DatasetCatalog catalog;
    ASSERT_TRUE(catalog.registerDataset(smallSpec("clicks")).ok());
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    auto report = catalog.applyRetention("clicks");
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->epochs_retired, 0u);
    EXPECT_EQ(report->live_epochs, 4u);
    EXPECT_TRUE(catalog.pin("clicks", 1).ok());
}

TEST(RetentionTest, PinnedEpochSurvivesAndReplaysBitIdentical)
{
    DatasetCatalog catalog;
    DatasetSpec spec = smallSpec("clicks");
    spec.retain_epochs = 1;
    ASSERT_TRUE(catalog.registerDataset(spec).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    auto pinned = catalog.pin("clicks", 1);
    ASSERT_TRUE(pinned.ok());
    EXPECT_EQ(catalog.pinCount("clicks", 1).value(), 1u);
    const auto baseline = snapshotEpoch(pinned.value());

    // A copy shares the pin; dropping it keeps the epoch pinned.
    {
        EpochReader copy = pinned.value();
        EXPECT_EQ(catalog.pinCount("clicks", 1).value(), 1u);
    }
    EXPECT_EQ(catalog.pinCount("clicks", 1).value(), 1u);

    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
        auto report = catalog.applyRetention("clicks");
        ASSERT_TRUE(report.ok());
        EXPECT_GE(report->epochs_kept_pinned, 1u);
        EXPECT_FALSE(catalog.epochRetired("clicks", 1).value());
        EXPECT_EQ(snapshotEpoch(pinned.value()), baseline);
    }
    // Epochs 2..3 (older than head-retain, unpinned) are gone.
    EXPECT_TRUE(catalog.epochRetired("clicks", 2).value());
    EXPECT_TRUE(catalog.epochRetired("clicks", 3).value());

    // Releasing the last pin makes epoch 1 eligible again.
    pinned.value() = EpochReader();
    EXPECT_EQ(catalog.pinCount("clicks", 1).value(), 0u);
    auto report = catalog.applyRetention("clicks");
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->epochs_retired, 1u);
    EXPECT_TRUE(catalog.epochRetired("clicks", 1).value());
}

TEST(RetentionTest, RetireLinearizesWithConcurrentPins)
{
    DatasetCatalog catalog;
    DatasetSpec spec = smallSpec("clicks");
    spec.retain_epochs = 1;
    ASSERT_TRUE(catalog.registerDataset(spec).ok());
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    // Threads hammer pin(epoch 1) while retention passes run. Every
    // pin must either observe a live epoch (and replay it) or fail
    // kNotFound — no reader over retired storage, no crash.
    std::atomic<bool> done{false};
    std::atomic<uint64_t> attempts{0};
    std::thread retirer([&] {
        while (!done.load(std::memory_order_relaxed))
            EXPECT_TRUE(catalog.applyRetention("clicks").ok());
    });
    std::vector<std::thread> pinners;
    for (int t = 0; t < 4; ++t) {
        pinners.emplace_back([&] {
            for (int i = 0; i < 200; ++i) {
                auto pin = catalog.pin("clicks", 1);
                ++attempts;
                if (pin.ok()) {
                    RowBatch rows;
                    EXPECT_TRUE(pin->readPartition(0, rows).ok());
                    EXPECT_EQ(rows.numRows(), smallConfig().batch_size);
                } else {
                    EXPECT_EQ(pin.status().code(), StatusCode::kNotFound);
                }
            }
        });
    }
    for (std::thread& t : pinners)
        t.join();
    done.store(true);
    retirer.join();
    EXPECT_EQ(attempts.load(), 800u);

    // With every pin released, the epoch's window closes for good.
    while (!catalog.epochRetired("clicks", 1).value())
        ASSERT_TRUE(catalog.applyRetention("clicks").ok());
    EXPECT_EQ(catalog.pin("clicks", 1).status().code(),
              StatusCode::kNotFound);
    EXPECT_EQ(catalog.pinCount("clicks", 1).value(), 0u);
}

// --- Retention, persistent mode --------------------------------------

TEST(RetentionTest, PersistentRetireReclaimsDiskAndSurvivesPins)
{
    const std::string dir_a = freshDir("ret_shard_a");
    const std::string dir_b = freshDir("ret_shard_b");
    auto shard_a = openStore(dir_a);
    auto shard_b = openStore(dir_b);

    DatasetCatalog catalog;
    DatasetSpec spec = smallSpec("clicks");
    spec.retain_epochs = 2;
    ASSERT_TRUE(catalog
                    .registerDataset(spec, {shard_a.get(), shard_b.get()})
                    .ok());

    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
    auto pinned = catalog.pin("clicks", 1);
    ASSERT_TRUE(pinned.ok());
    const auto baseline = snapshotEpoch(pinned.value());

    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
    const uint64_t before = catalog.liveBytes("clicks").value();
    auto report = catalog.applyRetention("clicks");
    ASSERT_TRUE(report.ok());
    // Epochs 2 and 3 retire (1 is pinned, 4..5 retained).
    EXPECT_EQ(report->epochs_retired, 2u);
    EXPECT_EQ(report->epochs_kept_pinned, 1u);
    EXPECT_GT(report->bytes_reclaimed, 0u);
    EXPECT_EQ(catalog.liveBytes("clicks").value(),
              before - report->bytes_reclaimed);

    // The pinned epoch still replays bit-identically off the shards.
    EXPECT_EQ(snapshotEpoch(pinned.value()), baseline);
    for (uint64_t epoch : {2u, 3u}) {
        EXPECT_TRUE(catalog.epochRetired("clicks", epoch).value());
        for (size_t index = 0; index < 4; ++index) {
            SegmentStore* shard =
                index % 2 == 0 ? shard_a.get() : shard_b.get();
            EXPECT_EQ(shard
                          ->segmentForPartition(
                              epochPartitionId(epoch, index))
                          .status()
                          .code(),
                      StatusCode::kNotFound);
        }
    }
}

TEST(RetentionTest, RecoveryCompletesPartialRetire)
{
    const std::string dir_a = freshDir("ret_partial_a");
    const std::string dir_b = freshDir("ret_partial_b");
    std::vector<std::vector<uint8_t>> head_baseline;

    // Publish three epochs, then simulate a crash mid-retire of epoch 1
    // by retiring only its shard-a segments before "going down".
    {
        auto shard_a = openStore(dir_a);
        auto shard_b = openStore(dir_b);
        DatasetCatalog catalog;
        ASSERT_TRUE(catalog
                        .registerDataset(smallSpec("clicks"),
                                         {shard_a.get(), shard_b.get()})
                        .ok());
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
        auto head = catalog.pin("clicks", 3);
        ASSERT_TRUE(head.ok());
        head_baseline = snapshotEpoch(head.value());

        for (size_t index = 0; index < 4; index += 2) {
            auto info = shard_a->segmentForPartition(
                epochPartitionId(1, index));
            ASSERT_TRUE(info.ok());
            ASSERT_TRUE(
                shard_a->retireSegment(info->meta.segment_id).ok());
        }
    }

    // Re-open: recovery must classify epoch 1 (partial, below the
    // fully-live head 3) as crash-mid-retire and finish the job.
    {
        auto shard_a = openStore(dir_a);
        auto shard_b = openStore(dir_b);
        DatasetCatalog catalog;
        DatasetSpec spec = smallSpec("clicks");
        spec.retain_epochs = 2;
        ASSERT_TRUE(catalog
                        .registerDataset(spec,
                                         {shard_a.get(), shard_b.get()})
                        .ok());
        EXPECT_EQ(catalog.headEpoch("clicks").value(), 3u);
        EXPECT_TRUE(catalog.epochRetired("clicks", 1).value());
        EXPECT_EQ(catalog.pin("clicks", 1).status().code(),
                  StatusCode::kNotFound);
        for (size_t index = 0; index < 4; ++index) {
            SegmentStore* shard =
                index % 2 == 0 ? shard_a.get() : shard_b.get();
            EXPECT_EQ(shard
                          ->segmentForPartition(epochPartitionId(1, index))
                          .status()
                          .code(),
                      StatusCode::kNotFound)
                << "partition " << index << " of epoch 1 survived";
        }

        // Epoch 2 (fully live, below head) and the head are untouched.
        EXPECT_FALSE(catalog.epochRetired("clicks", 2).value());
        EXPECT_TRUE(catalog.pin("clicks", 2).ok());
        auto head = catalog.pin("clicks", 3);
        ASSERT_TRUE(head.ok());
        EXPECT_EQ(snapshotEpoch(head.value()), head_baseline);
    }
}

// --- Hot memory tier -------------------------------------------------

TEST(RetentionTest, PublishPromotesHeadIntoHotTier)
{
    DatasetCatalog catalog;
    DatasetSpec spec = smallSpec("clicks");
    spec.retain_epochs = 2;
    spec.hot_tier_bytes = 16u << 20;
    ASSERT_TRUE(catalog.registerDataset(spec).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    auto head = catalog.pin("clicks", 2);
    auto old_epoch = catalog.pin("clicks", 1);
    ASSERT_TRUE(head.ok());
    ASSERT_TRUE(old_epoch.ok());

    for (size_t index = 0; index < 4; ++index) {
        bool hot = false;
        ASSERT_TRUE(head->fetchEncoded(index, 0, &hot).ok());
        EXPECT_TRUE(hot) << "head partition " << index << " not hot";
        hot = true;
        ASSERT_TRUE(old_epoch->fetchEncoded(index, 0, &hot).ok());
        EXPECT_FALSE(hot) << "old partition " << index << " served hot";
    }

    // The next publish flips the tier: epoch 3 hot, epoch 2 demoted.
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
    auto new_head = catalog.pin("clicks", 3);
    ASSERT_TRUE(new_head.ok());
    bool hot = false;
    ASSERT_TRUE(new_head->fetchEncoded(0, 0, &hot).ok());
    EXPECT_TRUE(hot);
    hot = true;
    ASSERT_TRUE(head->fetchEncoded(0, 0, &hot).ok());
    EXPECT_FALSE(hot);
}

TEST(PartitionStoreTieringTest, HotTierBudgetAndRetire)
{
    // The store borrows the generator; keep it alive for the test.
    RawDataGenerator generator(smallConfig());
    PartitionStore store(generator);

    // No budget: promotion is a precondition failure.
    EXPECT_EQ(store.promotePartition(1).code(),
              StatusCode::kFailedPrecondition);

    store.setHotTierBudget(1u << 20);
    ASSERT_TRUE(store.promotePartition(1).ok());
    ASSERT_TRUE(store.promotePartition(1).ok());  // idempotent
    EXPECT_EQ(store.hotTierCount(), 1u);
    EXPECT_GT(store.hotTierBytes(), 0u);

    bool hot = false;
    ASSERT_TRUE(store.fetchPartition(1, 0, &hot).ok());
    EXPECT_TRUE(hot);
    EXPECT_EQ(store.hotTierHits(), 1u);
    ASSERT_TRUE(store.fetchPartition(2, 0, &hot).ok());
    EXPECT_FALSE(hot);
    EXPECT_EQ(store.coldFetches(), 1u);

    // A budget smaller than one partition rejects promotion.
    store.demotePartition(1);
    EXPECT_EQ(store.hotTierBytes(), 0u);
    store.setHotTierBudget(1);
    EXPECT_EQ(store.promotePartition(1).code(),
              StatusCode::kResourceExhausted);

    // Retired partitions are unfetchable and unpromotable.
    store.setHotTierBudget(1u << 20);
    auto reclaimed = store.retirePartition(2);
    ASSERT_TRUE(reclaimed.ok());
    EXPECT_GT(reclaimed.value(), 0u);  // cached encoding was dropped
    EXPECT_TRUE(store.isRetired(2));
    EXPECT_EQ(store.fetchPartition(2).status().code(),
              StatusCode::kNotFound);
    EXPECT_EQ(store.promotePartition(2).code(), StatusCode::kNotFound);
}

TEST(IngestServiceTest, SessionStatsSeparateHotAndColdFetches)
{
    DatasetCatalog catalog;
    DatasetSpec spec = smallSpec("clicks");
    spec.hot_tier_bytes = 16u << 20;
    ASSERT_TRUE(catalog.registerDataset(spec).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    ServiceOptions options;
    options.workers = 1;
    IngestService service(catalog, options);
    TenantSpec tenant;
    tenant.name = "trainer";
    tenant.dataset = "clicks";
    auto session = service.openSession(tenant);
    ASSERT_TRUE(session.ok());
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(service.nextBatch(session.value()).ok());

    auto stats = service.sessionStats(session.value());
    ASSERT_TRUE(stats.ok());
    // The head epoch is hot-promoted at publish: every fetch hits.
    EXPECT_GE(stats->hot_tier_hits, 8u);
    EXPECT_EQ(stats->cold_fetches, 0u);
    ASSERT_TRUE(service.closeSession(session.value()).ok());
}

// --- Pin-aware scrub -------------------------------------------------

TEST(RetentionTest, ScrubPrioritizesPinnedEpochs)
{
    const std::string dir_a = freshDir("scrub_shard_a");
    const std::string dir_b = freshDir("scrub_shard_b");
    auto shard_a = openStore(dir_a);
    auto shard_b = openStore(dir_b);

    DatasetCatalog catalog;
    ASSERT_TRUE(catalog
                    .registerDataset(smallSpec("clicks"),
                                     {shard_a.get(), shard_b.get()})
                    .ok());
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    // Pin epoch 2; the catalog's priority hook must steer both shards'
    // scrub cursors to epoch 2's segments first.
    auto pinned = catalog.pin("clicks", 2);
    ASSERT_TRUE(pinned.ok());
    for (SegmentStore* shard : {shard_a.get(), shard_b.get()}) {
        // Each shard holds 2 partitions per epoch; scrub a budget that
        // covers at most the pinned epoch's pages.
        auto verified = shard->scrubSome(2);
        ASSERT_TRUE(verified.ok());
        EXPECT_GT(verified.value(), 0u);
        const ScrubCounters counters = shard->scrubCounters();
        EXPECT_EQ(counters.pages_prioritized, counters.pages_total)
            << "scrub visited an unpinned segment before the pinned epoch";
    }
}

// --- DES lifecycle replay --------------------------------------------

TEST(ServiceScenarioTest, LifecycleBoundsFootprintAndSplitsTiers)
{
    ScenarioOptions options;
    options.devices = 8;
    options.service_sec = 0.2;
    options.duration_sec = 3600;
    options.lifecycle.publish_period_sec = 450;
    options.lifecycle.retain_epochs = 2;
    options.lifecycle.epoch_bytes = 1u << 30;
    options.lifecycle.cold_extra_sec = 0.1;

    ScenarioTenant hot;
    hot.name = "ranker";
    hot.traffic.diurnal.mean_batches_per_sec = 4.0;
    hot.traffic.diurnal.period_sec = options.duration_sec;
    ScenarioTenant cold;
    cold.name = "backfill";
    cold.traffic.diurnal.mean_batches_per_sec = 2.0;
    cold.traffic.diurnal.period_sec = options.duration_sec;
    cold.pin_lag_epochs = 2;
    cold.hold_pin_until_sec = options.duration_sec;

    const ScenarioReport report =
        runServiceScenario(options, {hot, cold});
    const LifecycleReport& life = report.lifecycle;
    EXPECT_EQ(life.epochs_published, 8u);
    EXPECT_GT(life.epochs_retired, 0u);
    EXPECT_GT(life.epochs_kept_pinned, 0u);
    EXPECT_TRUE(life.footprint_bounded);
    EXPECT_LE(life.final_live_bytes,
              life.peak_live_bytes);
    EXPECT_GT(life.hot_served, 0u);
    EXPECT_GT(life.cold_served, 0u);
    EXPECT_GT(life.mean_cold_latency_sec, life.mean_hot_latency_sec);
    // The head-follower streams hot; the pinned backfill streams cold.
    EXPECT_GT(report.tenants[0].hot_served, report.tenants[0].cold_served);
    EXPECT_GT(report.tenants[1].cold_served, 0u);
    EXPECT_NE(report.tenants[1].pinned_epoch, 0u);

    // Determinism: bit-identical lifecycle outcome on replay.
    const ScenarioReport replay =
        runServiceScenario(options, {hot, cold});
    EXPECT_EQ(replay.lifecycle.epochs_retired, life.epochs_retired);
    EXPECT_EQ(replay.lifecycle.final_live_bytes, life.final_live_bytes);
    EXPECT_EQ(replay.lifecycle.hot_served, life.hot_served);
    EXPECT_EQ(replay.lifecycle.cold_served, life.cold_served);
}

}  // namespace
}  // namespace presto
