/**
 * @file
 * Tests for the functional ISP datapath emulator: bit-identical results
 * vs the CPU reference path and unit counters consistent with the
 * analytical TransformWork model.
 */
#include <gtest/gtest.h>

#include "columnar/columnar_file.h"
#include "core/isp_emulator.h"
#include "datagen/generator.h"

namespace presto {
namespace {

RmConfig
emuConfig(int rm, size_t batch = 96)
{
    RmConfig cfg = rmConfig(rm);
    cfg.batch_size = batch;
    if (rm != 1) {
        cfg.num_dense = 7;
        cfg.num_sparse = 4;
        cfg.num_generated = 3;
    }
    return cfg;
}

class EmulatorEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(EmulatorEquivalence, MatchesCpuReferencePath)
{
    const RmConfig cfg = emuConfig(GetParam());
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(4);
    const auto encoded = ColumnarFileWriter().write(raw, 4);

    const MiniBatch reference = Preprocessor(cfg).preprocess(raw);
    IspEmulator emulator(cfg);
    const MiniBatch emulated = emulator.process(encoded).value();

    EXPECT_EQ(reference.dense, emulated.dense);
    EXPECT_EQ(reference.labels, emulated.labels);
    ASSERT_EQ(reference.sparse.size(), emulated.sparse.size());
    for (size_t i = 0; i < reference.sparse.size(); ++i) {
        EXPECT_EQ(reference.sparse[i].feature_name,
                  emulated.sparse[i].feature_name);
        EXPECT_EQ(reference.sparse[i].values, emulated.sparse[i].values);
        EXPECT_EQ(reference.sparse[i].lengths, emulated.sparse[i].lengths);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, EmulatorEquivalence,
                         ::testing::Values(1, 2, 5));

TEST(IspEmulatorTest, CountersMatchTransformWork)
{
    const RmConfig cfg = emuConfig(5, 128);
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    const auto encoded = ColumnarFileWriter().write(raw, 0);
    const TransformWork work = TransformWork::measure(cfg, raw);

    IspEmulator emulator(cfg);
    (void)emulator.process(encoded);
    const IspUnitCounters& c = emulator.counters();

    EXPECT_EQ(static_cast<double>(c.decoded_values), work.raw_values);
    EXPECT_EQ(static_cast<double>(c.bucketize_values),
              work.bucketize_values);
    EXPECT_EQ(static_cast<double>(c.hash_values), work.hash_values);
    EXPECT_EQ(static_cast<double>(c.log_values), work.dense_values);
    EXPECT_EQ(static_cast<double>(c.convert_values), work.output_values);
    EXPECT_EQ(c.bucketize_levels,
              c.bucketize_values *
                  static_cast<uint64_t>(work.bucketize_levels));
    EXPECT_EQ(c.p2p_bytes, encoded.size());
}

TEST(IspEmulatorTest, DoubleBufferingEngagesOnLargeStreams)
{
    // Batches larger than the PE buffer require multiple chunk swaps.
    RmConfig cfg = emuConfig(1, 8192);
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);
    IspEmulator emulator(cfg);
    (void)emulator.process(encoded);
    // 8192-value streams over 4096-value buffers: >= 2 swaps per pass.
    EXPECT_GT(emulator.counters().buffer_swaps,
              cfg.num_dense * 2);
}

TEST(IspEmulatorTest, FeatureUnitsEngageUpToPoolSize)
{
    const RmConfig cfg = emuConfig(2);  // 7 dense + 4 sparse streams
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);

    IspEmulator narrow(cfg, 2);
    (void)narrow.process(encoded);
    EXPECT_EQ(narrow.counters().feature_units_used, 2u);

    IspEmulator wide(cfg, 64);
    (void)wide.process(encoded);
    EXPECT_EQ(wide.counters().feature_units_used, 11u);  // one per stream
}

TEST(IspEmulatorTest, DeterministicAcrossInstances)
{
    const RmConfig cfg = emuConfig(2);
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(1), 1);
    IspEmulator a(cfg), b(cfg);
    const MiniBatch ma = a.process(encoded).value();
    const MiniBatch mb = b.process(encoded).value();
    EXPECT_EQ(ma.dense, mb.dense);
    for (size_t i = 0; i < ma.sparse.size(); ++i)
        EXPECT_EQ(ma.sparse[i].values, mb.sparse[i].values);
}

TEST(IspEmulatorTest, CorruptPartitionReturnsCorruptionStatus)
{
    const RmConfig cfg = emuConfig(1);
    RawDataGenerator gen(cfg);
    auto encoded = ColumnarFileWriter().write(gen.generatePartition(0), 0);
    encoded[encoded.size() / 2] ^= 0x01;
    IspEmulator emulator(cfg);
    const auto result = emulator.process(encoded);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    EXPECT_NE(result.status().message().find("ISP decode failed"),
              std::string::npos);
}

TEST(IspEmulatorTest, WorkloadMismatchReturnsCorruptionStatus)
{
    // A valid RM2-shaped partition fed to an RM1-configured device is a
    // data-placement fault, not a crash.
    const RmConfig stored = emuConfig(2);
    RawDataGenerator gen(stored);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);
    IspEmulator emulator(emuConfig(1));
    const auto result = emulator.process(encoded);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(IspEmulatorDeathTest, BadUnitCountPanics)
{
    EXPECT_DEATH(IspEmulator(rmConfig(1), 0), "feature unit");
}

}  // namespace
}  // namespace presto
