/**
 * @file
 * Unit tests for the tabular data model: schema, columns, row batches,
 * and train-ready mini-batch tensors.
 */
#include <gtest/gtest.h>

#include "tabular/column.h"
#include "tabular/minibatch.h"
#include "tabular/row_batch.h"
#include "tabular/schema.h"

namespace presto {
namespace {

// --- Schema ----------------------------------------------------------------

TEST(SchemaTest, CountsByKind)
{
    Schema s = Schema::makeRecSys(3, 2);
    EXPECT_EQ(s.numFeatures(), 6u);
    EXPECT_EQ(s.numDense(), 3u);
    EXPECT_EQ(s.numSparse(), 2u);
    EXPECT_EQ(s.numLabels(), 1u);
}

TEST(SchemaTest, MakeRecSysWithoutLabel)
{
    Schema s = Schema::makeRecSys(1, 1, /*with_label=*/false);
    EXPECT_EQ(s.numFeatures(), 2u);
    EXPECT_EQ(s.numLabels(), 0u);
}

TEST(SchemaTest, IndexOfFindsFeatures)
{
    Schema s = Schema::makeRecSys(2, 2);
    EXPECT_EQ(s.indexOf("label"), 0u);
    EXPECT_EQ(s.indexOf("dense_1"), 2u);
    EXPECT_EQ(s.indexOf("sparse_0"), 3u);
    EXPECT_FALSE(s.indexOf("nope").has_value());
}

TEST(SchemaTest, IndicesOfKindPreservesOrder)
{
    Schema s = Schema::makeRecSys(3, 2);
    const auto dense = s.indicesOfKind(FeatureKind::kDense);
    ASSERT_EQ(dense.size(), 3u);
    EXPECT_EQ(dense[0], 1u);
    EXPECT_EQ(dense[2], 3u);
    const auto sparse = s.indicesOfKind(FeatureKind::kSparse);
    ASSERT_EQ(sparse.size(), 2u);
    EXPECT_EQ(sparse[0], 4u);
}

TEST(SchemaTest, EqualityIsStructural)
{
    EXPECT_EQ(Schema::makeRecSys(2, 2), Schema::makeRecSys(2, 2));
    EXPECT_FALSE(Schema::makeRecSys(2, 2) == Schema::makeRecSys(2, 3));
}

TEST(SchemaTest, FeatureAccessor)
{
    Schema s = Schema::makeRecSys(1, 1);
    EXPECT_EQ(s.feature(1).kind, FeatureKind::kDense);
    EXPECT_EQ(s.feature(2).name, "sparse_0");
}

TEST(SchemaDeathTest, DuplicateNamePanics)
{
    Schema s;
    s.add({"x", FeatureKind::kDense});
    EXPECT_DEATH(s.add({"x", FeatureKind::kSparse}), "duplicate feature");
}

TEST(SchemaDeathTest, FeatureIndexOutOfRangePanics)
{
    Schema s = Schema::makeRecSys(1, 0);
    EXPECT_DEATH(s.feature(5), "out of range");
}

TEST(SchemaTest, KindNames)
{
    EXPECT_STREQ(featureKindName(FeatureKind::kDense), "dense");
    EXPECT_STREQ(featureKindName(FeatureKind::kSparse), "sparse");
    EXPECT_STREQ(featureKindName(FeatureKind::kLabel), "label");
}

// --- DenseColumn -------------------------------------------------------------

TEST(DenseColumnTest, StoresValues)
{
    DenseColumn c({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(c.numRows(), 3u);
    EXPECT_FLOAT_EQ(c.value(1), 2.0f);
    EXPECT_EQ(c.byteSize(), 12u);
}

TEST(DenseColumnTest, Append)
{
    DenseColumn c;
    c.append(4.0f);
    EXPECT_EQ(c.numRows(), 1u);
    EXPECT_FLOAT_EQ(c.value(0), 4.0f);
}

TEST(DenseColumnDeathTest, OutOfRangePanics)
{
    DenseColumn c({1.0f});
    EXPECT_DEATH(c.value(1), "out of range");
}

// --- SparseColumn ------------------------------------------------------------

TEST(SparseColumnTest, EmptyHasZeroRows)
{
    SparseColumn c;
    EXPECT_EQ(c.numRows(), 0u);
    EXPECT_EQ(c.numValues(), 0u);
    EXPECT_DOUBLE_EQ(c.averageLength(), 0.0);
}

TEST(SparseColumnTest, AppendRows)
{
    SparseColumn c;
    const int64_t r0[] = {1, 2, 3};
    const int64_t r2[] = {7};
    c.appendRow(r0);
    c.appendRow({});
    c.appendRow(r2);
    EXPECT_EQ(c.numRows(), 3u);
    EXPECT_EQ(c.numValues(), 4u);
    EXPECT_EQ(c.rowLength(0), 3u);
    EXPECT_EQ(c.rowLength(1), 0u);
    EXPECT_EQ(c.row(2)[0], 7);
    EXPECT_DOUBLE_EQ(c.averageLength(), 4.0 / 3.0);
}

TEST(SparseColumnTest, CsrConstruction)
{
    SparseColumn c({10, 20, 30}, {0, 2, 3});
    EXPECT_EQ(c.numRows(), 2u);
    EXPECT_EQ(c.row(0).size(), 2u);
    EXPECT_EQ(c.row(1)[0], 30);
}

TEST(SparseColumnDeathTest, BadOffsetsPanic)
{
    EXPECT_DEATH(SparseColumn({1}, {}), "at least one entry");
    EXPECT_DEATH(SparseColumn({1}, {1, 1}), "start at 0");
    EXPECT_DEATH(SparseColumn({1, 2}, {0, 1}), "last offset");
    EXPECT_DEATH(SparseColumn({1, 2}, {0, 2, 1, 2}), "non-decreasing");
}

TEST(SparseColumnDeathTest, RowOutOfRangePanics)
{
    SparseColumn c({1}, {0, 1});
    EXPECT_DEATH(c.row(1), "out of range");
}

TEST(SparseColumnTest, ByteSizeCountsValuesAndOffsets)
{
    SparseColumn c({1, 2}, {0, 1, 2});
    EXPECT_EQ(c.byteSize(), 2 * sizeof(int64_t) + 3 * sizeof(uint32_t));
}

// --- RowBatch -----------------------------------------------------------------

RowBatch
makeBatch(size_t rows)
{
    RowBatch batch(Schema::makeRecSys(1, 1));
    std::vector<float> labels(rows, 0.0f);
    std::vector<float> dense(rows, 1.0f);
    batch.addColumn(DenseColumn(labels));
    batch.addColumn(DenseColumn(dense));
    SparseColumn sparse;
    for (size_t r = 0; r < rows; ++r) {
        const int64_t id = static_cast<int64_t>(r);
        sparse.appendRow({&id, 1});
    }
    batch.addColumn(std::move(sparse));
    return batch;
}

TEST(RowBatchTest, BuildsCompleteBatch)
{
    RowBatch batch = makeBatch(4);
    EXPECT_TRUE(batch.complete());
    EXPECT_EQ(batch.numRows(), 4u);
    EXPECT_EQ(batch.numColumns(), 3u);
    EXPECT_EQ(batch.totalValues(), 12u);
}

TEST(RowBatchTest, TypedAccessors)
{
    RowBatch batch = makeBatch(2);
    EXPECT_EQ(batch.dense(1).numRows(), 2u);
    EXPECT_EQ(batch.sparse(2).numValues(), 2u);
    batch.mutableDense(1).mutableValues()[0] = 9.0f;
    EXPECT_FLOAT_EQ(batch.dense(1).value(0), 9.0f);
}

TEST(RowBatchTest, EqualityIsDeep)
{
    EXPECT_EQ(makeBatch(3), makeBatch(3));
    EXPECT_FALSE(makeBatch(3) == makeBatch(4));
}

TEST(RowBatchDeathTest, KindMismatchPanics)
{
    RowBatch batch(Schema::makeRecSys(1, 0));
    batch.addColumn(DenseColumn({0.0f}));
    EXPECT_DEATH(batch.addColumn(SparseColumn()), "kind mismatch");
}

TEST(RowBatchDeathTest, RowCountMismatchPanics)
{
    RowBatch batch(Schema::makeRecSys(1, 0));
    batch.addColumn(DenseColumn({0.0f, 1.0f}));
    EXPECT_DEATH(batch.addColumn(DenseColumn({0.0f})),
                 "row-count mismatch");
}

TEST(RowBatchDeathTest, TooManyColumnsPanics)
{
    RowBatch batch = makeBatch(1);
    EXPECT_DEATH(batch.addColumn(DenseColumn({0.0f})),
                 "more columns than schema");
}

TEST(RowBatchDeathTest, WrongKindAccessorPanics)
{
    RowBatch batch = makeBatch(1);
    EXPECT_DEATH(batch.sparse(0), "not sparse");
    EXPECT_DEATH(batch.dense(2), "not dense");
}

TEST(RowBatchTest, ByteSizeSumsColumns)
{
    RowBatch batch = makeBatch(2);
    // 2 dense cols (2 rows x 4B) + sparse (2 ids x 8B + 3 offsets x 4B).
    EXPECT_EQ(batch.byteSize(), 8u + 8u + 16u + 12u);
}

// --- MiniBatch -------------------------------------------------------------------

MiniBatch
makeMiniBatch()
{
    MiniBatch mb;
    mb.batch_size = 2;
    mb.num_dense = 3;
    mb.dense.assign(6, 0.5f);
    mb.labels.assign(2, 0.0f);
    JaggedIndices j;
    j.feature_name = "t0";
    j.values = {1, 2, 3};
    j.lengths = {2, 1};
    mb.sparse.push_back(j);
    return mb;
}

TEST(MiniBatchTest, ConsistentWhenWellFormed)
{
    EXPECT_TRUE(makeMiniBatch().consistent());
}

TEST(MiniBatchTest, InconsistentDenseExtent)
{
    MiniBatch mb = makeMiniBatch();
    mb.dense.pop_back();
    EXPECT_FALSE(mb.consistent());
}

TEST(MiniBatchTest, InconsistentLengthsSum)
{
    MiniBatch mb = makeMiniBatch();
    mb.sparse[0].lengths = {1, 1};  // sums to 2, values has 3
    EXPECT_FALSE(mb.consistent());
}

TEST(MiniBatchTest, InconsistentLengthsExtent)
{
    MiniBatch mb = makeMiniBatch();
    mb.sparse[0].lengths = {3};
    EXPECT_FALSE(mb.consistent());
}

TEST(MiniBatchTest, InconsistentLabels)
{
    MiniBatch mb = makeMiniBatch();
    mb.labels.push_back(1.0f);
    EXPECT_FALSE(mb.consistent());
}

TEST(MiniBatchTest, ByteSizeCountsAllTensors)
{
    const MiniBatch mb = makeMiniBatch();
    EXPECT_EQ(mb.byteSize(), 6 * 4 + 2 * 4 + 3 * 8 + 2 * 4u);
}

TEST(MiniBatchTest, TotalSparseValues)
{
    EXPECT_EQ(makeMiniBatch().totalSparseValues(), 3u);
}

}  // namespace
}  // namespace presto
