/**
 * @file
 * Tests for the columnar file format: varint primitives, page encodings
 * (round-trip property sweeps), page framing with CRC, and whole-file
 * write/read with projection and failure injection.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>

#include "columnar/columnar_file.h"
#include "columnar/dataset.h"
#include "columnar/encoding.h"
#include "columnar/page.h"
#include "common/rng.h"
#include "datagen/generator.h"

namespace presto {
namespace {

// --- varint / zigzag -----------------------------------------------------------

TEST(VarintTest, RoundTripEdgeValues)
{
    for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{127},
                       uint64_t{128}, uint64_t{16383}, uint64_t{16384},
                       std::numeric_limits<uint64_t>::max()}) {
        std::vector<uint8_t> buf;
        enc::putVarint(buf, v);
        size_t pos = 0;
        uint64_t out = 0;
        ASSERT_TRUE(enc::getVarint(buf, pos, out).ok());
        EXPECT_EQ(out, v);
        EXPECT_EQ(pos, buf.size());
    }
}

TEST(VarintTest, TruncatedInputFails)
{
    std::vector<uint8_t> buf;
    enc::putVarint(buf, 300);
    buf.pop_back();
    size_t pos = 0;
    uint64_t out = 0;
    EXPECT_EQ(enc::getVarint(buf, pos, out).code(),
              StatusCode::kCorruption);
}

TEST(VarintTest, OverlongInputFails)
{
    std::vector<uint8_t> buf(11, 0x80);
    size_t pos = 0;
    uint64_t out = 0;
    EXPECT_EQ(enc::getVarint(buf, pos, out).code(),
              StatusCode::kCorruption);
}

TEST(ZigZagTest, RoundTripSignedValues)
{
    for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-2},
                      std::numeric_limits<int64_t>::min(),
                      std::numeric_limits<int64_t>::max()}) {
        EXPECT_EQ(enc::unZigZag(enc::zigZag(v)), v);
    }
}

TEST(ZigZagTest, SmallMagnitudesEncodeSmall)
{
    EXPECT_EQ(enc::zigZag(0), 0u);
    EXPECT_EQ(enc::zigZag(-1), 1u);
    EXPECT_EQ(enc::zigZag(1), 2u);
    EXPECT_EQ(enc::zigZag(-2), 3u);
}

// --- integer encodings: round-trip property sweep ---------------------------------

enum class DataShape { kUniform, kSmall, kMonotone, kRuns, kFewDistinct };

std::vector<int64_t>
makeData(DataShape shape, size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int64_t> v(n);
    int64_t acc = 0;
    for (size_t i = 0; i < n; ++i) {
        switch (shape) {
          case DataShape::kUniform:
            v[i] = static_cast<int64_t>(rng.next());
            break;
          case DataShape::kSmall:
            v[i] = rng.uniformInt(-100, 100);
            break;
          case DataShape::kMonotone:
            acc += static_cast<int64_t>(rng.uniformInt(uint64_t{50}));
            v[i] = acc;
            break;
          case DataShape::kRuns:
            v[i] = static_cast<int64_t>((i / 97) % 3);
            break;
          case DataShape::kFewDistinct:
            v[i] = static_cast<int64_t>(rng.uniformInt(uint64_t{10})) *
                   1'000'003;
            break;
        }
    }
    return v;
}

class IntEncodingRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<Encoding, DataShape, size_t>>
{
};

TEST_P(IntEncodingRoundTrip, DecodeRecoversInput)
{
    const auto [encoding, shape, n] = GetParam();
    const auto data = makeData(shape, n, 42);

    std::vector<uint8_t> payload;
    switch (encoding) {
      case Encoding::kPlainI64:
        payload = enc::encodePlainI64(data);
        break;
      case Encoding::kVarint:
        payload = enc::encodeVarint(data);
        break;
      case Encoding::kDeltaVarint:
        payload = enc::encodeDeltaVarint(data);
        break;
      case Encoding::kRle:
        payload = enc::encodeRle(data);
        break;
      case Encoding::kDictionary:
        payload = enc::encodeDictionary(data);
        break;
      case Encoding::kBitPacked:
        payload = enc::encodeBitPacked(data);
        break;
      default:
        FAIL();
    }

    std::vector<int64_t> out;
    ASSERT_TRUE(enc::decodeI64(encoding, payload, data.size(), out).ok());
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntEncodingRoundTrip,
    ::testing::Combine(
        ::testing::Values(Encoding::kPlainI64, Encoding::kVarint,
                          Encoding::kDeltaVarint, Encoding::kRle,
                          Encoding::kDictionary, Encoding::kBitPacked),
        ::testing::Values(DataShape::kUniform, DataShape::kSmall,
                          DataShape::kMonotone, DataShape::kRuns,
                          DataShape::kFewDistinct),
        ::testing::Values(size_t{0}, size_t{1}, size_t{255},
                          size_t{10000})));

TEST(EncodingTest, FloatRoundTrip)
{
    Rng rng(7);
    std::vector<float> data(1000);
    for (auto& v : data)
        v = static_cast<float>(rng.normal());
    data[0] = std::numeric_limits<float>::quiet_NaN();
    data[1] = std::numeric_limits<float>::infinity();
    const auto payload = enc::encodePlainF32(data);
    std::vector<float> out;
    ASSERT_TRUE(enc::decodeF32(Encoding::kPlainF32, payload, data.size(),
                               out)
                    .ok());
    ASSERT_EQ(out.size(), data.size());
    EXPECT_TRUE(std::isnan(out[0]));
    EXPECT_EQ(out[1], data[1]);
    for (size_t i = 2; i < data.size(); ++i)
        EXPECT_EQ(out[i], data[i]);
}

TEST(EncodingTest, RleCompressesRuns)
{
    const auto data = makeData(DataShape::kRuns, 10000, 1);
    EXPECT_LT(enc::encodeRle(data).size(), data.size());
}

TEST(EncodingTest, DictionaryCompressesFewDistinct)
{
    const auto data = makeData(DataShape::kFewDistinct, 10000, 1);
    EXPECT_LT(enc::encodeDictionary(data).size(),
              enc::encodeVarint(data).size());
}

TEST(EncodingTest, ChooseIntEncodingPicksSensibly)
{
    EXPECT_EQ(enc::chooseIntEncoding(makeData(DataShape::kRuns, 4096, 1)),
              Encoding::kRle);
    // Monotone offsets: mode-2 kBitPacked (frame-of-reference over
    // deltas) packs the bounded deltas into 6 bits each, beating the
    // one-byte-per-delta kDeltaVarint on size and decoding on the
    // shift/mask path instead of byte-wise varints.
    EXPECT_EQ(
        enc::chooseIntEncoding(makeData(DataShape::kMonotone, 4096, 1)),
        Encoding::kBitPacked);
    // Few-distinct data packs its dictionary indices into fixed-width
    // bits, which beats the varint-index kDictionary encoding on size.
    EXPECT_EQ(
        enc::chooseIntEncoding(makeData(DataShape::kFewDistinct, 4096, 1)),
        Encoding::kBitPacked);
    // Uniform 64-bit values compress under no encoding; plain wins the
    // size tie because it is the cheapest to decode.
    EXPECT_EQ(
        enc::chooseIntEncoding(makeData(DataShape::kUniform, 4096, 1)),
        Encoding::kPlainI64);
}

TEST(EncodingTest, DecodeWrongSizePlainFails)
{
    std::vector<uint8_t> payload(12);
    std::vector<int64_t> out;
    EXPECT_EQ(enc::decodeI64(Encoding::kPlainI64, payload, 2, out).code(),
              StatusCode::kCorruption);
    std::vector<float> fout;
    EXPECT_EQ(enc::decodeF32(Encoding::kPlainF32, payload, 2, fout).code(),
              StatusCode::kCorruption);
}

TEST(EncodingTest, DecodeTrailingBytesFails)
{
    auto payload = enc::encodeVarint(std::vector<int64_t>{1, 2, 3});
    payload.push_back(0);
    std::vector<int64_t> out;
    EXPECT_EQ(enc::decodeI64(Encoding::kVarint, payload, 3, out).code(),
              StatusCode::kCorruption);
}

TEST(EncodingTest, DictionaryBadIndexFails)
{
    std::vector<uint8_t> payload;
    enc::putVarint(payload, 1);                 // dict size 1
    enc::putVarint(payload, enc::zigZag(42));   // dict entry
    enc::putVarint(payload, 5);                 // index out of range
    std::vector<int64_t> out;
    EXPECT_EQ(
        enc::decodeI64(Encoding::kDictionary, payload, 1, out).code(),
        StatusCode::kCorruption);
}

TEST(EncodingTest, FloatEncodingOnIntPageFails)
{
    std::vector<int64_t> out;
    EXPECT_EQ(enc::decodeI64(Encoding::kPlainF32, {}, 0, out).code(),
              StatusCode::kCorruption);
    std::vector<float> fout;
    EXPECT_EQ(enc::decodeF32(Encoding::kVarint, {}, 0, fout).code(),
              StatusCode::kCorruption);
}

TEST(EncodingTest, NamesAreStable)
{
    EXPECT_STREQ(encodingName(Encoding::kPlainF32), "plain_f32");
    EXPECT_STREQ(encodingName(Encoding::kDictionary), "dictionary");
    EXPECT_STREQ(encodingName(Encoding::kBitPacked), "bit_packed");
}

// --- page framing -------------------------------------------------------------------

TEST(PageFrameTest, RoundTrip)
{
    std::vector<uint8_t> out;
    const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    writePageFrame(out, Encoding::kVarint, 5, payload);

    size_t pos = 0;
    PageView page;
    ASSERT_TRUE(readPageFrame(out, pos, page).ok());
    EXPECT_EQ(page.encoding, Encoding::kVarint);
    EXPECT_EQ(page.value_count, 5u);
    EXPECT_TRUE(std::equal(page.payload.begin(), page.payload.end(),
                           payload.begin()));
    EXPECT_EQ(pos, out.size());
}

TEST(PageFrameTest, EveryByteFlipIsDetected)
{
    std::vector<uint8_t> out;
    const std::vector<uint8_t> payload = {9, 8, 7};
    writePageFrame(out, Encoding::kRle, 3, payload);
    for (size_t i = 0; i < out.size(); ++i) {
        auto corrupted = out;
        corrupted[i] ^= 0x01;
        size_t pos = 0;
        PageView page;
        EXPECT_FALSE(readPageFrame(corrupted, pos, page).ok())
            << "flip at byte " << i << " not detected";
    }
}

TEST(PageFrameTest, TruncationDetected)
{
    std::vector<uint8_t> out;
    writePageFrame(out, Encoding::kVarint, 1, std::vector<uint8_t>{1});
    for (size_t keep = 0; keep < out.size(); ++keep) {
        std::span<const uint8_t> prefix(out.data(), keep);
        size_t pos = 0;
        PageView page;
        EXPECT_EQ(readPageFrame(prefix, pos, page).code(),
                  StatusCode::kCorruption);
    }
}

// --- whole files ----------------------------------------------------------------------

RowBatch
smallBatch(int rm, size_t rows, uint64_t partition = 0)
{
    RmConfig cfg = rmConfig(rm);
    cfg.batch_size = rows;
    RawDataGenerator gen(cfg);
    return gen.generatePartition(partition);
}

class FileRoundTrip : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(FileRoundTrip, ReadAllRecoversBatch)
{
    const auto [rm, force_plain] = GetParam();
    const RowBatch batch = smallBatch(rm, 200);
    WriterOptions opts;
    opts.force_plain = force_plain;
    const auto bytes = ColumnarFileWriter(opts).write(batch, 17);

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    EXPECT_EQ(reader.footer().num_rows, 200u);
    EXPECT_EQ(reader.footer().partition_id, 17u);
    EXPECT_EQ(reader.footer().schema(), batch.schema());

    auto out = reader.readAll();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, batch);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FileRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Bool()),
    [](const auto& info) {
        return "RM" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "_plain" : "_compressed");
    });

TEST(FileTest, MultiPageColumns)
{
    // More rows than kMaxValuesPerPage forces multiple pages per stream.
    RowBatch batch(Schema::makeRecSys(1, 0));
    const size_t rows = kMaxValuesPerPage + 100;
    std::vector<float> labels(rows, 0.0f);
    std::vector<float> dense(rows);
    for (size_t i = 0; i < rows; ++i)
        dense[i] = static_cast<float>(i);
    batch.addColumn(DenseColumn(labels));
    batch.addColumn(DenseColumn(dense));

    const auto bytes = ColumnarFileWriter().write(batch, 0);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    EXPECT_GE(reader.footer().columns[1].streams[0].num_pages, 2u);
    auto out = reader.readAll();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, batch);
}

TEST(FileTest, ProjectionTouchesOnlySelectedColumns)
{
    const RowBatch batch = smallBatch(2, 300);
    const auto bytes = ColumnarFileWriter().write(batch, 0);

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    const uint64_t footer_only = reader.bytesTouched();

    auto out = reader.readColumns({"dense_0", "sparse_3"});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->numColumns(), 2u);
    EXPECT_EQ(out->numRows(), 300u);
    // Selective fetch: far less than the full file.
    EXPECT_LT(reader.bytesTouched() - footer_only, bytes.size() / 10);
    // Projected columns equal the originals.
    EXPECT_EQ(out->dense(0), batch.dense(1));
    const auto sparse_idx = batch.schema().indexOf("sparse_3");
    ASSERT_TRUE(sparse_idx.has_value());
    EXPECT_EQ(out->sparse(1), batch.sparse(*sparse_idx));
}

TEST(FileTest, ProjectionPreservesRequestOrder)
{
    const RowBatch batch = smallBatch(1, 50);
    const auto bytes = ColumnarFileWriter().write(batch, 0);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    auto out = reader.readColumns({"sparse_1", "label"});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->schema().feature(0).name, "sparse_1");
    EXPECT_EQ(out->schema().feature(1).name, "label");
}

TEST(FileTest, UnknownColumnIsNotFound)
{
    const RowBatch batch = smallBatch(1, 10);
    const auto bytes = ColumnarFileWriter().write(batch, 0);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    EXPECT_EQ(reader.readColumns({"bogus"}).status().code(),
              StatusCode::kNotFound);
}

TEST(FileTest, ReadBeforeOpenFails)
{
    ColumnarFileReader reader;
    EXPECT_EQ(reader.readAll().status().code(),
              StatusCode::kFailedPrecondition);
}

TEST(FileTest, HeaderMagicCorruptionDetected)
{
    const auto bytes = ColumnarFileWriter().write(smallBatch(1, 10), 0);
    auto corrupted = bytes;
    corrupted[0] ^= 0xff;
    ColumnarFileReader reader;
    EXPECT_EQ(reader.open(corrupted).code(), StatusCode::kCorruption);
}

TEST(FileTest, TrailerMagicCorruptionDetected)
{
    const auto bytes = ColumnarFileWriter().write(smallBatch(1, 10), 0);
    auto corrupted = bytes;
    corrupted.back() ^= 0xff;
    ColumnarFileReader reader;
    EXPECT_EQ(reader.open(corrupted).code(), StatusCode::kCorruption);
}

TEST(FileTest, FooterCorruptionDetected)
{
    const auto bytes = ColumnarFileWriter().write(smallBatch(1, 10), 0);
    auto corrupted = bytes;
    corrupted[corrupted.size() - 20] ^= 0x10;  // inside footer
    ColumnarFileReader reader;
    EXPECT_EQ(reader.open(corrupted).code(), StatusCode::kCorruption);
}

TEST(FileTest, DataPageCorruptionDetectedOnRead)
{
    const auto bytes = ColumnarFileWriter().write(smallBatch(1, 200), 0);
    auto corrupted = bytes;
    corrupted[100] ^= 0x01;  // inside the first column chunk
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(corrupted).ok());  // footer still intact
    EXPECT_EQ(reader.readAll().status().code(), StatusCode::kCorruption);
}

TEST(FileTest, RandomByteFlipsNeverEscapeDetection)
{
    const RowBatch batch = smallBatch(1, 100);
    const auto bytes = ColumnarFileWriter().write(batch, 0);
    Rng rng(31337);
    for (int trial = 0; trial < 50; ++trial) {
        auto corrupted = bytes;
        const size_t pos = rng.uniformInt(corrupted.size());
        const auto bit = static_cast<uint8_t>(
            1u << rng.uniformInt(uint64_t{8}));
        corrupted[pos] ^= bit;
        ColumnarFileReader reader;
        Status st = reader.open(corrupted);
        if (st.ok()) {
            auto out = reader.readAll();
            if (out.ok()) {
                // The flip may hit redundant footer varint padding only
                // if it reconstructs identical data; require equality.
                EXPECT_EQ(*out, batch) << "undetected corruption at byte "
                                       << pos;
            }
        }
    }
}

TEST(FileTest, ZeroRowBatchRoundTrips)
{
    RowBatch batch(Schema::makeRecSys(1, 1));
    batch.addColumn(DenseColumn(std::vector<float>{}));
    batch.addColumn(DenseColumn(std::vector<float>{}));
    batch.addColumn(SparseColumn());
    const auto bytes = ColumnarFileWriter().write(batch, 0);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    EXPECT_EQ(reader.footer().num_rows, 0u);
    auto out = reader.readAll();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->numRows(), 0u);
    EXPECT_EQ(*out, batch);
}

TEST(FileTest, SingleRowBatchRoundTrips)
{
    const RowBatch batch = smallBatch(1, 1);
    const auto bytes = ColumnarFileWriter().write(batch, 0);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    auto out = reader.readAll();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, batch);
}

TEST(FileTest, TinyInputsRejected)
{
    ColumnarFileReader reader;
    EXPECT_EQ(reader.open(std::vector<uint8_t>{}).code(),
              StatusCode::kCorruption);
    EXPECT_EQ(reader.open(std::vector<uint8_t>(8, 0)).code(),
              StatusCode::kCorruption);
}

TEST(FileTest, SaveAndLoadFile)
{
    const auto bytes = ColumnarFileWriter().write(smallBatch(1, 20), 3);
    const std::string path = ::testing::TempDir() + "psf_roundtrip.psf";
    ASSERT_TRUE(saveToFile(path, bytes).ok());
    auto loaded = loadFromFile(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(*loaded, bytes);
}

TEST(FileTest, LoadMissingFileIsNotFound)
{
    EXPECT_EQ(loadFromFile("/nonexistent/dir/x.psf").status().code(),
              StatusCode::kNotFound);
}

TEST(FileTest, EncodedSmallerThanPlainForSparseData)
{
    const RowBatch batch = smallBatch(2, 256);
    WriterOptions plain;
    plain.force_plain = true;
    const auto compressed = ColumnarFileWriter().write(batch, 0);
    const auto uncompressed = ColumnarFileWriter(plain).write(batch, 0);
    EXPECT_LT(compressed.size(), uncompressed.size());
}

// --- page compression at the file level -------------------------------------

/** Pages stored with a codec across every stream of @p file. */
size_t
countCompressedPages(std::span<const uint8_t> file)
{
    ColumnarFileReader reader;
    EXPECT_TRUE(reader.open(file).ok());
    size_t compressed = 0;
    for (const auto& col : reader.footer().columns) {
        for (const auto& stream : col.streams) {
            const auto bytes = file.subspan(stream.offset,
                                            stream.byte_size);
            size_t pos = 0;
            for (uint32_t p = 0; p < stream.num_pages; ++p) {
                PageView page;
                if (!readPageFrame(bytes, pos, page).ok()) {
                    ADD_FAILURE() << "unreadable page in " << col.name;
                    return compressed;
                }
                if (page.codec != PageCodec::kNone)
                    ++compressed;
            }
        }
    }
    return compressed;
}

TEST(FileTest, CompressedFileDecodesBitIdenticalToUncompressed)
{
    // Differential: the same batch written with the codec on (default)
    // and off must decode to bit-identical RowBatches across every
    // encoding the writer picked — and with the codec on, at least one
    // page must actually be stored compressed or the test is vacuous.
    for (int rm : {1, 2, 5}) {
        const RowBatch batch = smallBatch(rm, 512);
        WriterOptions off;
        off.codec = PageCodec::kNone;
        const auto with_lz = ColumnarFileWriter().write(batch, 4);
        const auto without = ColumnarFileWriter(off).write(batch, 4);

        EXPECT_GT(countCompressedPages(with_lz), 0u) << "RM" << rm;
        EXPECT_EQ(countCompressedPages(without), 0u) << "RM" << rm;
        EXPECT_LT(with_lz.size(), without.size()) << "RM" << rm;

        ColumnarFileReader lz_reader, plain_reader;
        ASSERT_TRUE(lz_reader.open(with_lz).ok());
        ASSERT_TRUE(plain_reader.open(without).ok());
        RowBatch a, b;
        ASSERT_TRUE(lz_reader.readAllInto(a).ok());
        ASSERT_TRUE(plain_reader.readAllInto(b).ok());
        EXPECT_EQ(a, b) << "RM" << rm;
        EXPECT_EQ(a, batch) << "RM" << rm;
    }
}

TEST(FileTest, DatasetWriterHonorsCodecOption)
{
    const RowBatch batch = smallBatch(3, 256);
    const std::string lz_dir = ::testing::TempDir() + "psf_ds_lz";
    const std::string off_dir = ::testing::TempDir() + "psf_ds_off";
    std::filesystem::create_directories(lz_dir);
    std::filesystem::create_directories(off_dir);

    DatasetWriter lz_writer(lz_dir);
    WriterOptions off;
    off.codec = PageCodec::kNone;
    DatasetWriter off_writer(off_dir, off);
    ASSERT_TRUE(lz_writer.addPartition(batch, 0).ok());
    ASSERT_TRUE(off_writer.addPartition(batch, 0).ok());
    ASSERT_TRUE(lz_writer.finish().ok());
    ASSERT_TRUE(off_writer.finish().ok());

    DatasetReader lz_ds, off_ds;
    ASSERT_TRUE(lz_ds.open(lz_dir).ok());
    ASSERT_TRUE(off_ds.open(off_dir).ok());
    EXPECT_LT(lz_ds.manifest().partitions[0].byte_size,
              off_ds.manifest().partitions[0].byte_size);
    auto a = lz_ds.readPartition(0);
    auto b = off_ds.readPartition(0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(*a, batch);
}

// --- manifest durability ----------------------------------------------------

/** Write a three-partition dataset into a fresh temp dir. */
std::string
writeDataset(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    DatasetWriter writer(dir);
    for (uint64_t p = 0; p < 3; ++p)
        EXPECT_TRUE(writer.addPartition(smallBatch(1, 64, p), p).ok());
    EXPECT_TRUE(writer.finish().ok());
    return dir;
}

TEST(FileTest, TruncatedManifestIsCorruption)
{
    // Regression: a torn manifest must read as corruption at open()
    // time — never as a shorter-but-valid dataset. Truncate at every
    // byte offset; only the full file may open.
    const std::string dir = writeDataset("psf_ds_torn");
    const std::string manifest = dir + "/MANIFEST";
    auto full = loadFromFile(manifest);
    ASSERT_TRUE(full.ok());
    for (size_t keep = 0; keep < full->size(); ++keep) {
        std::vector<uint8_t> torn(full->begin(), full->begin() + keep);
        ASSERT_TRUE(saveToFile(manifest, torn).ok());
        DatasetReader reader;
        const Status st = reader.open(dir);
        EXPECT_FALSE(st.ok()) << "opened with " << keep << " bytes";
    }
    ASSERT_TRUE(saveToFile(manifest, *full).ok());
    DatasetReader reader;
    ASSERT_TRUE(reader.open(dir).ok());
    EXPECT_EQ(reader.manifest().partitions.size(), 3u);
}

TEST(FileTest, ManifestBitFlipIsCorruption)
{
    const std::string dir = writeDataset("psf_ds_flip");
    const std::string manifest = dir + "/MANIFEST";
    auto full = loadFromFile(manifest);
    ASSERT_TRUE(full.ok());
    // Flip one digit of a partition line (keeps the line parseable).
    std::vector<uint8_t> damaged = *full;
    const size_t second_line = std::string(full->begin(), full->end())
                                   .find('\n') + 1;
    for (size_t i = second_line; i < damaged.size(); ++i) {
        if (damaged[i] >= '0' && damaged[i] <= '8') {
            ++damaged[i];
            break;
        }
    }
    ASSERT_NE(damaged, *full);
    ASSERT_TRUE(saveToFile(manifest, damaged).ok());
    DatasetReader reader;
    EXPECT_EQ(reader.open(dir).code(), StatusCode::kCorruption);
}

// --- footer-only open (tail) and external plan validation -------------------

TEST(FileTest, OpenTailMatchesFullOpenAndGuardsBodyReads)
{
    const RowBatch batch = smallBatch(2, 200);
    const auto bytes = ColumnarFileWriter().write(batch, 9);

    ColumnarFileReader full;
    ASSERT_TRUE(full.open(bytes).ok());
    std::vector<PageReadPlan> plans;
    ASSERT_TRUE(full.planPageReads(plans).ok());
    // Tail = footer + size/crc/trailer (bytesTouched minus the header
    // magic accounted by open()).
    const size_t tail_bytes = full.bytesTouched() - 4;

    ColumnarFileReader tail;
    ASSERT_TRUE(
        tail.openTail(std::span<const uint8_t>(bytes).last(tail_bytes),
                      bytes.size())
            .ok());
    EXPECT_EQ(tail.footer().num_rows, full.footer().num_rows);
    EXPECT_EQ(tail.footer().partition_id, 9u);
    EXPECT_EQ(tail.totalDataBytes(), bytes.size());

    // Whole-stream decode needs the body: footer-only must refuse.
    RowBatch out;
    EXPECT_EQ(tail.readAllInto(out).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(tail.readAll().status().code(),
              StatusCode::kFailedPrecondition);
    std::vector<PageReadPlan> tail_plans;
    EXPECT_EQ(tail.planPageReads(tail_plans).code(),
              StatusCode::kFailedPrecondition);

    // But external plans validate, and the async split decodes the
    // same batch from caller-supplied frames.
    ASSERT_TRUE(tail.validatePlans(plans).ok());
    ASSERT_TRUE(tail.beginReadInto(out).ok());
    for (const PageReadPlan& plan : plans) {
        const auto frame =
            std::span<const uint8_t>(bytes).subspan(plan.offset,
                                                    plan.frame_bytes);
        ASSERT_TRUE(tail.completePage(plan, frame, out).ok());
    }
    ASSERT_TRUE(tail.finishReadInto(out).ok());
    EXPECT_EQ(out, batch);
}

TEST(FileTest, ValidatePlansRejectsDamage)
{
    const RowBatch batch = smallBatch(1, 300);
    const auto bytes = ColumnarFileWriter().write(batch, 1);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    std::vector<PageReadPlan> plans;
    ASSERT_TRUE(reader.planPageReads(plans).ok());
    ASSERT_TRUE(reader.validatePlans(plans).ok());
    ASSERT_FALSE(plans.empty());

    auto damaged = plans;
    damaged[0].offset += 1;  // frame leaves its stream
    EXPECT_EQ(reader.validatePlans(damaged).code(),
              StatusCode::kCorruption);

    damaged = plans;
    damaged[0].value_count += 1;  // output range disagrees
    EXPECT_EQ(reader.validatePlans(damaged).code(),
              StatusCode::kCorruption);

    damaged = plans;
    damaged.pop_back();  // stream not fully covered
    EXPECT_EQ(reader.validatePlans(damaged).code(),
              StatusCode::kCorruption);

    damaged = plans;
    damaged[0].column = 1000;  // unknown column
    EXPECT_EQ(reader.validatePlans(damaged).code(),
              StatusCode::kCorruption);
}

}  // namespace
}  // namespace presto
