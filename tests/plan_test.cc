/**
 * @file
 * Tests for declarative TransformPlans: validation, equivalence of the
 * standard plan with the Preprocessor fast path, and custom plans.
 */
#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "ops/plan.h"
#include "ops/preprocessor.h"

namespace presto {
namespace {

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(2);
    cfg.batch_size = 96;
    cfg.num_dense = 5;
    cfg.num_sparse = 3;
    cfg.num_generated = 2;
    return cfg;
}

// --- validation -----------------------------------------------------------------

TEST(PlanValidateTest, StandardPlanValidates)
{
    const RmConfig cfg = smallConfig();
    const Schema schema = Schema::makeRecSys(cfg.num_dense, cfg.num_sparse);
    EXPECT_TRUE(TransformPlan::standard(cfg).validate(schema).ok());
}

TEST(PlanValidateTest, UnknownSourceIsNotFound)
{
    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kDense;
    out.output_name = "x";
    out.source_feature = "nope";
    plan.add(out);
    EXPECT_EQ(plan.validate(Schema::makeRecSys(1, 1)).code(),
              StatusCode::kNotFound);
}

TEST(PlanValidateTest, KindMismatchRejected)
{
    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kSparse;
    out.output_name = "x";
    out.source_feature = "dense_0";  // dense source for a sparse output
    plan.add(out);
    EXPECT_EQ(plan.validate(Schema::makeRecSys(1, 1)).code(),
              StatusCode::kInvalidArgument);
}

TEST(PlanValidateTest, DuplicateOutputNamesRejected)
{
    TransformPlan plan;
    for (int i = 0; i < 2; ++i) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = "same";
        out.source_feature = "dense_0";
        plan.add(out);
    }
    EXPECT_EQ(plan.validate(Schema::makeRecSys(1, 0)).code(),
              StatusCode::kInvalidArgument);
}

TEST(PlanValidateTest, GeneratedNeedsBoundaries)
{
    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kGenerated;
    out.output_name = "g";
    out.source_feature = "dense_0";
    out.bucket_boundaries = 0;
    plan.add(out);
    EXPECT_EQ(plan.validate(Schema::makeRecSys(1, 0)).code(),
              StatusCode::kInvalidArgument);
}

TEST(PlanValidateTest, BadOpParamsRejected)
{
    const Schema schema = Schema::makeRecSys(1, 1);
    {
        TransformPlan plan;
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = "d";
        out.source_feature = "dense_0";
        out.dense_ops = {DenseOp::clamp(2.0f, 1.0f)};
        plan.add(out);
        EXPECT_EQ(plan.validate(schema).code(),
                  StatusCode::kInvalidArgument);
    }
    {
        TransformPlan plan;
        PlanOutput out;
        out.kind = PlanOutput::Kind::kSparse;
        out.output_name = "s";
        out.source_feature = "sparse_0";
        out.sparse_ops = {SparseOp::sigridHash(1, 0)};
        plan.add(out);
        EXPECT_EQ(plan.validate(schema).code(),
                  StatusCode::kInvalidArgument);
    }
}

TEST(PlanValidateTest, CrossKindOpsRejected)
{
    const Schema schema = Schema::makeRecSys(1, 1);
    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kDense;
    out.output_name = "d";
    out.source_feature = "dense_0";
    out.sparse_ops = {SparseOp::firstX(1)};
    plan.add(out);
    EXPECT_EQ(plan.validate(schema).code(), StatusCode::kInvalidArgument);
}

TEST(PlanExecutorDeathTest, InvalidPlanPanics)
{
    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kDense;
    out.output_name = "x";
    out.source_feature = "nope";
    plan.add(out);
    const Schema schema = Schema::makeRecSys(1, 0);
    EXPECT_DEATH(PlanExecutor(plan, schema), "invalid plan");
}

// --- standard plan equals Preprocessor ----------------------------------------------

class StandardPlanEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(StandardPlanEquivalence, MatchesPreprocessorBitForBit)
{
    RmConfig cfg = rmConfig(GetParam());
    cfg.batch_size = 64;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(2);

    const MiniBatch fast = Preprocessor(cfg).preprocess(raw);
    PlanExecutor executor(TransformPlan::standard(cfg), raw.schema());
    const MiniBatch planned = executor.run(raw);

    EXPECT_EQ(fast.dense, planned.dense);
    EXPECT_EQ(fast.labels, planned.labels);
    ASSERT_EQ(fast.sparse.size(), planned.sparse.size());
    for (size_t i = 0; i < fast.sparse.size(); ++i) {
        EXPECT_EQ(fast.sparse[i].feature_name,
                  planned.sparse[i].feature_name);
        EXPECT_EQ(fast.sparse[i].values, planned.sparse[i].values);
        EXPECT_EQ(fast.sparse[i].lengths, planned.sparse[i].lengths);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, StandardPlanEquivalence,
                         ::testing::Values(1, 2, 5));

// --- custom plans -----------------------------------------------------------------------

TEST(PlanExecutorTest, FeatureSubsetPlan)
{
    // A model that uses only 2 of the dense and 1 of the sparse features.
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);

    TransformPlan plan;
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kLabel;
        out.output_name = "label";
        out.source_feature = "label";
        plan.add(out);
    }
    for (const char* f : {"dense_1", "dense_3"}) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = f;
        out.source_feature = f;
        out.dense_ops = {DenseOp::fillMissing(0.0f), DenseOp::log()};
        plan.add(out);
    }
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kSparse;
        out.output_name = "ids";
        out.source_feature = "sparse_2";
        out.sparse_ops = {SparseOp::firstX(4),
                          SparseOp::sigridHash(9, 1000)};
        plan.add(out);
    }

    PlanExecutor executor(plan, raw.schema());
    const MiniBatch mb = executor.run(raw);
    EXPECT_EQ(mb.num_dense, 2u);
    ASSERT_EQ(mb.sparse.size(), 1u);
    EXPECT_EQ(mb.sparse[0].feature_name, "ids");
    for (uint32_t len : mb.sparse[0].lengths)
        EXPECT_LE(len, 4u);  // FirstX applied before hashing
    for (int64_t v : mb.sparse[0].values) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 1000);
    }
}

TEST(PlanExecutorTest, ClampChainOrderMatters)
{
    const Schema schema = Schema::makeRecSys(1, 0);
    RowBatch batch(schema);
    batch.addColumn(DenseColumn({0.0f, 1.0f}));
    batch.addColumn(DenseColumn({100.0f, -5.0f}));

    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kDense;
    out.output_name = "d";
    out.source_feature = "dense_0";
    out.dense_ops = {DenseOp::clamp(0.0f, 10.0f), DenseOp::log()};
    plan.add(out);

    PlanExecutor executor(plan, schema);
    const MiniBatch mb = executor.run(batch);
    EXPECT_FLOAT_EQ(mb.dense[0], std::log1p(10.0f));  // clamped then log
    EXPECT_FLOAT_EQ(mb.dense[1], 0.0f);               // clamped to 0
}

TEST(PlanExecutorTest, PlanWithoutLabelYieldsEmptyLabels)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);

    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kDense;
    out.output_name = "d";
    out.source_feature = "dense_0";
    plan.add(out);

    PlanExecutor executor(plan, raw.schema());
    const MiniBatch mb = executor.run(raw);
    EXPECT_TRUE(mb.labels.empty());
    EXPECT_TRUE(mb.consistent());
}

TEST(PlanExecutorDeathTest, SchemaMismatchAtRunPanics)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    PlanExecutor executor(TransformPlan::standard(cfg), raw.schema());

    RmConfig other = cfg;
    other.num_dense += 1;
    RawDataGenerator gen2(other);
    const RowBatch wrong = gen2.generatePartition(0);
    EXPECT_DEATH(executor.run(wrong), "schema");
}

TEST(PlanCountsTest, OutputCounts)
{
    const RmConfig cfg = smallConfig();
    const TransformPlan plan = TransformPlan::standard(cfg);
    EXPECT_EQ(plan.numDenseOutputs(), cfg.num_dense);
    EXPECT_EQ(plan.numSparseOutputs(), cfg.totalSparseFeatures());
    EXPECT_EQ(plan.outputs().size(),
              1 + cfg.num_dense + cfg.totalSparseFeatures());
}

}  // namespace
}  // namespace presto
