/**
 * @file
 * Bit-identity suite for the fused op-chain bytecode VM (ops/opvm.h).
 *
 * The contract under test: for ANY valid TransformPlan and ANY input —
 * including NaN payloads, denormals, infinities and empty columns — the
 * fused single-pass execution is bit-identical to the unfused
 * one-pass-per-operator reference, at every dispatched SIMD level.
 * Plus the compile-time contracts: validation happens exactly once at
 * compile, never per batch, and over-long chains fall back without
 * changing results.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "ops/opvm.h"
#include "ops/plan.h"
#include "ops/preprocessor.h"
#include "ops/simd.h"

namespace presto {
namespace {

/** Every dispatch level available on this machine, scalar first. */
std::vector<SimdLevel>
availableLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::kScalar};
    if (detectedSimdLevel() >= SimdLevel::kAvx2)
        levels.push_back(SimdLevel::kAvx2);
    if (detectedSimdLevel() >= SimdLevel::kAvx512)
        levels.push_back(SimdLevel::kAvx512);
    return levels;
}

/** RAII restore of the active SIMD level. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : saved_(activeSimdLevel())
    {
        setSimdLevel(level);
    }
    ~ScopedSimdLevel() { setSimdLevel(saved_); }

  private:
    SimdLevel saved_;
};

/**
 * Assert two mini-batches are bit-identical. Floats compare by bit
 * pattern (operator== would treat every NaN as a mismatch and -0.0f as
 * equal to 0.0f — both wrong for a bit-identity contract).
 */
void
expectBitIdentical(const MiniBatch& want, const MiniBatch& got,
                   const std::string& what)
{
    ASSERT_EQ(want.batch_size, got.batch_size) << what;
    ASSERT_EQ(want.num_dense, got.num_dense) << what;
    ASSERT_EQ(want.dense.size(), got.dense.size()) << what;
    for (size_t i = 0; i < want.dense.size(); ++i) {
        ASSERT_EQ(std::bit_cast<uint32_t>(want.dense[i]),
                  std::bit_cast<uint32_t>(got.dense[i]))
            << what << " dense[" << i << "] " << want.dense[i]
            << " vs " << got.dense[i];
    }
    ASSERT_EQ(want.labels.size(), got.labels.size()) << what;
    for (size_t i = 0; i < want.labels.size(); ++i) {
        ASSERT_EQ(std::bit_cast<uint32_t>(want.labels[i]),
                  std::bit_cast<uint32_t>(got.labels[i]))
            << what << " labels[" << i << "]";
    }
    ASSERT_EQ(want.sparse.size(), got.sparse.size()) << what;
    for (size_t s = 0; s < want.sparse.size(); ++s) {
        ASSERT_EQ(want.sparse[s].feature_name, got.sparse[s].feature_name)
            << what;
        ASSERT_EQ(want.sparse[s].values, got.sparse[s].values)
            << what << " sparse " << want.sparse[s].feature_name;
        ASSERT_EQ(want.sparse[s].lengths, got.sparse[s].lengths)
            << what << " sparse " << want.sparse[s].feature_name;
    }
}

/**
 * Oracle comparison: runUnfused at scalar level is the reference; the
 * fused run() and the unfused path must reproduce it at every level.
 */
void
expectFusedMatchesUnfusedEverywhere(const PlanExecutor& exec,
                                    const RowBatch& raw,
                                    const std::string& what)
{
    MiniBatch oracle;
    {
        ScopedSimdLevel scoped(SimdLevel::kScalar);
        oracle = exec.runUnfused(raw);
    }
    for (SimdLevel level : availableLevels()) {
        ScopedSimdLevel scoped(level);
        const std::string where =
            what + " level=" + simdLevelName(level);
        expectBitIdentical(oracle, exec.run(raw), where + " fused");
        expectBitIdentical(oracle, exec.runUnfused(raw),
                           where + " unfused");
        // The reusable-buffer entry point must agree too, warm or cold.
        MiniBatch into;
        BatchArena arena;
        exec.runInto(raw, into, arena);
        exec.runInto(raw, into, arena);
        expectBitIdentical(oracle, into, where + " runInto");
    }
}

// --- adversarial float / id material ---------------------------------------

float
fuzzFloat(std::mt19937_64& rng)
{
    switch (rng() % 12) {
      case 0: return std::numeric_limits<float>::quiet_NaN();
      case 1:
        // NaN with a nonzero payload and sign: survives ops bit-exactly
        // only if fused and unfused take identical blend paths.
        return std::bit_cast<float>(
            0xffc00000u | static_cast<uint32_t>(rng() % 0x3fffffu) | 1u);
      case 2: return std::numeric_limits<float>::infinity();
      case 3: return -std::numeric_limits<float>::infinity();
      case 4:
        // Positive denormal.
        return std::bit_cast<float>(
            static_cast<uint32_t>(rng() % 0x7fffffu) + 1u);
      case 5:
        // Negative denormal.
        return std::bit_cast<float>(
            0x80000000u + static_cast<uint32_t>(rng() % 0x7fffffu) + 1u);
      case 6: return -0.0f;
      case 7: return 0.0f;
      default: {
        const auto m = static_cast<float>(
            static_cast<double>(rng() % 100000000u) / 997.0);
        return rng() % 2 ? m : -m;
      }
    }
}

int64_t
fuzzId(std::mt19937_64& rng)
{
    switch (rng() % 8) {
      case 0: return 0;
      case 1: return std::numeric_limits<int64_t>::max();
      case 2: return std::numeric_limits<int64_t>::min();
      case 3: return -1;
      default: return static_cast<int64_t>(rng());
    }
}

/** Random batch over makeRecSys(num_dense, num_sparse), adversarial
 *  floats, row lengths 0..6 (empties included). */
RowBatch
fuzzBatch(size_t num_dense, size_t num_sparse, size_t rows,
          std::mt19937_64& rng)
{
    RowBatch batch(Schema::makeRecSys(num_dense, num_sparse));
    std::vector<float> labels(rows);
    for (auto& v : labels)
        v = static_cast<float>(rng() % 2);
    batch.addColumn(DenseColumn(std::move(labels)));
    for (size_t f = 0; f < num_dense; ++f) {
        std::vector<float> values(rows);
        for (auto& v : values)
            v = fuzzFloat(rng);
        batch.addColumn(DenseColumn(std::move(values)));
    }
    for (size_t f = 0; f < num_sparse; ++f) {
        std::vector<uint32_t> offsets(rows + 1, 0);
        for (size_t r = 0; r < rows; ++r)
            offsets[r + 1] = offsets[r] + static_cast<uint32_t>(rng() % 7);
        std::vector<int64_t> ids(offsets[rows]);
        for (auto& id : ids)
            id = fuzzId(rng);
        batch.addColumn(SparseColumn(std::move(ids), std::move(offsets)));
    }
    return batch;
}

std::vector<DenseOp>
fuzzDenseChain(std::mt19937_64& rng, size_t max_len)
{
    std::vector<DenseOp> ops(rng() % (max_len + 1));
    for (auto& op : ops) {
        switch (rng() % 3) {
          case 0:
            op = DenseOp::fillMissing(fuzzFloat(rng));
            break;
          case 1:
            op = DenseOp::log();
            break;
          default: {
            float lo = fuzzFloat(rng);
            float hi = fuzzFloat(rng);
            // Clamp params must satisfy lo <= hi and be comparable.
            if (std::isnan(lo))
                lo = -1.0f;
            if (std::isnan(hi))
                hi = 2.0f;
            if (lo > hi)
                std::swap(lo, hi);
            op = DenseOp::clamp(lo, hi);
            break;
          }
        }
    }
    return ops;
}

std::vector<SparseOp>
fuzzSparseChain(std::mt19937_64& rng, size_t max_len)
{
    static constexpr int64_t kMaxValues[] = {
        1, 2, 3, 1000, 500000, int64_t{1} << 31, int64_t{1} << 62};
    std::vector<SparseOp> ops(rng() % (max_len + 1));
    for (auto& op : ops) {
        if (rng() % 3 == 0) {
            op = SparseOp::firstX(rng() % 5);  // cap 0 allowed
        } else {
            op = SparseOp::sigridHash(rng(), kMaxValues[rng() % 7]);
        }
    }
    return ops;
}

TransformPlan
fuzzPlan(size_t num_dense, size_t num_sparse, std::mt19937_64& rng)
{
    static constexpr size_t kBoundaryCounts[] = {1, 2, 37, 256, 1024};
    TransformPlan plan;
    int serial = 0;
    if (rng() % 2) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kLabel;
        out.output_name = "label";
        out.source_feature = "label";
        plan.add(std::move(out));
    }
    const size_t dense_outs = 1 + rng() % 3;
    for (size_t i = 0; i < dense_outs; ++i) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = "d" + std::to_string(serial++);
        out.source_feature =
            "dense_" + std::to_string(rng() % num_dense);
        out.dense_ops = fuzzDenseChain(rng, 5);
        plan.add(std::move(out));
    }
    const size_t sparse_outs = 1 + rng() % 3;
    for (size_t i = 0; i < sparse_outs; ++i) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kSparse;
        out.output_name = "s" + std::to_string(serial++);
        out.source_feature =
            "sparse_" + std::to_string(rng() % num_sparse);
        out.sparse_ops = fuzzSparseChain(rng, 4);
        plan.add(std::move(out));
    }
    const size_t generated_outs = rng() % 3;
    for (size_t i = 0; i < generated_outs; ++i) {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kGenerated;
        out.output_name = "g" + std::to_string(serial++);
        out.source_feature =
            "dense_" + std::to_string(rng() % num_dense);
        out.dense_ops = fuzzDenseChain(rng, 4);
        out.bucket_boundaries = kBoundaryCounts[rng() % 5];
        out.sparse_ops = fuzzSparseChain(rng, 3);
        plan.add(std::move(out));
    }
    return plan;
}

// --- standard workloads ----------------------------------------------------

class FusedStandardPlan : public ::testing::TestWithParam<int>
{
};

TEST_P(FusedStandardPlan, BitIdenticalToUnfusedAtEveryLevel)
{
    RmConfig cfg = rmConfig(GetParam());
    cfg.batch_size = 613;  // off any tile multiple: exercises tails
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(7);
    const PlanExecutor exec(TransformPlan::standard(cfg), raw.schema());
    for (const CompiledOutput& out : exec.program().outputs())
        EXPECT_TRUE(out.fused) << out.name;
    expectFusedMatchesUnfusedEverywhere(exec, raw,
                                        "standard " + cfg.name);
}

INSTANTIATE_TEST_SUITE_P(Workloads, FusedStandardPlan,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- fuzzed chains ---------------------------------------------------------

TEST(FusedFuzzTest, RandomChainsOnAdversarialBatchesMatchUnfused)
{
    constexpr size_t kNumDense = 4;
    constexpr size_t kNumSparse = 3;
    for (uint64_t seed = 0; seed < 40; ++seed) {
        std::mt19937_64 rng(0x9e3779b97f4a7c15ull + seed);
        const TransformPlan plan = fuzzPlan(kNumDense, kNumSparse, rng);
        const size_t rows = rng() % 200;  // empty batches included
        const RowBatch raw = fuzzBatch(kNumDense, kNumSparse, rows, rng);
        ASSERT_TRUE(plan.validate(raw.schema()).ok()) << "seed " << seed;
        const PlanExecutor exec(plan, raw.schema());
        expectFusedMatchesUnfusedEverywhere(
            exec, raw, "fuzz seed " + std::to_string(seed));
    }
}

// --- targeted edge cases ---------------------------------------------------

TEST(FusedEdgeCaseTest, NanDenormalAndInfinityPropagation)
{
    // One column holding every IEEE754 special bucket, through the three
    // chain shapes whose NaN behaviour differs: Fill replaces NaN, Log
    // feeds max(x, 0) into log1p, Clamp passes NaN through its blend.
    const Schema schema = Schema::makeRecSys(1, 0);
    std::vector<float> specials{
        std::numeric_limits<float>::quiet_NaN(),
        std::bit_cast<float>(0x7fc00001u),  // NaN, nonzero payload
        std::bit_cast<float>(0xffc01234u),  // negative NaN
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::denorm_min(),
        -std::numeric_limits<float>::denorm_min(),
        std::bit_cast<float>(0x007fffffu),  // largest denormal
        -0.0f,
        0.0f,
        std::numeric_limits<float>::max(),
        std::numeric_limits<float>::lowest(),
        1.5f,
        -2.5f,
    };
    const std::vector<std::vector<DenseOp>> chains{
        {DenseOp::fillMissing(0.0f)},
        {DenseOp::log()},
        {DenseOp::clamp(-1.0f, 1.0f)},
        {DenseOp::fillMissing(-3.5f), DenseOp::log()},
        {DenseOp::clamp(0.0f, 10.0f), DenseOp::fillMissing(7.0f),
         DenseOp::log()},
        {},  // pure copy must preserve every payload bit
    };
    for (size_t c = 0; c < chains.size(); ++c) {
        RowBatch batch(schema);
        batch.addColumn(
            DenseColumn(std::vector<float>(specials.size(), 1.0f)));
        batch.addColumn(DenseColumn(specials));
        TransformPlan plan;
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = "d";
        out.source_feature = "dense_0";
        out.dense_ops = chains[c];
        plan.add(std::move(out));
        const PlanExecutor exec(plan, schema);
        expectFusedMatchesUnfusedEverywhere(
            exec, batch, "specials chain " + std::to_string(c));
    }
}

TEST(FusedEdgeCaseTest, EmptyBatchAndEmptyRows)
{
    const RmConfig cfg = []() {
        RmConfig c = rmConfig(1);
        c.num_dense = 2;
        c.num_sparse = 2;
        c.num_generated = 1;
        return c;
    }();
    // Zero rows end to end.
    {
        RowBatch batch(Schema::makeRecSys(2, 2));
        batch.addColumn(DenseColumn(std::vector<float>{}));
        batch.addColumn(DenseColumn(std::vector<float>{}));
        batch.addColumn(DenseColumn(std::vector<float>{}));
        batch.addColumn(SparseColumn({}, {0}));
        batch.addColumn(SparseColumn({}, {0}));
        const PlanExecutor exec(TransformPlan::standard(cfg),
                                batch.schema());
        expectFusedMatchesUnfusedEverywhere(exec, batch, "zero rows");
    }
    // Rows present but every sparse row empty.
    {
        RowBatch batch(Schema::makeRecSys(2, 2));
        batch.addColumn(DenseColumn(std::vector<float>(5, 1.0f)));
        batch.addColumn(DenseColumn(std::vector<float>(5, 2.0f)));
        batch.addColumn(DenseColumn(std::vector<float>(5, 3.0f)));
        batch.addColumn(SparseColumn({}, {0, 0, 0, 0, 0, 0}));
        batch.addColumn(SparseColumn({}, {0, 0, 0, 0, 0, 0}));
        const PlanExecutor exec(TransformPlan::standard(cfg),
                                batch.schema());
        expectFusedMatchesUnfusedEverywhere(exec, batch, "empty rows");
    }
}

TEST(FusedEdgeCaseTest, HashMaxValueOneAndFirstXCaps)
{
    const Schema schema = Schema::makeRecSys(1, 1);
    RowBatch batch(schema);
    batch.addColumn(DenseColumn(std::vector<float>(9, 1.0f)));
    batch.addColumn(DenseColumn(std::vector<float>(9, 4.25f)));
    std::vector<uint32_t> offsets{0, 3, 3, 7, 8, 12, 12, 15, 20, 22};
    std::vector<int64_t> ids(offsets.back());
    std::mt19937_64 rng(11);
    for (auto& id : ids)
        id = fuzzId(rng);
    batch.addColumn(SparseColumn(std::move(ids), std::move(offsets)));

    // max_value == 1: every id must hash to 0 (the vector Barrett
    // reduction has a dedicated guard for the divisor-one case).
    {
        TransformPlan plan;
        PlanOutput out;
        out.kind = PlanOutput::Kind::kSparse;
        out.output_name = "one";
        out.source_feature = "sparse_0";
        out.sparse_ops = {SparseOp::sigridHash(42, 1)};
        plan.add(std::move(out));
        const PlanExecutor exec(plan, schema);
        expectFusedMatchesUnfusedEverywhere(exec, batch, "hash max 1");
        const MiniBatch mb = exec.run(batch);
        for (int64_t v : mb.sparse[0].values)
            EXPECT_EQ(v, 0);
    }
    // FirstX caps 0 and 1 on raw and generated outputs; FirstX after
    // the hash must commute into the compiled prefix cap bit-exactly.
    for (const size_t cap : {size_t{0}, size_t{1}, size_t{2}}) {
        TransformPlan plan;
        {
            PlanOutput out;
            out.kind = PlanOutput::Kind::kSparse;
            out.output_name = "s";
            out.source_feature = "sparse_0";
            out.sparse_ops = {SparseOp::sigridHash(7, 1000),
                              SparseOp::firstX(cap)};
            plan.add(std::move(out));
        }
        {
            PlanOutput out;
            out.kind = PlanOutput::Kind::kGenerated;
            out.output_name = "g";
            out.source_feature = "dense_0";
            out.bucket_boundaries = 64;
            out.sparse_ops = {SparseOp::firstX(cap),
                              SparseOp::sigridHash(9, 500)};
            plan.add(std::move(out));
        }
        const PlanExecutor exec(plan, schema);
        expectFusedMatchesUnfusedEverywhere(
            exec, batch, "firstX cap " + std::to_string(cap));
        const MiniBatch mb = exec.run(batch);
        for (uint32_t len : mb.sparse[0].lengths)
            EXPECT_LE(len, cap);
        for (uint32_t len : mb.sparse[1].lengths)
            EXPECT_LE(len, std::min(cap, size_t{1}));
    }
}

// --- over-long chains fall back, same results ------------------------------

TEST(FusedFallbackTest, OverlongChainRunsUnfusedAndMatches)
{
    const Schema schema = Schema::makeRecSys(1, 1);
    std::mt19937_64 rng(5);
    RowBatch batch(schema);
    batch.addColumn(DenseColumn(std::vector<float>(100, 1.0f)));
    std::vector<float> values(100);
    for (auto& v : values)
        v = fuzzFloat(rng);
    batch.addColumn(DenseColumn(std::move(values)));
    std::vector<uint32_t> offsets(101, 0);
    for (size_t r = 0; r < 100; ++r)
        offsets[r + 1] = offsets[r] + static_cast<uint32_t>(rng() % 4);
    std::vector<int64_t> ids(offsets.back());
    for (auto& id : ids)
        id = fuzzId(rng);
    batch.addColumn(SparseColumn(std::move(ids), std::move(offsets)));

    TransformPlan plan;
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = "d";
        out.source_feature = "dense_0";
        // Alternate log/clamp so chain-level simplification (which folds
        // adjacent clamps) cannot shrink the chain under the fuse limit.
        for (size_t k = 0; k < kMaxFusedChainOps + 4; ++k) {
            if (k % 2 == 0)
                out.dense_ops.push_back(DenseOp::log());
            else
                out.dense_ops.push_back(DenseOp::clamp(
                    -1000.0f + static_cast<float>(k), 1000.0f));
        }
        plan.add(std::move(out));
    }
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kSparse;
        out.output_name = "s";
        out.source_feature = "sparse_0";
        for (size_t k = 0; k < kMaxFusedChainOps + 2; ++k)
            out.sparse_ops.push_back(SparseOp::sigridHash(k, 100000));
        plan.add(std::move(out));
    }
    const PlanExecutor exec(plan, schema);
    for (const CompiledOutput& out : exec.program().outputs())
        EXPECT_FALSE(out.fused) << out.name;
    expectFusedMatchesUnfusedEverywhere(exec, batch, "overlong chains");
}

// --- chain-level algebraic simplification ----------------------------------

namespace {

OpInstr
fillInstr(float v)
{
    OpInstr i;
    i.op = OpCode::kFill;
    i.a = v;
    return i;
}

OpInstr
clampInstr(float lo, float hi)
{
    OpInstr i;
    i.op = OpCode::kClamp;
    i.a = lo;
    i.b = hi;
    return i;
}

OpInstr
logInstr()
{
    OpInstr i;
    i.op = OpCode::kLog;
    return i;
}

}  // namespace

TEST(SimplifyTest, OverlongFoldableClampChainCompilesFusedAndMatches)
{
    // The dual of OverlongChainRunsUnfusedAndMatches: a chain of 20
    // adjacent clamps used to overflow the fuse limit and fall back to
    // whole-column passes; chain simplification folds it to one clamp,
    // so it now compiles fused — and must stay bit-identical to the
    // reference one-pass-per-operator execution on adversarial floats.
    const Schema schema = Schema::makeRecSys(1, 0);
    std::mt19937_64 rng(11);
    RowBatch batch(schema);
    batch.addColumn(DenseColumn(std::vector<float>(256, 1.0f)));
    std::vector<float> values(256);
    for (auto& v : values)
        v = fuzzFloat(rng);
    batch.addColumn(DenseColumn(std::move(values)));

    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kDense;
    out.output_name = "d";
    out.source_feature = "dense_0";
    for (size_t k = 0; k < kMaxFusedChainOps + 4; ++k) {
        out.dense_ops.push_back(
            DenseOp::clamp(-1000.0f + static_cast<float>(k), 1000.0f));
    }
    plan.add(std::move(out));

    const PlanExecutor exec(plan, schema);
    const CompiledOutput& compiled = exec.program().outputs()[0];
    EXPECT_TRUE(compiled.fused);
    EXPECT_EQ(compiled.num_f32, 1u);
    EXPECT_EQ(compiled.unsimplified_f32, kMaxFusedChainOps + 4);
    EXPECT_NE(exec.program().disassemble().find("simplified 20 -> 1"),
              std::string::npos);
    expectFusedMatchesUnfusedEverywhere(exec, batch, "folded clamps");
}

TEST(SimplifyTest, FillChainsSimplifyAndStayBitIdentical)
{
    // fill(NaN);fill(5) collapses to fill(5); the later fill(7) is dead
    // (no NaN survives fill(5) through a non-NaN-bound clamp). Executed
    // results must be bit-identical on NaN-payload inputs everywhere.
    const Schema schema = Schema::makeRecSys(1, 0);
    std::mt19937_64 rng(13);
    RowBatch batch(schema);
    batch.addColumn(DenseColumn(std::vector<float>(256, 1.0f)));
    std::vector<float> values(256);
    for (auto& v : values)
        v = fuzzFloat(rng);
    batch.addColumn(DenseColumn(std::move(values)));

    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kDense;
    out.output_name = "d";
    out.source_feature = "dense_0";
    out.dense_ops = {
        DenseOp::fillMissing(std::numeric_limits<float>::quiet_NaN()),
        DenseOp::fillMissing(5.0f), DenseOp::clamp(0.0f, 1.0f),
        DenseOp::fillMissing(7.0f)};
    plan.add(std::move(out));

    const PlanExecutor exec(plan, schema);
    const CompiledOutput& compiled = exec.program().outputs()[0];
    EXPECT_EQ(compiled.num_f32, 2u);
    EXPECT_EQ(compiled.unsimplified_f32, 4u);
    expectFusedMatchesUnfusedEverywhere(exec, batch, "fill chains");
}

TEST(SimplifyTest, SimplifyF32ChainUnits)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();

    // Adjacent clamps fold with exact bound arithmetic.
    {
        const auto got = simplifyF32Chain(
            {clampInstr(-5.0f, 10.0f), clampInstr(0.0f, 8.0f)});
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0].a, 0.0f);
        EXPECT_EQ(got[0].b, 8.0f);
    }
    // A NaN bound blocks the fold: NaN-bound clamp semantics are
    // tier-dependent and must execute as written.
    {
        const auto got = simplifyF32Chain(
            {clampInstr(0.0f, nan), clampInstr(1.0f, 2.0f)});
        EXPECT_EQ(got.size(), 2u);
    }
    // fill(NaN) with no earlier fill rewrites NaN payloads: kept.
    {
        const auto got = simplifyF32Chain({fillInstr(nan)});
        EXPECT_EQ(got.size(), 1u);
    }
    // fill(NaN);fill(b): the earlier fill is dominated and dropped.
    {
        const auto got =
            simplifyF32Chain({fillInstr(nan), fillInstr(3.0f)});
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0].op, OpCode::kFill);
        EXPECT_EQ(got[0].a, 3.0f);
    }
    // A fill behind a non-NaN fill and NaN-free ops is dead.
    {
        const auto got = simplifyF32Chain(
            {fillInstr(1.0f), logInstr(), fillInstr(2.0f)});
        ASSERT_EQ(got.size(), 2u);
        EXPECT_EQ(got[0].op, OpCode::kFill);
        EXPECT_EQ(got[1].op, OpCode::kLog);
    }
    // ...but live when a NaN-bound clamp intervenes (it can pass NaN
    // through on some tiers — conservatively keep the later fill).
    {
        const auto got = simplifyF32Chain(
            {fillInstr(1.0f), clampInstr(0.0f, nan), fillInstr(2.0f)});
        EXPECT_EQ(got.size(), 3u);
    }
}

// --- validate-once contract ------------------------------------------------

TEST(ValidateOnceTest, CompileValidatesOnceAndCachedRunsNeverRevalidate)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 64;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);

    const uint64_t before = planValidationCount();
    const PlanExecutor exec(TransformPlan::standard(cfg), raw.schema());
    EXPECT_EQ(planValidationCount(), before + 1)
        << "compiling must validate exactly once";

    MiniBatch mb;
    BatchArena arena;
    for (int i = 0; i < 6; ++i) {
        exec.run(raw);
        exec.runInto(raw, mb, arena);
    }
    EXPECT_EQ(planValidationCount(), before + 1)
        << "running a cached program must not re-validate the plan";

    // The Preprocessor fast path rides the same contract.
    const Preprocessor pre(cfg);
    const uint64_t compiled = planValidationCount();
    for (int i = 0; i < 4; ++i)
        pre.preprocessInto(raw, mb, arena);
    EXPECT_EQ(planValidationCount(), compiled);
}

}  // namespace
}  // namespace presto
