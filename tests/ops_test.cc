/**
 * @file
 * Tests for the preprocessing operators (Algorithms 1 & 2 and friends)
 * and the end-to-end Transform pipeline, including oracle-based property
 * sweeps.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/stats.h"
#include "datagen/generator.h"
#include "ops/fast_ops.h"
#include "ops/hash.h"
#include "ops/ops.h"
#include "ops/preprocessor.h"

namespace presto {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// --- BucketBoundaries / Bucketize ------------------------------------------------

TEST(BucketBoundariesTest, SearchMatchesUpperBoundOracle)
{
    const std::vector<float> b = {1.0f, 2.0f, 4.0f, 8.0f};
    BucketBoundaries bounds(b);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const float v = static_cast<float>(rng.uniform(-2.0, 12.0));
        const auto oracle = std::upper_bound(b.begin(), b.end(), v) -
                            b.begin();
        EXPECT_EQ(bounds.searchBucketId(v), oracle) << "value " << v;
    }
}

TEST(BucketBoundariesTest, ExactBoundaryValuesGoRight)
{
    BucketBoundaries bounds({1.0f, 2.0f, 3.0f});
    // upper_bound semantics: v == boundary falls into the next bucket.
    EXPECT_EQ(bounds.searchBucketId(1.0f), 1);
    EXPECT_EQ(bounds.searchBucketId(2.0f), 2);
    EXPECT_EQ(bounds.searchBucketId(3.0f), 3);
}

TEST(BucketBoundariesTest, ExtremesAndSpecials)
{
    BucketBoundaries bounds({0.0f, 10.0f});
    EXPECT_EQ(bounds.searchBucketId(-kInf), 0);
    EXPECT_EQ(bounds.searchBucketId(kInf), 2);
    // Missing values (NaN) deterministically land in the first bucket.
    EXPECT_EQ(bounds.searchBucketId(kNaN), 0);
    BucketBoundaries big = BucketBoundaries::makeLogSpaced(128, 1.f, 10.f);
    EXPECT_EQ(big.searchBucketId(kNaN), 0);
}

TEST(BucketBoundariesTest, IdsCoverZeroToM)
{
    const size_t m = 64;
    BucketBoundaries bounds =
        BucketBoundaries::makeLogSpaced(m, 0.1f, 100.0f);
    EXPECT_EQ(bounds.searchBucketId(0.01f), 0);
    EXPECT_EQ(bounds.searchBucketId(1e6f), static_cast<int64_t>(m));
}

class LogSpacedBoundariesTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(LogSpacedBoundariesTest, StrictlyIncreasing)
{
    const size_t m = GetParam();
    BucketBoundaries bounds =
        BucketBoundaries::makeLogSpaced(m, 0.02f, 3000.0f);
    ASSERT_EQ(bounds.size(), m);
    const auto v = bounds.values();
    for (size_t i = 1; i < v.size(); ++i)
        EXPECT_LT(v[i - 1], v[i]) << "at index " << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LogSpacedBoundariesTest,
                         ::testing::Values(1, 2, 1024, 2048, 4096, 65536));

TEST(BucketBoundariesDeathTest, UnsortedPanics)
{
    EXPECT_DEATH(BucketBoundaries({2.0f, 1.0f}), "sorted");
}

TEST(BucketBoundariesDeathTest, EmptyPanics)
{
    EXPECT_DEATH(BucketBoundaries(std::vector<float>{}),
                 "at least one boundary");
}

TEST(BucketBoundariesDeathTest, BadLogRangePanics)
{
    EXPECT_DEATH(BucketBoundaries::makeLogSpaced(4, -1.0f, 2.0f),
                 "0 < lo < hi");
    EXPECT_DEATH(BucketBoundaries::makeLogSpaced(4, 2.0f, 1.0f),
                 "0 < lo < hi");
}

TEST(BucketizeTest, ProducesOneIdPerRow)
{
    DenseColumn input({0.5f, 5.0f, 50.0f});
    BucketBoundaries bounds({1.0f, 10.0f});
    SparseColumn out = bucketize(input, bounds);
    ASSERT_EQ(out.numRows(), 3u);
    EXPECT_EQ(out.row(0)[0], 0);
    EXPECT_EQ(out.row(1)[0], 1);
    EXPECT_EQ(out.row(2)[0], 2);
    for (size_t r = 0; r < out.numRows(); ++r)
        EXPECT_EQ(out.rowLength(r), 1u);
}

TEST(BucketizeDeathTest, OutputSizeMismatchPanics)
{
    const std::vector<float> in(4, 1.0f);
    std::vector<int64_t> out(3);
    BucketBoundaries bounds({1.0f});
    EXPECT_DEATH(bucketizeInto(in, bounds, out), "size mismatch");
}

// --- SigridHash ---------------------------------------------------------------------

TEST(SigridHashTest, DeterministicAndSeedSensitive)
{
    EXPECT_EQ(sigridHash64(42, 1), sigridHash64(42, 1));
    EXPECT_NE(sigridHash64(42, 1), sigridHash64(42, 2));
    EXPECT_NE(sigridHash64(42, 1), sigridHash64(43, 1));
}

TEST(SigridHashTest, AvalancheOnInputBit)
{
    int total_bits = 0;
    for (int bit = 0; bit < 16; ++bit) {
        total_bits += std::popcount(sigridHash64(1ULL << bit, 7) ^
                                    sigridHash64(0, 7));
    }
    // Average ~32 flipped bits per single-bit input change.
    EXPECT_GT(total_bits / 16, 24);
    EXPECT_LT(total_bits / 16, 40);
}

class SigridHashRangeTest : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(SigridHashRangeTest, AllOutputsWithinTableSize)
{
    const int64_t max = GetParam();
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const auto v = static_cast<int64_t>(rng.next() >> 1);
        const int64_t h = sigridHashMod(v, 99, max);
        EXPECT_GE(h, 0);
        EXPECT_LT(h, max);
    }
}

INSTANTIATE_TEST_SUITE_P(TableSizes, SigridHashRangeTest,
                         ::testing::Values(1, 2, 1000, 500000,
                                           int64_t{1} << 40));

TEST(SigridHashTest, OutputRoughlyUniform)
{
    const int64_t max = 16;
    std::vector<int> counts(max, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        ++counts[sigridHashMod(i, 5, max)];
    for (int c : counts)
        EXPECT_NEAR(c, n / max, n / max * 0.1);
}

TEST(SigridHashTest, ColumnPreservesOffsets)
{
    SparseColumn col({10, 20, 30, 40}, {0, 1, 1, 4});
    SparseColumn out = sigridHash(col, 7, 100);
    EXPECT_TRUE(std::equal(out.offsets().begin(), out.offsets().end(),
                           col.offsets().begin()));
    for (int64_t v : out.values()) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 100);
    }
}

TEST(SigridHashTest, SameIdHashesSameWithinSeed)
{
    SparseColumn col({42, 42, 42}, {0, 1, 2, 3});
    SparseColumn out = sigridHash(col, 9, 1000);
    EXPECT_EQ(out.values()[0], out.values()[1]);
    EXPECT_EQ(out.values()[1], out.values()[2]);
}

TEST(SigridHashTest, NegativeIdsStayInRange)
{
    // Raw logged ids are non-negative in practice, but the operator must
    // be total over int64.
    for (int64_t v : {int64_t{-1}, int64_t{-123456789},
                      std::numeric_limits<int64_t>::min()}) {
        const int64_t h = sigridHashMod(v, 3, 1000);
        EXPECT_GE(h, 0);
        EXPECT_LT(h, 1000);
    }
}

TEST(SigridHashDeathTest, NonPositiveMaxPanics)
{
    std::vector<int64_t> v{1};
    EXPECT_DEATH(sigridHashInPlace(v, 1, 0), "positive");
}

// --- Log / FillMissing / Clamp / FirstX -----------------------------------------------

TEST(LogTransformTest, MatchesLog1p)
{
    DenseColumn col({0.0f, 1.0f, 99.0f});
    DenseColumn out = logTransform(col);
    EXPECT_FLOAT_EQ(out.value(0), 0.0f);
    EXPECT_FLOAT_EQ(out.value(1), std::log1p(1.0f));
    EXPECT_FLOAT_EQ(out.value(2), std::log1p(99.0f));
}

TEST(LogTransformTest, NegativesClampToZero)
{
    DenseColumn out = logTransform(DenseColumn({-5.0f}));
    EXPECT_FLOAT_EQ(out.value(0), 0.0f);
}

TEST(LogTransformTest, NaNPropagates)
{
    DenseColumn out = logTransform(DenseColumn({kNaN}));
    EXPECT_TRUE(std::isnan(out.value(0)));
}

TEST(LogTransformTest, MonotoneOnPositives)
{
    Rng rng(4);
    float prev_in = 0.0f, prev_out = 0.0f;
    for (int i = 0; i < 100; ++i) {
        const float in = prev_in + static_cast<float>(rng.uniform());
        std::vector<float> v{in};
        logTransformInPlace(v);
        EXPECT_GT(v[0], prev_out);
        prev_in = in;
        prev_out = v[0];
    }
}

TEST(FillMissingTest, ReplacesOnlyNaNs)
{
    DenseColumn out =
        fillMissing(DenseColumn({1.0f, kNaN, -2.0f, kNaN}), 7.0f);
    EXPECT_FLOAT_EQ(out.value(0), 1.0f);
    EXPECT_FLOAT_EQ(out.value(1), 7.0f);
    EXPECT_FLOAT_EQ(out.value(2), -2.0f);
    EXPECT_FLOAT_EQ(out.value(3), 7.0f);
}

TEST(FillMissingTest, InfinityIsNotMissing)
{
    DenseColumn out = fillMissing(DenseColumn({kInf}), 0.0f);
    EXPECT_EQ(out.value(0), kInf);
}

TEST(ClampTest, ClampsBothEnds)
{
    DenseColumn out = clamp(DenseColumn({-1.0f, 0.5f, 2.0f}), 0.0f, 1.0f);
    EXPECT_FLOAT_EQ(out.value(0), 0.0f);
    EXPECT_FLOAT_EQ(out.value(1), 0.5f);
    EXPECT_FLOAT_EQ(out.value(2), 1.0f);
}

TEST(ClampDeathTest, InvertedRangePanics)
{
    EXPECT_DEATH(clamp(DenseColumn({1.0f}), 2.0f, 1.0f), "inverted");
}

TEST(FirstXTest, TruncatesLongRows)
{
    SparseColumn col({1, 2, 3, 4, 5}, {0, 3, 5});
    SparseColumn out = firstX(col, 2);
    EXPECT_EQ(out.rowLength(0), 2u);
    EXPECT_EQ(out.row(0)[1], 2);
    EXPECT_EQ(out.rowLength(1), 2u);
}

TEST(FirstXTest, ShortRowsUntouched)
{
    SparseColumn col({1}, {0, 1, 1});
    SparseColumn out = firstX(col, 5);
    EXPECT_EQ(out.rowLength(0), 1u);
    EXPECT_EQ(out.rowLength(1), 0u);
}

// --- Optimized kernels (differential vs reference) ----------------------------------------

class EytzingerDifferential : public ::testing::TestWithParam<size_t>
{
};

TEST_P(EytzingerDifferential, MatchesReferenceSearchEverywhere)
{
    const size_t m = GetParam();
    const BucketBoundaries reference =
        BucketBoundaries::makeLogSpaced(m, 0.02f, 3000.0f);
    const EytzingerBucketizer fast(reference);
    ASSERT_EQ(fast.size(), m);

    Rng rng(0xeee);
    for (int i = 0; i < 20000; ++i) {
        const float v = static_cast<float>(rng.logNormal(2.0, 2.5));
        ASSERT_EQ(fast.searchBucketId(v), reference.searchBucketId(v))
            << "value " << v << " m " << m;
    }
    // Exact boundary values and extremes.
    for (size_t b = 0; b < m; b += std::max<size_t>(1, m / 37)) {
        const float v = reference.values()[b];
        EXPECT_EQ(fast.searchBucketId(v), reference.searchBucketId(v));
    }
    EXPECT_EQ(fast.searchBucketId(-1.0f), 0);
    EXPECT_EQ(fast.searchBucketId(1e30f), static_cast<int64_t>(m));
    EXPECT_EQ(fast.searchBucketId(kNaN), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EytzingerDifferential,
                         ::testing::Values(1, 2, 3, 7, 8, 1024, 4096,
                                           4097));

TEST(FastOpsTest, EytzingerVectorFormMatchesScalar)
{
    const BucketBoundaries bounds =
        BucketBoundaries::makeLogSpaced(1024, 0.02f, 3000.0f);
    const EytzingerBucketizer fast(bounds);
    Rng rng(5);
    std::vector<float> values(4097);
    for (auto& v : values)
        v = static_cast<float>(rng.logNormal(2.0, 1.5));
    std::vector<int64_t> got(values.size()), expected(values.size());
    fast.bucketizeInto(values, got);
    bucketizeInto(values, bounds, expected);
    EXPECT_EQ(got, expected);
}

TEST(FastOpsTest, UnrolledHashMatchesReference)
{
    Rng rng(6);
    for (size_t n : {0u, 1u, 3u, 4u, 5u, 1023u}) {
        std::vector<int64_t> a(n), b;
        for (auto& v : a)
            v = static_cast<int64_t>(rng.next() >> 1);
        b = a;
        sigridHashInPlace(a, 77, 500000);
        sigridHashInPlaceUnrolled(b, 77, 500000);
        EXPECT_EQ(a, b) << "n=" << n;
    }
}

TEST(FastOpsTest, StridedLogMatchesReference)
{
    Rng rng(7);
    for (size_t n : {0u, 1u, 5u, 4096u}) {
        std::vector<float> a(n), b;
        for (auto& v : a)
            v = static_cast<float>(rng.uniform(-10.0, 1000.0));
        b = a;
        logTransformInPlace(a);
        logTransformInPlaceStrided(b);
        EXPECT_EQ(a, b) << "n=" << n;
    }
}

// --- MapIdList --------------------------------------------------------------------------

TEST(MapIdListTest, MapsKnownIdsToVocabIndex)
{
    IdVocabulary vocab({100, 50, 200});  // sorted internally: 50,100,200
    EXPECT_EQ(vocab.size(), 3u);
    EXPECT_EQ(vocab.lookup(50), 0);
    EXPECT_EQ(vocab.lookup(100), 1);
    EXPECT_EQ(vocab.lookup(200), 2);
    EXPECT_EQ(vocab.lookup(51), -1);
}

TEST(MapIdListTest, UnknownIdsGetMissValue)
{
    IdVocabulary vocab({10, 20});
    SparseColumn col({10, 99, 20}, {0, 2, 3});
    SparseColumn out = mapIdList(col, vocab, -7);
    EXPECT_EQ(out.row(0)[0], 0);
    EXPECT_EQ(out.row(0)[1], -7);
    EXPECT_EQ(out.row(1)[0], 1);
    EXPECT_TRUE(std::equal(out.offsets().begin(), out.offsets().end(),
                           col.offsets().begin()));
}

TEST(MapIdListTest, EmptyVocabularyMapsEverythingToMiss)
{
    IdVocabulary vocab(std::vector<int64_t>{});
    SparseColumn col({1, 2}, {0, 2});
    SparseColumn out = mapIdList(col, vocab, 0);
    EXPECT_EQ(out.row(0)[0], 0);
    EXPECT_EQ(out.row(0)[1], 0);
}

TEST(MapIdListDeathTest, DuplicateVocabIdsPanic)
{
    EXPECT_DEATH(IdVocabulary({5, 5}), "distinct");
}

// --- Preprocessor (full Transform) ------------------------------------------------------

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(2);
    cfg.batch_size = 128;
    cfg.num_dense = 6;
    cfg.num_sparse = 4;
    cfg.num_generated = 3;
    cfg.num_tables = 7;
    return cfg;
}

TEST(PreprocessorTest, OutputShape)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    Preprocessor pre(cfg);
    const MiniBatch mb = pre.preprocess(gen.generatePartition(0));
    EXPECT_TRUE(mb.consistent());
    EXPECT_EQ(mb.batch_size, cfg.batch_size);
    EXPECT_EQ(mb.num_dense, cfg.num_dense);
    EXPECT_EQ(mb.sparse.size(), cfg.totalSparseFeatures());
    EXPECT_EQ(mb.labels.size(), cfg.batch_size);
}

TEST(PreprocessorTest, DenseValuesAreNormalized)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const MiniBatch mb = Preprocessor(cfg).preprocess(
        gen.generatePartition(0));
    for (float v : mb.dense) {
        EXPECT_FALSE(std::isnan(v));  // FillMissing ran first
        EXPECT_GE(v, 0.0f);           // log1p of non-negative input
    }
}

TEST(PreprocessorTest, SparseIndicesWithinTables)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const MiniBatch mb = Preprocessor(cfg).preprocess(
        gen.generatePartition(0));
    for (const auto& jag : mb.sparse) {
        for (int64_t v : jag.values) {
            EXPECT_GE(v, 0);
            EXPECT_LT(v, static_cast<int64_t>(cfg.avg_embeddings));
        }
    }
}

TEST(PreprocessorTest, GeneratedTablesHaveOneIdPerRow)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const MiniBatch mb = Preprocessor(cfg).preprocess(
        gen.generatePartition(0));
    for (size_t g = 0; g < cfg.num_generated; ++g) {
        const auto& jag = mb.sparse[cfg.num_sparse + g];
        EXPECT_EQ(jag.feature_name, "generated_" + std::to_string(g));
        EXPECT_EQ(jag.values.size(), cfg.batch_size);
        for (uint32_t len : jag.lengths)
            EXPECT_EQ(len, 1u);
    }
}

TEST(PreprocessorTest, RawTableLengthsMatchInput)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    const MiniBatch mb = Preprocessor(cfg).preprocess(raw);
    const auto sparse_idx =
        raw.schema().indicesOfKind(FeatureKind::kSparse);
    for (size_t f = 0; f < cfg.num_sparse; ++f) {
        const auto& col = raw.sparse(sparse_idx[f]);
        const auto& jag = mb.sparse[f];
        ASSERT_EQ(jag.lengths.size(), col.numRows());
        for (size_t r = 0; r < col.numRows(); ++r)
            EXPECT_EQ(jag.lengths[r], col.rowLength(r));
    }
}

TEST(PreprocessorTest, LabelsPassThrough)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    const MiniBatch mb = Preprocessor(cfg).preprocess(raw);
    EXPECT_TRUE(std::equal(mb.labels.begin(), mb.labels.end(),
                           raw.dense(0).values().begin()));
}

TEST(PreprocessorTest, ParallelEqualsSerial)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    Preprocessor pre(cfg);
    const MiniBatch serial = pre.preprocess(raw);
    ThreadPool pool(3);
    const MiniBatch parallel = pre.preprocess(raw, &pool);
    EXPECT_EQ(serial.dense, parallel.dense);
    EXPECT_EQ(serial.labels, parallel.labels);
    ASSERT_EQ(serial.sparse.size(), parallel.sparse.size());
    for (size_t i = 0; i < serial.sparse.size(); ++i) {
        EXPECT_EQ(serial.sparse[i].values, parallel.sparse[i].values);
        EXPECT_EQ(serial.sparse[i].lengths, parallel.sparse[i].lengths);
    }
}

TEST(PreprocessorTest, DeterministicAcrossInstances)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    const MiniBatch a = Preprocessor(cfg).preprocess(raw);
    const MiniBatch b = Preprocessor(cfg).preprocess(raw);
    EXPECT_EQ(a.dense, b.dense);
    for (size_t i = 0; i < a.sparse.size(); ++i)
        EXPECT_EQ(a.sparse[i].values, b.sparse[i].values);
}

TEST(PreprocessorTest, HashSeedsDifferPerTable)
{
    Preprocessor pre(smallConfig());
    EXPECT_NE(pre.hashSeed(0), pre.hashSeed(1));
    EXPECT_EQ(pre.hashSeed(3), pre.hashSeed(3));
}

TEST(PreprocessorDeathTest, TooManyGeneratedPanics)
{
    RmConfig cfg = smallConfig();
    cfg.num_generated = cfg.num_dense + 1;
    EXPECT_DEATH(Preprocessor{cfg}, "cannot generate more");
}

// --- TransformWork -------------------------------------------------------------------------

TEST(TransformWorkTest, ExpectedCountsRm1)
{
    const TransformWork w = TransformWork::expected(rmConfig(1));
    const double batch = 8192;
    EXPECT_DOUBLE_EQ(w.dense_values, 13 * batch);
    EXPECT_DOUBLE_EQ(w.bucketize_values, 13 * batch);
    EXPECT_DOUBLE_EQ(w.bucketize_levels, 11.0);  // log2(1024)+1
    EXPECT_DOUBLE_EQ(w.hash_values, (26 + 13) * batch);
    EXPECT_DOUBLE_EQ(w.raw_values, (13 + 26 + 1) * batch);
    EXPECT_EQ(w.num_features, 1u + 13 + 39);
}

TEST(TransformWorkTest, MeasureMatchesExpectedOnAverage)
{
    RmConfig cfg = rmConfig(2);
    cfg.batch_size = 2048;
    RawDataGenerator gen(cfg);
    const TransformWork expected = TransformWork::expected(cfg);
    const TransformWork measured =
        TransformWork::measure(cfg, gen.generatePartition(0));
    EXPECT_DOUBLE_EQ(measured.dense_values, expected.dense_values);
    EXPECT_DOUBLE_EQ(measured.bucketize_values, expected.bucketize_values);
    // Sparse lengths are random; totals should agree within a few %.
    EXPECT_NEAR(measured.hash_values / expected.hash_values, 1.0, 0.05);
}

TEST(TransformWorkTest, LevelsGrowWithBucketSize)
{
    EXPECT_LT(TransformWork::expected(rmConfig(3)).bucketize_levels,
              TransformWork::expected(rmConfig(5)).bucketize_levels);
}

}  // namespace
}  // namespace presto
