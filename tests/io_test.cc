/**
 * @file
 * Tests for the async storage I/O engine: IoRing submission/completion
 * semantics, the page-granular AsyncPartitionReader, and its wiring
 * into the PreprocessManager pipeline. The central invariant is that
 * the async path is bit-identical to the blocking readAllInto path on
 * the same encoded bytes.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/durable_file.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "cachesim/op_traces.h"
#include "core/managers.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "io/async_reader.h"
#include "io/io_ring.h"

namespace presto {
namespace {

// --- IoRing -----------------------------------------------------------------

TEST(IoRingTest, StateNamesAreStable)
{
    EXPECT_STREQ(ioRequestStateName(IoRequestState::kSubmitted),
                 "submitted");
    EXPECT_STREQ(ioRequestStateName(IoRequestState::kInFlight),
                 "in-flight");
    EXPECT_STREQ(ioRequestStateName(IoRequestState::kCompleted),
                 "completed");
    EXPECT_STREQ(ioRequestStateName(IoRequestState::kFailed), "failed");
}

TEST(IoRingTest, SubmitCopiesBytesAndAccountsLatency)
{
    IoRing ring;
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> device(4096);
    for (size_t i = 0; i < device.size(); ++i)
        device[i] = static_cast<uint8_t>(mix64(i));
    std::vector<uint8_t> dst(device.size(), 0);

    IoRequest req;
    req.src = device;
    req.dest = dst.data();
    req.offset = 0;
    req.user_data = 77;
    ring.submit(me, req);

    const IoCompletion c = ring.waitCompletion(me);
    EXPECT_TRUE(c.status.ok());
    EXPECT_EQ(c.state, IoRequestState::kCompleted);
    EXPECT_EQ(c.user_data, 77u);
    EXPECT_EQ(c.bytes, device.size());
    EXPECT_EQ(c.retries, 0u);
    EXPECT_DOUBLE_EQ(c.latency_sec, ring.serviceSeconds(device.size()));
    EXPECT_EQ(dst, device);

    const IoRingStats stats = ring.statsSnapshot();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.bytes_read, device.size());
    EXPECT_GT(stats.modeledStorageSec(), 0.0);
}

TEST(IoRingTest, ServiceTimeFollowsSsdModel)
{
    IoRingOptions opt;
    const IoRing ring(opt);
    const double expected = opt.ssd.controller_overhead_sec +
                            opt.ssd.page_read_sec +
                            16384.0 / opt.ssd.channel_bytes_per_sec;
    EXPECT_DOUBLE_EQ(ring.serviceSeconds(16384), expected);
    // Larger reads cost strictly more channel time.
    EXPECT_LT(ring.serviceSeconds(4096), ring.serviceSeconds(65536));
}

TEST(IoRingTest, CompletionsRouteToTheirConsumer)
{
    IoRing ring;
    const uint32_t a = ring.registerConsumer();
    const uint32_t b = ring.registerConsumer();
    std::vector<uint8_t> device(512, 0x5a);
    std::vector<uint8_t> dst_a(512), dst_b(512);

    IoRequest req;
    req.src = device;
    for (int i = 0; i < 3; ++i) {
        req.dest = dst_a.data();
        req.user_data = 100 + static_cast<uint64_t>(i);
        ring.submit(a, req);
        req.dest = dst_b.data();
        req.user_data = 200 + static_cast<uint64_t>(i);
        ring.submit(b, req);
    }
    ring.drain();

    std::vector<IoCompletion> got_a, got_b;
    EXPECT_EQ(ring.reapCompletions(a, got_a), 3u);
    EXPECT_EQ(ring.reapCompletions(b, got_b), 3u);
    EXPECT_EQ(ring.cqSize(), 0u);
    for (const auto& c : got_a)
        EXPECT_GE(c.user_data, 100u);
    for (const auto& c : got_b)
        EXPECT_GE(c.user_data, 200u);
}

TEST(IoRingTest, DrainLeavesNothingQueuedOrInFlight)
{
    IoRing ring;
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> device(1024, 1);
    std::vector<std::vector<uint8_t>> dsts(64,
                                           std::vector<uint8_t>(1024));
    for (size_t i = 0; i < dsts.size(); ++i) {
        IoRequest req;
        req.src = device;
        req.dest = dsts[i].data();
        req.offset = i * 1024;
        req.user_data = i;
        ring.submit(me, req);
    }
    ring.drain();
    EXPECT_EQ(ring.sqSize(), 0u);
    EXPECT_EQ(ring.inFlight(), 0u);
    EXPECT_EQ(ring.cqSize(), 64u);
    std::vector<IoCompletion> got;
    EXPECT_EQ(ring.reapCompletions(me, got), 64u);
}

TEST(IoRingTest, CqGrowthPastDepthIsCountedNeverDropped)
{
    IoRingOptions opt;
    opt.cq_depth = 2;
    IoRing ring(opt);
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> device(64, 7);
    std::vector<std::vector<uint8_t>> dsts(8, std::vector<uint8_t>(64));
    for (size_t i = 0; i < dsts.size(); ++i) {
        IoRequest req;
        req.src = device;
        req.dest = dsts[i].data();
        req.user_data = i;
        ring.submit(me, req);
    }
    ring.drain();
    // Every completion survived the soft bound; the overflow shows up
    // in stats the way io_uring accounts CQ overruns.
    std::vector<IoCompletion> got;
    EXPECT_EQ(ring.reapCompletions(me, got), 8u);
    EXPECT_GT(ring.statsSnapshot().cq_overflows, 0u);
}

TEST(IoRingTest, FullSqExertsBackpressure)
{
    IoRingOptions opt;
    opt.sq_depth = 2;
    opt.workers = 1;
    opt.emulate_latency = true;
    // One request holds the single worker ~60 ms; meanwhile the SQ
    // fills and further submission must fail/block.
    opt.latency_scale = 1000.0;
    IoRing ring(opt);
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> device(256, 3);
    std::vector<std::vector<uint8_t>> dsts(4, std::vector<uint8_t>(256));

    IoRequest req;
    req.src = device;
    req.dest = dsts[0].data();
    ring.submit(me, req);
    // Wait for the worker to own the first request.
    while (ring.inFlight() == 0)
        std::this_thread::yield();
    req.dest = dsts[1].data();
    ring.submit(me, req);
    req.dest = dsts[2].data();
    ring.submit(me, req);
    // SQ now holds sq_depth entries while the worker sleeps.
    EXPECT_EQ(ring.sqSize(), 2u);
    req.dest = dsts[3].data();
    EXPECT_FALSE(ring.trySubmit(me, req));
    ring.submit(me, req);  // blocks until the worker frees a slot
    ring.drain();
    std::vector<IoCompletion> got;
    EXPECT_EQ(ring.reapCompletions(me, got), 4u);
    const IoRingStats stats = ring.statsSnapshot();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_GE(stats.max_queue_depth, 3u);
    EXPECT_EQ(static_cast<uint64_t>(stats.queue_depth.count()), 4u);
}

TEST(IoRingDeathTest, InvalidOptionsAndRequestsPanic)
{
    IoRingOptions bad;
    bad.sq_depth = 0;
    EXPECT_DEATH(IoRing{bad}, "sq_depth");
    IoRing ring;
    const uint32_t me = ring.registerConsumer();
    IoRequest req;
    std::vector<uint8_t> device(8, 1);
    req.src = device;  // non-empty source, no destination
    EXPECT_DEATH(ring.submit(me, req), "destination");
    req.dest = device.data();
    EXPECT_DEATH(ring.submit(me + 1, req), "unregistered");
}

// --- AsyncPartitionReader ----------------------------------------------------

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 512;
    return cfg;
}

TEST(AsyncReaderTest, BitIdenticalToBlockingRead)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& encoded = store.partition(0);

    ColumnarFileReader blocking;
    RowBatch expect;
    ASSERT_TRUE(blocking.open(encoded).ok());
    ASSERT_TRUE(blocking.readAllInto(expect).ok());

    for (const size_t depth : {1u, 2u, 8u, 64u}) {
        IoRing ring;
        AsyncReadOptions opt;
        opt.queue_depth = depth;
        AsyncPartitionReader reader(ring, opt);
        RowBatch got;
        ASSERT_TRUE(reader.read(encoded, 0, got).ok()) << depth;
        EXPECT_TRUE(got == expect) << "queue depth " << depth;
        // Selective-read accounting matches the blocking reader too.
        EXPECT_EQ(reader.reader().bytesTouched(),
                  blocking.bytesTouched());
        const AsyncReadStats& rs = reader.lastReadStats();
        EXPECT_GT(rs.pages, 1u);
        EXPECT_GT(rs.bytes_read, 0u);
        EXPECT_LT(rs.bytes_read, encoded.size());  // pages, not the file
        EXPECT_GT(rs.modeled_storage_sec, 0.0);
        EXPECT_EQ(rs.device_retries, 0u);
        EXPECT_EQ(rs.corrupt_page_rereads, 0u);
    }
}

TEST(AsyncReaderTest, ReusesBuffersAcrossPartitions)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    IoRing ring;
    AsyncPartitionReader reader(ring);
    ColumnarFileReader blocking;
    RowBatch got, expect;
    for (uint64_t pid = 0; pid < 4; ++pid) {
        const auto& encoded = store.partition(pid);
        ASSERT_TRUE(blocking.open(encoded).ok());
        ASSERT_TRUE(blocking.readAllInto(expect).ok());
        ASSERT_TRUE(reader.read(encoded, pid, got).ok()) << pid;
        EXPECT_TRUE(got == expect) << "partition " << pid;
    }
}

TEST(AsyncReaderTest, SharedDecodePoolMatchesSerialDecode)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    ThreadPool pool(3);
    IoRing ring;

    // Two readers over one ring and one pool, decoding different
    // partitions concurrently — the Figure 9 fetcher arrangement.
    std::vector<RowBatch> got(2);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            AsyncPartitionReader reader(ring);
            reader.setDecodePool(&pool);
            const auto& encoded = store.partition(
                static_cast<uint64_t>(t));
            if (!reader.read(encoded, static_cast<uint64_t>(t), got[t])
                     .ok())
                ++failures;
        });
    }
    for (auto& th : threads)
        th.join();
    ASSERT_EQ(failures.load(), 0);

    ColumnarFileReader blocking;
    for (int t = 0; t < 2; ++t) {
        RowBatch expect;
        ASSERT_TRUE(
            blocking.open(store.partition(static_cast<uint64_t>(t)))
                .ok());
        ASSERT_TRUE(blocking.readAllInto(expect).ok());
        EXPECT_TRUE(got[t] == expect) << "partition " << t;
    }
}

// --- PreprocessManager over the ring ----------------------------------------

/** Consume every batch and fold the TrainManager-style checksum. */
uint64_t
drainChecksum(PreprocessManager& manager, size_t batches)
{
    manager.start(batches);
    uint64_t checksum = 0;
    for (;;) {
        auto mb = manager.nextBatch();
        if (mb == nullptr)
            break;
        uint64_t crc = crc32c(mb->dense.data(),
                              mb->dense.size() * sizeof(float));
        for (const auto& jag : mb->sparse) {
            crc = crc32c(jag.values.data(),
                         jag.values.size() * sizeof(int64_t), crc);
        }
        checksum ^= mix64(crc + mb->batch_size);
        manager.recycle(std::move(mb));
    }
    return checksum;
}

TEST(ManagerIoTest, RingDeliveryBitIdenticalToBlockingFetch)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    RawDataGenerator gen(cfg);
    const size_t batches = 12;

    PartitionStore blocking_store(gen);
    PreprocessManager blocking_mgr(cfg, blocking_store,
                                   PreprocessMode::kPreSto, 2);
    const uint64_t reference = drainChecksum(blocking_mgr, batches);

    PartitionStore store(gen);
    IoRing ring;
    PreprocessManager async_mgr(cfg, store, PreprocessMode::kPreSto, 2,
                                /*queue_capacity=*/8, /*prefetch=*/true,
                                /*decode_pool=*/nullptr, &ring);
    EXPECT_EQ(drainChecksum(async_mgr, batches), reference);
    EXPECT_EQ(async_mgr.stats().batches_delivered, batches);
    EXPECT_EQ(async_mgr.stats().columnar_bytes_touched,
              blocking_mgr.stats().columnar_bytes_touched);

    const IoRingStats stats = ring.statsSnapshot();
    EXPECT_GT(stats.submitted, 0u);
    EXPECT_EQ(stats.submitted, stats.completed);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(ManagerIoTest, RingPlusSharedDecodePoolDeliversIdentically)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    RawDataGenerator gen(cfg);
    const size_t batches = 8;

    PartitionStore blocking_store(gen);
    PreprocessManager blocking_mgr(cfg, blocking_store,
                                   PreprocessMode::kPreSto, 1);
    const uint64_t reference = drainChecksum(blocking_mgr, batches);

    PartitionStore store(gen);
    ThreadPool pool(2);
    IoRing ring;
    PreprocessManager async_mgr(cfg, store, PreprocessMode::kPreSto, 2,
                                /*queue_capacity=*/8, /*prefetch=*/true,
                                &pool, &ring);
    EXPECT_EQ(drainChecksum(async_mgr, batches), reference);
}

// --- file-backed (pread) requests -------------------------------------------

TEST(IoRingTest, FdBackedRequestPreadsTheRange)
{
    std::vector<uint8_t> device(8192);
    for (size_t i = 0; i < device.size(); ++i)
        device[i] = static_cast<uint8_t>(mix64(i) >> 3);
    const std::string path = ::testing::TempDir() + "io_ring_fd.bin";
    ASSERT_TRUE(saveToFile(path, device).ok());
    auto fd = openReadOnly(path);
    ASSERT_TRUE(fd.ok());

    IoRing ring;
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> dst(1000, 0);

    IoRequest req;
    req.fd = *fd;
    req.length = static_cast<uint32_t>(dst.size());
    req.offset = 4096;
    req.dest = dst.data();
    req.user_data = 5;
    ring.submit(me, req);

    const IoCompletion c = ring.waitCompletion(me);
    EXPECT_TRUE(c.status.ok());
    EXPECT_EQ(c.bytes, dst.size());
    EXPECT_TRUE(std::equal(dst.begin(), dst.end(),
                           device.begin() + 4096));
    // Timing model charges the pread like any other request.
    EXPECT_DOUBLE_EQ(c.latency_sec, ring.serviceSeconds(dst.size()));
    ::close(*fd);
}

TEST(IoRingTest, FdBackedReadPastEofFails)
{
    const std::string path = ::testing::TempDir() + "io_ring_eof.bin";
    ASSERT_TRUE(saveToFile(path, std::vector<uint8_t>(100, 7)).ok());
    auto fd = openReadOnly(path);
    ASSERT_TRUE(fd.ok());

    IoRing ring;
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> dst(64);
    IoRequest req;
    req.fd = *fd;
    req.length = static_cast<uint32_t>(dst.size());
    req.offset = 80;  // only 20 bytes remain
    req.dest = dst.data();
    ring.submit(me, req);

    const IoCompletion c = ring.waitCompletion(me);
    EXPECT_EQ(c.state, IoRequestState::kFailed);
    EXPECT_EQ(c.status.code(), StatusCode::kCorruption);
    EXPECT_EQ(c.bytes, 0u);
    ::close(*fd);
}

TEST(AsyncReaderTest, ReadFileMatchesMemoryRead)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& encoded = store.partition(3);

    const std::string path = ::testing::TempDir() + "async_readfile.psf";
    ASSERT_TRUE(saveToFile(path, encoded).ok());

    ColumnarFileReader blocking;
    RowBatch expect;
    ASSERT_TRUE(blocking.open(encoded).ok());
    // bytesTouched() right after open = header magic + footer region;
    // drop the leading magic to get the tail the store would persist.
    const size_t tail_bytes = blocking.bytesTouched() - 4;
    ASSERT_TRUE(blocking.readAllInto(expect).ok());
    std::vector<PageReadPlan> plans;
    ASSERT_TRUE(blocking.planPageReads(plans).ok());

    auto fd = openReadOnly(path);
    ASSERT_TRUE(fd.ok());
    IoRing ring;
    AsyncPartitionReader reader(ring);
    AsyncPartitionReader::FileReadSource src;
    src.fd = *fd;
    src.file_size = encoded.size();
    src.tail = std::span<const uint8_t>(encoded).last(tail_bytes);
    src.plans = plans;
    RowBatch got;
    ASSERT_TRUE(reader.readFile(src, 3, got).ok());
    ::close(*fd);
    EXPECT_TRUE(got == expect);
    EXPECT_EQ(reader.lastReadStats().pages, plans.size());
}

// --- flash-channel affinity -------------------------------------------------

TEST(IoRingTest, ChannelPinnedRequestsKeepPerChannelFifoOrder)
{
    IoRingOptions opt;
    opt.workers = 4;
    IoRing ring(opt);
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> device(256, 0x11);
    std::vector<std::vector<uint8_t>> dst(24,
                                          std::vector<uint8_t>(256, 0));

    // Interleave submissions across two pinned channels; each channel
    // is served by exactly one worker, so its completions must pop in
    // submission order even though the channels race each other.
    IoRequest req;
    req.src = device;
    for (uint64_t i = 0; i < dst.size(); ++i) {
        req.dest = dst[i].data();
        req.channel = static_cast<int32_t>(i % 2);
        req.user_data = i;
        ring.submit(me, req);
    }
    ring.drain();

    std::vector<IoCompletion> got;
    ASSERT_EQ(ring.reapCompletions(me, got), dst.size());
    uint64_t last_even = 0, last_odd = 0;
    for (const IoCompletion& c : got) {
        ASSERT_TRUE(c.status.ok());
        uint64_t& last = (c.user_data % 2 == 0) ? last_even : last_odd;
        EXPECT_GE(c.user_data, last) << "channel FIFO order violated";
        last = c.user_data;
    }
    for (const auto& d : dst)
        EXPECT_EQ(d, device);
}

TEST(IoRingTest, MixedPinnedAndUnpinnedRequestsAllCompleteAndDrain)
{
    // Channels above the worker count wrap (channel % workers) and
    // unpinned requests keep the legacy any-worker behavior; nothing
    // may be stranded on the SQ at drain or destruction.
    IoRingOptions opt;
    opt.workers = 2;
    IoRing ring(opt);
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> device(128, 0x3c);
    std::vector<std::vector<uint8_t>> dst(40,
                                          std::vector<uint8_t>(128, 0));

    IoRequest req;
    req.src = device;
    for (uint64_t i = 0; i < dst.size(); ++i) {
        req.dest = dst[i].data();
        req.channel = static_cast<int32_t>(i % 5) - 1;  // -1..3
        req.user_data = i;
        ring.submit(me, req);
    }
    ring.drain();

    const IoRingStats stats = ring.statsSnapshot();
    EXPECT_EQ(stats.submitted, dst.size());
    EXPECT_EQ(stats.completed, dst.size());
    EXPECT_EQ(stats.failed, 0u);
    std::vector<IoCompletion> got;
    EXPECT_EQ(ring.reapCompletions(me, got), dst.size());
    for (const auto& d : dst)
        EXPECT_EQ(d, device);
}

TEST(AsyncReaderTest, PlacementModesAreBitIdenticalToBlockingRead)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    WriterOptions wopts;
    wopts.column_heat = columnAccessHeat(cfg);
    PartitionStore store(gen, wopts);
    const auto& encoded = store.partition(0);

    ColumnarFileReader blocking;
    RowBatch expect;
    ASSERT_TRUE(blocking.open(encoded).ok());
    ASSERT_TRUE(blocking.readAllInto(expect).ok());

    for (const ChannelPlacement placement :
         {ChannelPlacement::kNone, ChannelPlacement::kAddress,
          ChannelPlacement::kHeat}) {
        IoRingOptions ropt;
        ropt.workers = 4;
        IoRing ring(ropt);
        AsyncReadOptions opt;
        opt.queue_depth = 4;
        opt.placement = placement;
        AsyncPartitionReader reader(ring, opt);
        RowBatch got;
        ASSERT_TRUE(reader.read(encoded, 0, got).ok())
            << static_cast<int>(placement);
        EXPECT_TRUE(got == expect)
            << "placement " << static_cast<int>(placement);
        EXPECT_EQ(reader.reader().bytesTouched(),
                  blocking.bytesTouched());
    }
}

TEST(AsyncReaderTest, HeatPlacementWithoutMetadataDegradesToAnyChannel)
{
    // A file written without heat metadata must read fine under kHeat
    // (all plans stay channel -1, the legacy any-worker path).
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& encoded = store.partition(1);

    ColumnarFileReader blocking;
    RowBatch expect;
    ASSERT_TRUE(blocking.open(encoded).ok());
    ASSERT_TRUE(blocking.readAllInto(expect).ok());

    IoRing ring;
    AsyncReadOptions opt;
    opt.placement = ChannelPlacement::kHeat;
    AsyncPartitionReader reader(ring, opt);
    RowBatch got;
    ASSERT_TRUE(reader.read(encoded, 1, got).ok());
    EXPECT_TRUE(got == expect);
}

}  // namespace
}  // namespace presto
