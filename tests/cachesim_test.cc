/**
 * @file
 * Tests for the set-associative cache simulator and the operator trace
 * generators behind Figure 6.
 */
#include <gtest/gtest.h>

#include "cachesim/cache.h"
#include "cachesim/op_traces.h"
#include "datagen/rm_config.h"

namespace presto {
namespace {

CacheConfig
tinyCache()
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;  // 64 lines
    cfg.line_bytes = 64;
    cfg.ways = 4;           // 16 sets
    return cfg;
}

TEST(CacheSimTest, GeometryDerivation)
{
    const CacheConfig cfg = tinyCache();
    EXPECT_EQ(cfg.numSets(), 16u);
}

TEST(CacheSimTest, FirstAccessMissesSecondHits)
{
    CacheSim cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x103f, false));   // same line
    EXPECT_FALSE(cache.access(0x1040, false));  // next line
    EXPECT_EQ(cache.stats().accesses, 4u);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheSimTest, LruEvictsOldest)
{
    CacheSim cache(tinyCache());
    // Fill one set (4 ways): lines mapping to set 0 are 64*16 bytes apart.
    const uint64_t stride = 64 * 16;
    for (uint64_t i = 0; i < 4; ++i)
        cache.access(i * stride, false);
    cache.access(0, false);            // touch line 0 -> line 1 is LRU
    cache.access(4 * stride, false);   // evicts line 1
    EXPECT_TRUE(cache.access(0, false));
    EXPECT_FALSE(cache.access(1 * stride, false));  // was evicted
    EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(CacheSimTest, WritebackOnlyForDirtyLines)
{
    CacheSim cache(tinyCache());
    const uint64_t stride = 64 * 16;
    cache.access(0, true);  // dirty
    for (uint64_t i = 1; i <= 4; ++i)
        cache.access(i * stride, false);  // evicts the dirty line
    EXPECT_EQ(cache.stats().writebacks, 1u);

    cache.reset();
    cache.access(0, false);  // clean
    for (uint64_t i = 1; i <= 4; ++i)
        cache.access(i * stride, false);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(CacheSimTest, ResetClearsEverything)
{
    CacheSim cache(tinyCache());
    cache.access(0, true);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.access(0, false));  // cold again
}

TEST(CacheSimTest, AccessRangeTouchesEveryLine)
{
    CacheSim cache(tinyCache());
    cache.accessRange(10, 200, false);  // spans lines 0..3
    EXPECT_EQ(cache.stats().accesses, 4u);
    cache.reset();
    cache.accessRange(0, 1, false);
    EXPECT_EQ(cache.stats().accesses, 1u);
}

TEST(CacheSimTest, StreamingHitRateMatchesLineUtilization)
{
    CacheSim cache;  // default LLC-sized
    for (uint64_t i = 0; i < 100000; ++i)
        cache.access(i * 4, false);
    // 16 4-byte accesses per 64B line: 1 miss + 15 hits.
    EXPECT_NEAR(cache.stats().hitRate(), 15.0 / 16.0, 0.001);
}

TEST(CacheSimTest, WorkingSetSmallerThanCacheAllHitsAfterWarmup)
{
    CacheSim cache(tinyCache());
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t addr = 0; addr < 2048; addr += 64)
            cache.access(addr, false);
    }
    EXPECT_EQ(cache.stats().misses, 32u);  // cold misses only
    EXPECT_EQ(cache.stats().hits, 32u);
}

TEST(CacheSimTest, DramBytesCountsMissesAndWritebacks)
{
    CacheStats stats;
    stats.misses = 10;
    stats.writebacks = 3;
    EXPECT_EQ(stats.dramBytes(64), 13u * 64u);
}

TEST(CacheSimDeathTest, BadGeometryPanics)
{
    CacheConfig cfg;
    cfg.line_bytes = 48;  // not a power of two
    EXPECT_DEATH(CacheSim{cfg}, "power of two");
}

// --- Op traces ----------------------------------------------------------------------

RmConfig
traceConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 1024;  // keep traces fast
    return cfg;
}

TEST(OpTraceTest, BucketizeCountsMatchWorkload)
{
    const RmConfig cfg = traceConfig();
    OpTraceRunner runner;
    const OpTraceResult r = runner.runBucketize(cfg);
    // Per value: 1 input read + ~ceil(log2(m+1)) probes + 1 output write.
    const uint64_t values = cfg.num_generated * cfg.batch_size;
    EXPECT_GE(r.stats.accesses, values * 12);
    EXPECT_LE(r.stats.accesses, values * 14);
    EXPECT_GT(r.total_access_bytes, 0u);
}

TEST(OpTraceTest, BucketizeHitRateIsHigh)
{
    // Boundary arrays fit in the LLC, so Bucketize exhibits the high hit
    // rate the paper reports (~85% measured on real hardware).
    OpTraceRunner runner;
    const OpTraceResult r = runner.runBucketize(rmConfig(1));
    EXPECT_GT(r.stats.hitRate(), 0.80);
}

TEST(OpTraceTest, SigridHashStreamsWithModerateHitRate)
{
    OpTraceRunner runner;
    const OpTraceResult r = runner.runSigridHash(traceConfig());
    // Read-modify-write streaming: 8B stride in 64B lines.
    EXPECT_GT(r.stats.hitRate(), 0.85);
    EXPECT_LT(r.stats.hitRate(), 1.0);
}

TEST(OpTraceTest, LogTraceCountsDenseValues)
{
    const RmConfig cfg = traceConfig();
    OpTraceRunner runner;
    const OpTraceResult r = runner.runLog(cfg);
    EXPECT_EQ(r.stats.accesses, cfg.num_dense * cfg.batch_size * 2);
}

TEST(OpTraceTest, DramTrafficBelowTouchedBytes)
{
    OpTraceRunner runner;
    const OpTraceResult r = runner.runSigridHash(traceConfig());
    EXPECT_LT(r.dram_bytes, r.total_access_bytes);
}

TEST(OpTraceTest, LargerBucketSizeMeansMoreProbes)
{
    RmConfig rm3 = rmConfig(3);
    RmConfig rm5 = rmConfig(5);
    rm3.batch_size = rm5.batch_size = 512;
    OpTraceRunner a, b;
    EXPECT_LT(a.runBucketize(rm3).stats.accesses,
              b.runBucketize(rm5).stats.accesses);
}

TEST(OpTraceTest, DeterministicAcrossRuns)
{
    OpTraceRunner a, b;
    const OpTraceResult ra = a.runBucketize(traceConfig());
    const OpTraceResult rb = b.runBucketize(traceConfig());
    EXPECT_EQ(ra.stats.hits, rb.stats.hits);
    EXPECT_EQ(ra.stats.misses, rb.stats.misses);
}

}  // namespace
}  // namespace presto
