/**
 * @file
 * Unit tests for the DES building blocks the service scenario (and the
 * Figure-3 pipeline simulations) stand on: Simulator event ordering,
 * SimQueue backpressure semantics, UtilizationTracker accounting, and
 * the diurnal arrival generator's counter-based determinism.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/diurnal.h"
#include "sim/sim_queue.h"
#include "sim/simulator.h"
#include "sim/utilization.h"

namespace presto {
namespace {

// --- Simulator -------------------------------------------------------

TEST(SimulatorTest, FiresInTimeThenInsertionOrder)
{
    Simulator sim;
    std::vector<std::string> order;
    sim.scheduleAt(2.0, [&] { order.push_back("late"); });
    sim.scheduleAt(1.0, [&] { order.push_back("tie-first"); });
    sim.scheduleAt(1.0, [&] { order.push_back("tie-second"); });
    sim.schedule(0.5, [&] { order.push_back("early"); });
    sim.run();

    EXPECT_EQ(order, (std::vector<std::string>{
                         "early", "tie-first", "tie-second", "late"}));
    EXPECT_EQ(sim.now(), 2.0);
    EXPECT_EQ(sim.eventsProcessed(), 4u);
    EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, NestedSchedulingKeepsDeterministicTies)
{
    Simulator sim;
    std::vector<int> order;
    // An event scheduling another event at its own timestamp: the nested
    // one gets a later insertion sequence and fires after existing ties.
    sim.scheduleAt(1.0, [&] {
        order.push_back(1);
        sim.scheduleAt(1.0, [&] { order.push_back(3); });
    });
    sim.scheduleAt(1.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilStopsClockAtBound)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(1.0, [&] { ++fired; });
    sim.scheduleAt(5.0, [&] { ++fired; });
    sim.run(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 2.0);
    EXPECT_FALSE(sim.empty());
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 5.0);
}

// --- SimQueue --------------------------------------------------------

TEST(SimQueueTest, FifoHandoffAndCounts)
{
    SimQueue<int> queue(2);
    std::vector<int> popped;
    queue.push(1, nullptr);
    queue.push(2, nullptr);
    queue.pop([&](int v) { popped.push_back(v); });
    queue.pop([&](int v) { popped.push_back(v); });
    EXPECT_EQ(popped, (std::vector<int>{1, 2}));
    EXPECT_EQ(queue.totalPushed(), 2u);
    EXPECT_EQ(queue.totalPopped(), 2u);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(SimQueueTest, FullQueueStallsProducerUntilPop)
{
    SimQueue<int> queue(1);
    int accepted = 0;
    queue.push(1, [&] { ++accepted; });
    EXPECT_EQ(accepted, 1);

    // Queue full: the second push parks and its callback waits.
    queue.push(2, [&] { ++accepted; });
    EXPECT_EQ(accepted, 1);
    EXPECT_EQ(queue.waitingProducers(), 1u);
    EXPECT_EQ(queue.maxWaitingProducers(), 1u);

    int got = 0;
    queue.pop([&](int v) { got = v; });
    EXPECT_EQ(got, 1);
    EXPECT_EQ(accepted, 2);  // space opened; parked push admitted
    EXPECT_EQ(queue.waitingProducers(), 0u);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(SimQueueTest, EmptyPopWaitsForNextPush)
{
    SimQueue<int> queue(4);
    int got = 0;
    queue.pop([&](int v) { got = v; });
    EXPECT_EQ(got, 0);
    EXPECT_EQ(queue.waitingConsumers(), 1u);

    // The push bypasses the buffer and hands off to the waiting
    // consumer directly.
    queue.push(7, nullptr);
    EXPECT_EQ(got, 7);
    EXPECT_EQ(queue.size(), 0u);
    EXPECT_EQ(queue.totalPushed(), 1u);
    EXPECT_EQ(queue.totalPopped(), 1u);
}

// --- UtilizationTracker ----------------------------------------------

TEST(UtilizationTest, AccumulatesClampsAndResets)
{
    UtilizationTracker tracker;
    EXPECT_EQ(tracker.utilization(10.0), 0.0);
    tracker.addBusy(2.0);
    tracker.addBusy(3.0);
    EXPECT_DOUBLE_EQ(tracker.busySeconds(), 5.0);
    EXPECT_DOUBLE_EQ(tracker.utilization(10.0), 0.5);
    EXPECT_DOUBLE_EQ(tracker.utilization(2.0), 1.0);  // clamped
    EXPECT_EQ(tracker.utilization(0.0), 0.0);         // no elapsed time
    tracker.reset();
    EXPECT_EQ(tracker.busySeconds(), 0.0);
}

// --- Diurnal arrivals ------------------------------------------------

TEST(DiurnalTest, RateFollowsSineAndSpikes)
{
    TrafficModel traffic;
    traffic.diurnal = {10.0, 0.5, 100.0, 0};
    EXPECT_DOUBLE_EQ(traffic.rate(0), 10.0);
    EXPECT_DOUBLE_EQ(traffic.rate(25.0), 15.0);  // sine peak
    EXPECT_DOUBLE_EQ(traffic.rate(75.0), 5.0);   // trough
    EXPECT_DOUBLE_EQ(traffic.peakRate(), 15.0);

    traffic.spikes = {{20.0, 30.0, 2.0}};
    EXPECT_DOUBLE_EQ(traffic.rate(25.0), 30.0);  // inside spike window
    // The window end is exclusive: back to the bare diurnal curve.
    EXPECT_DOUBLE_EQ(traffic.rate(30.0), traffic.diurnal.rate(30.0));
    EXPECT_DOUBLE_EQ(traffic.peakRate(), 30.0);
}

TEST(DiurnalTest, SlotArrivalsAreCounterKeyedAndSorted)
{
    TrafficModel traffic;
    traffic.diurnal = {20.0, 0.0, 86400, 0};

    const auto a = slotArrivals(traffic, 42, 0, 7);
    EXPECT_EQ(slotArrivals(traffic, 42, 0, 7), a);  // pure function
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    for (double offset : a) {
        EXPECT_GE(offset, 0.0);
        EXPECT_LT(offset, 1.0);
    }

    // Different tenant, slot, or seed draw independent streams.
    EXPECT_NE(slotArrivals(traffic, 42, 1, 7), a);
    EXPECT_NE(slotArrivals(traffic, 42, 0, 8), a);
    EXPECT_NE(slotArrivals(traffic, 43, 0, 7), a);

    TrafficModel off;
    off.diurnal = {0.0, 0.0, 86400, 0};
    EXPECT_TRUE(slotArrivals(off, 42, 0, 7).empty());
}

}  // namespace
}  // namespace presto
