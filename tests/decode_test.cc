/**
 * @file
 * Differential, adversarial, and parallel-decode tests for the
 * vectorized Extract path: the dispatched SWAR/AVX2/AVX-512 decoders and the
 * hardware CRC32C must be bit-identical to their byte-wise references
 * on every input — including malformed ones, where both sides must make
 * the same accept/reject decision — and page-parallel stream decode
 * must reproduce serial decode exactly.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "columnar/columnar_file.h"
#include "columnar/encoding.h"
#include "columnar/page.h"
#include "common/crc32.h"
#include "common/thread_pool.h"
#include "core/isp_emulator.h"
#include "datagen/generator.h"
#include "ops/simd.h"

namespace presto {
namespace {

/** Every dispatch level available on this machine, scalar first. */
std::vector<SimdLevel>
availableLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::kScalar};
    if (detectedSimdLevel() >= SimdLevel::kAvx2)
        levels.push_back(SimdLevel::kAvx2);
    if (detectedSimdLevel() >= SimdLevel::kAvx512)
        levels.push_back(SimdLevel::kAvx512);
    return levels;
}

/** RAII restore of the active SIMD level. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : saved_(activeSimdLevel())
    {
        setSimdLevel(level);
    }
    ~ScopedSimdLevel() { setSimdLevel(saved_); }

  private:
    SimdLevel saved_;
};

const std::vector<Encoding> kIntEncodings{
    Encoding::kPlainI64,   Encoding::kVarint, Encoding::kDeltaVarint,
    Encoding::kRle,        Encoding::kDictionary,
    Encoding::kBitPacked};

enum class Shape {
    kUniform,
    kSmallRange,
    kZipfIds,
    kMonotone,
    kRuns,
    kFewDistinct,
    kExtremes,
};

const std::vector<Shape> kShapes{
    Shape::kUniform, Shape::kSmallRange, Shape::kZipfIds, Shape::kMonotone,
    Shape::kRuns,    Shape::kFewDistinct, Shape::kExtremes};

std::vector<int64_t>
makeValues(Shape shape, size_t n, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<int64_t> v(n);
    int64_t acc = -5000;
    for (size_t i = 0; i < n; ++i) {
        switch (shape) {
          case Shape::kUniform:
            v[i] = static_cast<int64_t>(rng());
            break;
          case Shape::kSmallRange:
            v[i] = static_cast<int64_t>(rng() % 200) - 100;
            break;
          case Shape::kZipfIds:
            // Crude Zipf-ish categorical ids: heavy head, long tail.
            v[i] = static_cast<int64_t>(
                (rng() % 4 != 0) ? rng() % 16
                                 : rng() % 1'000'000);
            break;
          case Shape::kMonotone:
            acc += static_cast<int64_t>(rng() % 37);
            v[i] = acc;
            break;
          case Shape::kRuns:
            v[i] = static_cast<int64_t>((i / 113) % 5) - 2;
            break;
          case Shape::kFewDistinct:
            v[i] = static_cast<int64_t>(rng() % 11) * 999'983;
            break;
          case Shape::kExtremes:
            switch (rng() % 4) {
              case 0:
                v[i] = std::numeric_limits<int64_t>::min();
                break;
              case 1:
                v[i] = std::numeric_limits<int64_t>::max();
                break;
              case 2: v[i] = 0; break;
              default: v[i] = static_cast<int64_t>(rng()); break;
            }
            break;
        }
    }
    return v;
}

std::vector<uint8_t>
encodeAs(Encoding encoding, std::span<const int64_t> values)
{
    switch (encoding) {
      case Encoding::kPlainI64: return enc::encodePlainI64(values);
      case Encoding::kVarint: return enc::encodeVarint(values);
      case Encoding::kDeltaVarint: return enc::encodeDeltaVarint(values);
      case Encoding::kRle: return enc::encodeRle(values);
      case Encoding::kDictionary: return enc::encodeDictionary(values);
      case Encoding::kBitPacked: return enc::encodeBitPacked(values);
      case Encoding::kPlainF32: break;
    }
    ADD_FAILURE() << "not an int encoding";
    return {};
}

/**
 * Decode @p payload with the reference decoder and with the dispatched
 * decoder at every available SIMD level; assert they agree on the
 * status code and (when accepting) on every output bit.
 */
void
expectReferenceAndFastAgree(Encoding encoding,
                            std::span<const uint8_t> payload, size_t count,
                            const std::string& what)
{
    std::vector<int64_t> want, ref_dict;
    const Status ref =
        enc::decodeI64Reference(encoding, payload, count, want, ref_dict);
    for (SimdLevel level : availableLevels()) {
        ScopedSimdLevel scoped(level);
        // Poison the output so "fast path left bytes untouched" cannot
        // pass by accident.
        std::vector<int64_t> got(count, int64_t{0x5a5a5a5a5a5a5a5a});
        std::vector<int64_t> dict;
        const Status fast = enc::decodeI64Into(encoding, payload, count,
                                               got.data(), dict);
        ASSERT_EQ(fast.code(), ref.code())
            << what << " level=" << simdLevelName(level)
            << " ref=" << ref.toString() << " fast=" << fast.toString();
        if (ref.ok()) {
            ASSERT_EQ(got, want)
                << what << " level=" << simdLevelName(level);
        }
    }
}

// --- encoder/decoder differential sweep -----------------------------------

TEST(DecodeDifferentialTest, AllEncodingsShapesAndSizesMatchReference)
{
    const std::vector<size_t> sizes{0,  1,   2,    7,    8,    9,
                                    31, 255, 256, 1000, 10000};
    for (Encoding encoding : kIntEncodings) {
        for (Shape shape : kShapes) {
            for (size_t n : sizes) {
                const auto values =
                    makeValues(shape, n, 77 * n + static_cast<int>(shape));
                const auto payload = encodeAs(encoding, values);
                // Every encoder's output must decode back to the input
                // through the reference path...
                std::vector<int64_t> out, dict;
                ASSERT_TRUE(enc::decodeI64Reference(encoding, payload, n,
                                                    out, dict)
                                .ok());
                ASSERT_EQ(out, values)
                    << encodingName(encoding) << " n=" << n;
                // ...and the dispatched kernels must agree bit for bit.
                expectReferenceAndFastAgree(
                    encoding, payload, n,
                    std::string(encodingName(encoding)) +
                        " n=" + std::to_string(n));
            }
        }
    }
}

TEST(DecodeDifferentialTest, FastDecodeToggleRoutesBothPaths)
{
    const auto values = makeValues(Shape::kZipfIds, 4096, 3);
    const auto payload = encodeAs(Encoding::kDictionary, values);
    std::vector<int64_t> fast_out, ref_out;
    ASSERT_TRUE(enc::fastDecodeEnabled());
    ASSERT_TRUE(enc::decodeI64(Encoding::kDictionary, payload,
                               values.size(), fast_out)
                    .ok());
    const bool was = enc::setFastDecodeEnabled(false);
    EXPECT_TRUE(was);
    EXPECT_FALSE(enc::fastDecodeEnabled());
    ASSERT_TRUE(enc::decodeI64(Encoding::kDictionary, payload,
                               values.size(), ref_out)
                    .ok());
    EXPECT_TRUE(enc::setFastDecodeEnabled(true) == false);
    EXPECT_EQ(fast_out, ref_out);
    EXPECT_EQ(fast_out, values);
}

TEST(DecodeDifferentialTest, VarintLengthPatternsStressWindowedKernels)
{
    // Deliberate encoded-length patterns aimed at the windowed varint
    // kernels (32-byte SWAR/AVX2 blocks, 64-byte AVX-512 groups): long
    // single-byte runs (the cont==0 fast path), uniform lengths that
    // tile or straddle the window, cyclic mixes, and sparse 9..10-byte
    // varints that force the validating fallback mid-window. Counts sit
    // just off multiples of the window sizes so the buffer-tail and
    // window-straddle resume paths both run.
    std::mt19937_64 rng(20240809);
    auto valueOfLen = [&rng](int len) {
        // Encoded length len <=> raw value in [2^(7(len-1)), 2^(7len)-1].
        const uint64_t lo = len == 1 ? 0ull : 1ull << (7 * (len - 1));
        const uint64_t hi = len == 10 ? ~0ull : (1ull << (7 * len)) - 1;
        return static_cast<int64_t>(lo + rng() % (hi - lo + 1));
    };
    struct Stream
    {
        std::string what;
        std::vector<int64_t> values;
    };
    std::vector<Stream> streams;
    for (int len = 1; len <= 10; ++len) {
        std::vector<int64_t> v(257);
        for (auto& x : v)
            x = valueOfLen(len);
        streams.push_back(
            {"uniform len=" + std::to_string(len), std::move(v)});
    }
    {
        std::vector<int64_t> v(1001);
        for (size_t i = 0; i < v.size(); ++i)
            v[i] = valueOfLen(static_cast<int>(i % 8) + 1);
        streams.push_back({"cycling len 1..8", std::move(v)});
    }
    {
        // Mostly single-byte with a rare wide varint: alternates the
        // wide kernels between the all-single-byte path and the grouped
        // (or overlong-fallback) path within one decode.
        std::vector<int64_t> v(1001);
        for (size_t i = 0; i < v.size(); ++i)
            v[i] = i % 97 == 0 ? valueOfLen(9) : valueOfLen(1);
        streams.push_back({"sparse overlong", std::move(v)});
    }
    {
        std::vector<int64_t> v(1001);
        for (auto& x : v)
            x = valueOfLen(static_cast<int>(rng() % 10) + 1);
        streams.push_back({"random len 1..10", std::move(v)});
    }
    for (const Stream& s : streams) {
        const auto payload = encodeAs(Encoding::kVarint, s.values);
        expectReferenceAndFastAgree(Encoding::kVarint, payload,
                                    s.values.size(), "varint " + s.what);
    }
}

// --- varint validation -----------------------------------------------------

TEST(VarintTest, RejectsOverlongAndOverflowingInput)
{
    auto decodeOne = [](std::vector<uint8_t> bytes, uint64_t* value) {
        size_t pos = 0;
        uint64_t v = 0;
        const Status st = enc::getVarint(bytes, pos, v);
        if (value != nullptr)
            *value = v;
        return st;
    };

    // 2^64 - 1: ten bytes, final byte 0x01 — the largest valid varint.
    uint64_t v = 0;
    std::vector<uint8_t> max_u64(9, 0xff);
    max_u64.push_back(0x01);
    ASSERT_TRUE(decodeOne(max_u64, &v).ok());
    EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());

    // 2^63 exactly: bit 63 set via the tenth byte's low bit.
    std::vector<uint8_t> two63(9, 0x80);
    two63.push_back(0x01);
    ASSERT_TRUE(decodeOne(two63, &v).ok());
    EXPECT_EQ(v, uint64_t{1} << 63);

    // Tenth byte with any significant bit past 2^64 must be rejected,
    // not silently wrapped (these used to decode as truncated values).
    std::vector<uint8_t> overflow(9, 0x80);
    overflow.push_back(0x02);
    EXPECT_EQ(decodeOne(overflow, nullptr).code(),
              StatusCode::kCorruption);
    std::vector<uint8_t> overflow7f(9, 0x80);
    overflow7f.push_back(0x7f);
    EXPECT_EQ(decodeOne(overflow7f, nullptr).code(),
              StatusCode::kCorruption);

    // Eleventh byte (continuation bit never drops) must be rejected.
    EXPECT_EQ(decodeOne(std::vector<uint8_t>(11, 0x80), nullptr).code(),
              StatusCode::kCorruption);
    // A set-high-bit-forever stream must terminate with kCorruption.
    EXPECT_EQ(decodeOne(std::vector<uint8_t>(64, 0xff), nullptr).code(),
              StatusCode::kCorruption);
    // Truncation (continuation bit on the last available byte).
    EXPECT_EQ(decodeOne({0x80}, nullptr).code(), StatusCode::kCorruption);
    EXPECT_EQ(decodeOne({}, nullptr).code(), StatusCode::kCorruption);

    // The batch decoders must make the same rejections.
    for (const auto& bad :
         {overflow, overflow7f, std::vector<uint8_t>(11, 0x80),
          std::vector<uint8_t>{0x80}}) {
        expectReferenceAndFastAgree(Encoding::kVarint, bad, 1,
                                    "overlong varint");
    }
    expectReferenceAndFastAgree(Encoding::kVarint, max_u64, 1,
                                "max u64 varint");
}

TEST(VarintTest, NonCanonicalZeroPaddingStaysAccepted)
{
    // LEB128 allows redundant leading groups ({0x80, 0x00} == 0); the
    // on-disk format has always accepted them, so the fast path must
    // too — this pins the compatible behavior.
    std::vector<uint8_t> padded{0x80, 0x00, 0x81, 0x00};
    std::vector<int64_t> out, dict;
    ASSERT_TRUE(enc::decodeI64Reference(Encoding::kVarint, padded, 2, out,
                                        dict)
                    .ok());
    EXPECT_EQ(out, (std::vector<int64_t>{0, -1}));  // zigzag 0, 1
    expectReferenceAndFastAgree(Encoding::kVarint, padded, 2,
                                "non-canonical varint");
}

// --- bit-packed framing ----------------------------------------------------

/** Test-local LSB-first bit packer, independent of the production one. */
std::vector<uint8_t>
packBits(const std::vector<uint64_t>& vals, unsigned width)
{
    std::vector<uint8_t> out((vals.size() * width + 7) / 8, 0);
    for (size_t i = 0; i < vals.size(); ++i) {
        for (unsigned b = 0; b < width; ++b) {
            if ((vals[i] >> b) & 1) {
                const uint64_t bit = i * width + b;
                out[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
            }
        }
    }
    return out;
}

/** Build a mode-0 (frame-of-reference) kBitPacked payload by hand. */
std::vector<uint8_t>
makeDirectPayload(int64_t base, const std::vector<uint64_t>& deltas,
                  unsigned width)
{
    std::vector<uint8_t> payload{0};  // mode 0
    enc::putVarint(payload, enc::zigZag(base));
    payload.push_back(static_cast<uint8_t>(width));
    const auto packed = packBits(deltas, width);
    payload.insert(payload.end(), packed.begin(), packed.end());
    return payload;
}

/** Build a mode-1 (dictionary) kBitPacked payload by hand. */
std::vector<uint8_t>
makeDictPayload(const std::vector<int64_t>& dict,
                const std::vector<uint64_t>& indices, unsigned width)
{
    std::vector<uint8_t> payload{1};  // mode 1
    enc::putVarint(payload, dict.size());
    for (int64_t d : dict)
        enc::putVarint(payload, enc::zigZag(d));
    payload.push_back(static_cast<uint8_t>(width));
    const auto packed = packBits(indices, width);
    payload.insert(payload.end(), packed.begin(), packed.end());
    return payload;
}

/** Build a mode-2 (frame-of-reference over deltas) payload by hand. */
std::vector<uint8_t>
makeDeltaPayload(int64_t first, int64_t base,
                 const std::vector<uint64_t>& excesses, unsigned width)
{
    std::vector<uint8_t> payload{2};  // mode 2
    enc::putVarint(payload, enc::zigZag(first));
    enc::putVarint(payload, enc::zigZag(base));
    payload.push_back(static_cast<uint8_t>(width));
    const auto packed = packBits(excesses, width);
    payload.insert(payload.end(), packed.begin(), packed.end());
    return payload;
}

TEST(BitPackedTest, DirectModeDecodesEveryWidth)
{
    std::mt19937_64 rng(5);
    for (unsigned width = 0; width <= 64; ++width) {
        for (size_t n : {size_t{1}, size_t{3}, size_t{64}, size_t{777}}) {
            const uint64_t mask =
                width == 64 ? ~uint64_t{0}
                            : (uint64_t{1} << width) - 1;
            const int64_t base =
                static_cast<int64_t>(rng()) % 1'000'000;
            std::vector<uint64_t> deltas(n);
            std::vector<int64_t> expect(n);
            for (size_t i = 0; i < n; ++i) {
                deltas[i] = rng() & mask;
                // Wraparound add is the documented semantics.
                expect[i] = static_cast<int64_t>(
                    static_cast<uint64_t>(base) + deltas[i]);
            }
            const auto payload = makeDirectPayload(base, deltas, width);
            std::vector<int64_t> out, dict;
            ASSERT_TRUE(enc::decodeI64Reference(Encoding::kBitPacked,
                                                payload, n, out, dict)
                            .ok())
                << "width=" << width << " n=" << n;
            ASSERT_EQ(out, expect) << "width=" << width << " n=" << n;
            expectReferenceAndFastAgree(
                Encoding::kBitPacked, payload, n,
                "bitpacked direct width=" + std::to_string(width) +
                    " n=" + std::to_string(n));
        }
    }
}

TEST(BitPackedTest, DictModeDecodesHandCraftedPayloads)
{
    std::mt19937_64 rng(6);
    const std::vector<int64_t> dict{
        -1, 0, 999'983, std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max()};
    for (unsigned width = 3; width <= 16; ++width) {
        const size_t n = 500;
        std::vector<uint64_t> indices(n);
        std::vector<int64_t> expect(n);
        for (size_t i = 0; i < n; ++i) {
            indices[i] = rng() % dict.size();
            expect[i] = dict[indices[i]];
        }
        const auto payload = makeDictPayload(dict, indices, width);
        std::vector<int64_t> out, scratch;
        ASSERT_TRUE(enc::decodeI64Reference(Encoding::kBitPacked, payload,
                                            n, out, scratch)
                        .ok());
        ASSERT_EQ(out, expect) << "width=" << width;
        expectReferenceAndFastAgree(Encoding::kBitPacked, payload, n,
                                    "bitpacked dict width=" +
                                        std::to_string(width));
    }
}

TEST(BitPackedTest, DeltaModeDecodesEveryWidth)
{
    std::mt19937_64 rng(8);
    for (unsigned width = 0; width <= 64; ++width) {
        for (size_t n : {size_t{1}, size_t{2}, size_t{64}, size_t{777}}) {
            const uint64_t mask =
                width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
            const auto first = static_cast<int64_t>(rng());
            const auto base = static_cast<int64_t>(rng()) % 1'000;
            std::vector<uint64_t> excesses(n - 1);
            std::vector<int64_t> expect(n);
            expect[0] = first;
            uint64_t prev = static_cast<uint64_t>(first);
            for (size_t i = 1; i < n; ++i) {
                excesses[i - 1] = rng() & mask;
                // Wraparound add is the documented semantics.
                prev += static_cast<uint64_t>(base) + excesses[i - 1];
                expect[i] = static_cast<int64_t>(prev);
            }
            const auto payload =
                makeDeltaPayload(first, base, excesses, width);
            std::vector<int64_t> out, dict;
            ASSERT_TRUE(enc::decodeI64Reference(Encoding::kBitPacked,
                                                payload, n, out, dict)
                            .ok())
                << "width=" << width << " n=" << n;
            ASSERT_EQ(out, expect) << "width=" << width << " n=" << n;
            expectReferenceAndFastAgree(
                Encoding::kBitPacked, payload, n,
                "bitpacked delta width=" + std::to_string(width) +
                    " n=" + std::to_string(n));
        }
    }
}

TEST(BitPackedTest, EncoderPicksDeltaModeForMonotoneOffsets)
{
    // A CSR offset array: monotone, deltas in [0, 37). kDeltaVarint
    // spends one byte per delta; mode-2 kBitPacked packs them into 6
    // bits plus a constant-size header.
    const auto offsets = makeValues(Shape::kMonotone, 4096, 9);
    EXPECT_EQ(enc::chooseIntEncoding(offsets), Encoding::kBitPacked);
    const auto payload = enc::encodeBitPacked(offsets);
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload[0], 2) << "expected frame-of-reference-over-deltas";
    EXPECT_LT(payload.size(), enc::encodeDeltaVarint(offsets).size());
    std::vector<int64_t> out, dict;
    ASSERT_TRUE(enc::decodeI64Reference(Encoding::kBitPacked, payload,
                                        offsets.size(), out, dict)
                    .ok());
    EXPECT_EQ(out, offsets);
    expectReferenceAndFastAgree(Encoding::kBitPacked, payload,
                                offsets.size(), "monotone offsets");

    // A constant-stride sequence packs into width 0: header only.
    std::vector<int64_t> strided(1000);
    for (size_t i = 0; i < strided.size(); ++i)
        strided[i] = 17 + static_cast<int64_t>(i) * 1024;
    const auto strided_payload = enc::encodeBitPacked(strided);
    ASSERT_FALSE(strided_payload.empty());
    EXPECT_EQ(strided_payload[0], 2);
    EXPECT_LT(strided_payload.size(), size_t{16});
    ASSERT_TRUE(enc::decodeI64Reference(Encoding::kBitPacked,
                                        strided_payload, strided.size(),
                                        out, dict)
                    .ok());
    EXPECT_EQ(out, strided);
    expectReferenceAndFastAgree(Encoding::kBitPacked, strided_payload,
                                strided.size(), "constant stride");
}

TEST(BitPackedTest, DeltaModeAdversarialPayloadsRejected)
{
    const auto good = makeDeltaPayload(10, -3, {1, 2, 3, 4, 5, 6}, 5);
    {
        std::vector<int64_t> out, dict;
        ASSERT_TRUE(enc::decodeI64Reference(Encoding::kBitPacked, good, 7,
                                            out, dict)
                        .ok());
    }

    std::vector<std::pair<std::string, std::vector<uint8_t>>> bad;
    // zigZag(10) and zigZag(-3) are single varint bytes, so the width
    // byte sits at index 3.
    auto mutated = [&](const std::string& name, auto&& fn) {
        std::vector<uint8_t> p = good;
        fn(p);
        bad.emplace_back(name, std::move(p));
    };
    mutated("width 65", [](auto& p) { p[3] = 65; });
    mutated("packed block too long", [](auto& p) { p.push_back(0); });
    mutated("packed block too short", [](auto& p) { p.pop_back(); });
    mutated("nonzero trailing bits", [](auto& p) { p.back() |= 0xc0; });
    bad.emplace_back("mode byte only", std::vector<uint8_t>{2});
    bad.emplace_back("truncated first varint",
                     std::vector<uint8_t>{2, 0x80});
    bad.emplace_back("truncated base varint",
                     std::vector<uint8_t>{2, 0x00, 0x80});
    bad.emplace_back("missing width byte",
                     std::vector<uint8_t>{2, 0x00, 0x00});

    for (const auto& [name, payload] : bad) {
        std::vector<int64_t> out, dict;
        EXPECT_EQ(enc::decodeI64Reference(Encoding::kBitPacked, payload, 7,
                                          out, dict)
                      .code(),
                  StatusCode::kCorruption)
            << name;
        expectReferenceAndFastAgree(Encoding::kBitPacked, payload, 7,
                                    name);
    }

    // count == 0 has no value[0] to anchor the prefix sum: reject even
    // a structurally plausible payload.
    const auto empty_ok_shape = makeDeltaPayload(0, 0, {}, 0);
    std::vector<int64_t> out, dict;
    EXPECT_EQ(enc::decodeI64Reference(Encoding::kBitPacked,
                                      empty_ok_shape, 0, out, dict)
                  .code(),
              StatusCode::kCorruption);
    expectReferenceAndFastAgree(Encoding::kBitPacked, empty_ok_shape, 0,
                                "mode 2 with count 0");
}

TEST(BitPackedTest, AdversarialPayloadsAreRejectedEverywhere)
{
    // Base 10 zigzags to a single varint byte, so the payload layout is
    // [mode][base][width][packed...] with width at index 2.
    const std::vector<uint64_t> deltas{1, 2, 3, 4, 5, 6, 7};
    const auto good = makeDirectPayload(10, deltas, 5);
    {
        std::vector<int64_t> out, dict;
        ASSERT_TRUE(enc::decodeI64Reference(Encoding::kBitPacked, good, 7,
                                            out, dict)
                        .ok());
    }

    std::vector<std::pair<std::string, std::vector<uint8_t>>> bad;
    auto mutated = [&](const std::string& name, auto&& fn) {
        std::vector<uint8_t> p = good;
        fn(p);
        bad.emplace_back(name, std::move(p));
    };
    mutated("mode 3", [](auto& p) { p[0] = 3; });
    mutated("mode 255", [](auto& p) { p[0] = 255; });
    mutated("width 65", [](auto& p) { p[2] = 65; });
    mutated("packed block too long",
            [](auto& p) { p.push_back(0); });
    mutated("packed block too short", [](auto& p) { p.pop_back(); });
    mutated("nonzero trailing bits", [](auto& p) { p.back() |= 0x80; });
    bad.emplace_back("empty payload", std::vector<uint8_t>{});
    bad.emplace_back("mode byte only", std::vector<uint8_t>{0});
    bad.emplace_back("truncated base varint",
                     std::vector<uint8_t>{0, 0x80});

    // Dictionary-mode violations: width 4 can express index 15 against
    // a 3-entry dictionary.
    bad.emplace_back(
        "dict index out of range",
        makeDictPayload({10, 20, 30}, {0, 1, 2, 15, 1, 0, 2}, 4));
    bad.emplace_back("dict truncated mid-entries",
                     std::vector<uint8_t>{1, 0x05, 0x02, 0x04});
    {
        // dict_size claims more entries than the payload could hold.
        std::vector<uint8_t> p{1};
        enc::putVarint(p, 1'000'000);
        bad.emplace_back("dict size exceeds payload", std::move(p));
    }

    for (const auto& [name, payload] : bad) {
        std::vector<int64_t> out, dict;
        EXPECT_EQ(enc::decodeI64Reference(Encoding::kBitPacked, payload, 7,
                                          out, dict)
                      .code(),
                  StatusCode::kCorruption)
            << name;
        expectReferenceAndFastAgree(Encoding::kBitPacked, payload, 7,
                                    name);
    }

    // A count the packed block cannot cover is also damage. (Count 8
    // would still fit: 8 x 5 bits fills the same 5 bytes exactly, which
    // the exact-length framing cannot distinguish — so probe with 9.)
    expectReferenceAndFastAgree(Encoding::kBitPacked, good, 9,
                                "count exceeds packed block");
    std::vector<int64_t> out, dict;
    EXPECT_EQ(enc::decodeI64Reference(Encoding::kBitPacked, good, 9, out,
                                      dict)
                  .code(),
              StatusCode::kCorruption);
}

// --- random differential fuzz ---------------------------------------------

TEST(DecodeFuzzTest, MutatedPayloadsKeepReferenceAndFastInAgreement)
{
    std::mt19937_64 rng(2024);
    int accepted = 0;
    for (int trial = 0; trial < 1500; ++trial) {
        const Encoding encoding =
            kIntEncodings[rng() % kIntEncodings.size()];
        const Shape shape = kShapes[rng() % kShapes.size()];
        const size_t n = rng() % 300;
        const auto values = makeValues(shape, n, rng());
        auto payload = encodeAs(encoding, values);

        // Half the trials mutate the payload: byte flips, truncation,
        // or appended garbage.
        if (trial % 2 == 1) {
            switch (rng() % 3) {
              case 0:
                if (!payload.empty())
                    payload[rng() % payload.size()] ^=
                        static_cast<uint8_t>(1u << (rng() % 8));
                break;
              case 1:
                payload.resize(payload.size() -
                               std::min(payload.size(), rng() % 4 + 1));
                break;
              default:
                payload.push_back(static_cast<uint8_t>(rng()));
                break;
            }
        }
        std::vector<int64_t> out, dict;
        if (enc::decodeI64Reference(encoding, payload, n, out, dict).ok())
            ++accepted;
        expectReferenceAndFastAgree(encoding, payload, n,
                                    "fuzz trial " + std::to_string(trial));
        if (HasFatalFailure())
            return;
    }
    // The unmutated half must all decode; sanity-check the fuzz isn't
    // vacuously rejecting everything.
    EXPECT_GT(accepted, 700);
}

TEST(DecodeFuzzTest, RandomGarbagePayloadsAgree)
{
    std::mt19937_64 rng(99);
    for (int trial = 0; trial < 1500; ++trial) {
        const Encoding encoding =
            kIntEncodings[rng() % kIntEncodings.size()];
        const size_t n = rng() % 200;
        std::vector<uint8_t> payload(rng() % 256);
        for (auto& b : payload)
            b = static_cast<uint8_t>(rng());
        expectReferenceAndFastAgree(encoding, payload, n,
                                    "garbage trial " +
                                        std::to_string(trial));
        if (HasFatalFailure())
            return;
    }
}

// --- LZ page codec ---------------------------------------------------------

enum class ByteShape {
    kZeros,
    kRuns,
    kCycle,
    kTextish,
    kRamp,
    kRandom,
};

const std::vector<ByteShape> kByteShapes{
    ByteShape::kZeros, ByteShape::kRuns,   ByteShape::kCycle,
    ByteShape::kTextish, ByteShape::kRamp, ByteShape::kRandom};

std::vector<uint8_t>
makeBytes(ByteShape shape, size_t n, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
        switch (shape) {
          case ByteShape::kZeros: v[i] = 0; break;
          case ByteShape::kRuns:
            v[i] = static_cast<uint8_t>((i / 97) % 7);
            break;
          case ByteShape::kCycle:
            v[i] = static_cast<uint8_t>(i % 23);
            break;
          case ByteShape::kTextish:
            v[i] = static_cast<uint8_t>(
                "the quick brown fox "[rng() % 20]);
            break;
          case ByteShape::kRamp:
            v[i] = static_cast<uint8_t>(i >> 3);
            break;
          case ByteShape::kRandom:
            v[i] = static_cast<uint8_t>(rng());
            break;
        }
    }
    return v;
}

TEST(LzCodecTest, RoundTripAcrossShapesAndSizes)
{
    const std::vector<size_t> sizes{0,   1,    2,    3,     4,    5,
                                    15,  16,   17,   255,   256,  257,
                                    999, 4096, 65535, 70000, 262144};
    for (ByteShape shape : kByteShapes) {
        for (size_t n : sizes) {
            const auto raw = makeBytes(shape, n, n * 31 + 7);
            const auto packed = enc::lzCompress(raw);
            std::vector<uint8_t> back(raw.size());
            ASSERT_TRUE(enc::lzDecompress(packed, back).ok())
                << "shape=" << static_cast<int>(shape) << " n=" << n;
            ASSERT_EQ(back, raw)
                << "shape=" << static_cast<int>(shape) << " n=" << n;
        }
    }
}

TEST(LzCodecTest, CompressibleInputShrinksRandomInputBounded)
{
    const auto runs = makeBytes(ByteShape::kRuns, 65536, 1);
    EXPECT_LT(enc::lzCompress(runs).size(), runs.size() / 4);

    // High-entropy input may expand, but only by the literal-run
    // bookkeeping: ~1 byte per 255 literals plus a small constant.
    const auto random = makeBytes(ByteShape::kRandom, 65536, 2);
    EXPECT_LE(enc::lzCompress(random).size(),
              random.size() + random.size() / 255 + 16);
}

TEST(LzCodecTest, TruncatedStreamsRejectedOrStillExact)
{
    // Every proper prefix must either be rejected as corruption or —
    // when the cut lands on a sequence boundary after the output is
    // already complete (e.g. dropping a trailing empty-literals token)
    // — still reproduce the raw bytes exactly. It must never succeed
    // with different output.
    for (ByteShape shape :
         {ByteShape::kRuns, ByteShape::kTextish, ByteShape::kRandom}) {
        const auto raw = makeBytes(shape, 5000, 11);
        const auto packed = enc::lzCompress(raw);
        for (size_t keep = 0; keep < packed.size(); ++keep) {
            std::vector<uint8_t> out(raw.size(), 0xee);
            const Status st = enc::lzDecompress(
                std::span<const uint8_t>(packed.data(), keep), out);
            if (st.ok()) {
                ASSERT_EQ(out, raw)
                    << "prefix of " << keep
                    << " bytes accepted with wrong content";
            } else {
                ASSERT_EQ(st.code(), StatusCode::kCorruption);
            }
        }
    }
}

TEST(LzCodecTest, MutatedStreamsNeverCrashOrProduceWrongSize)
{
    std::mt19937_64 rng(4242);
    for (int trial = 0; trial < 2000; ++trial) {
        const ByteShape shape = kByteShapes[rng() % kByteShapes.size()];
        const auto raw = makeBytes(shape, rng() % 3000, rng());
        auto packed = enc::lzCompress(raw);
        switch (rng() % 3) {
          case 0:
            if (!packed.empty())
                packed[rng() % packed.size()] ^=
                    static_cast<uint8_t>(1u << (rng() % 8));
            break;
          case 1:
            packed.resize(packed.size() -
                          std::min(packed.size(), rng() % 8 + 1));
            break;
          default:
            packed.push_back(static_cast<uint8_t>(rng()));
            break;
        }
        // Exact-size output buffer: ASan/UBSan turn any out-of-bounds
        // write into a failure. A mutated stream may still decompress
        // (the page CRC is what rejects it in a real frame); it must
        // just never crash or mis-size.
        std::vector<uint8_t> out(raw.size());
        (void)enc::lzDecompress(packed, out);
    }
}

TEST(LzCodecTest, RandomGarbageNeverCrashes)
{
    std::mt19937_64 rng(271828);
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<uint8_t> garbage(rng() % 512);
        for (auto& b : garbage)
            b = static_cast<uint8_t>(rng());
        std::vector<uint8_t> out(rng() % 1024);
        (void)enc::lzDecompress(garbage, out);
    }
}

// --- compressed page frames ------------------------------------------------

void
appendU32Le(std::vector<uint8_t>& out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

/**
 * Hand-build a compressed page frame with an arbitrary (possibly
 * invalid) header but a *correct* CRC, so a rejection can only come
 * from the parser's structural checks — not from the checksum.
 */
std::vector<uint8_t>
buildFrameWithValidCrc(uint8_t enc_byte, uint32_t value_count,
                       uint32_t payload_size, uint8_t codec_byte,
                       uint32_t raw_size, std::span<const uint8_t> stored)
{
    std::vector<uint8_t> out;
    out.push_back(enc_byte);
    appendU32Le(out, value_count);
    appendU32Le(out, payload_size);
    out.push_back(codec_byte);
    appendU32Le(out, raw_size);
    out.insert(out.end(), stored.begin(), stored.end());
    appendU32Le(out, crc32c(out.data(), out.size()));
    return out;
}

TEST(PageCodecTest, CompressedFramesRoundTripAllEncodings)
{
    for (Encoding encoding : kIntEncodings) {
        for (Shape shape : kShapes) {
            const auto values = makeValues(shape, 2048, 77);
            const auto payload = encodeAs(encoding, values);
            std::vector<uint8_t> frame;
            const PageCodec stored_as =
                writePageFrame(frame, encoding, 2048, payload,
                               PageCodec::kLz);

            size_t pos = 0;
            PageView page;
            ASSERT_TRUE(readPageFrame(frame, pos, page).ok());
            EXPECT_EQ(pos, frame.size());
            EXPECT_EQ(page.codec, stored_as);
            EXPECT_EQ(page.encoding, encoding);
            EXPECT_EQ(page.raw_size, payload.size());

            std::vector<uint8_t> scratch;
            std::span<const uint8_t> raw;
            ASSERT_TRUE(pagePayload(page, scratch, raw).ok());
            ASSERT_EQ(raw.size(), payload.size());
            EXPECT_TRUE(std::equal(raw.begin(), raw.end(),
                                   payload.begin()))
                << encodingName(encoding) << " shape "
                << static_cast<int>(shape);
        }
    }
}

TEST(PageCodecTest, IncompressiblePageStoredBitIdenticalToUncompressed)
{
    // Hashed-id style payloads do not shrink; the writer must fall back
    // to the exact uncompressed frame bytes, keeping old readers'
    // expectations (and old files) valid.
    const auto values = makeValues(Shape::kUniform, 4096, 5);
    const auto payload = enc::encodeVarint(values);

    std::vector<uint8_t> with_codec;
    const PageCodec stored_as = writePageFrame(
        with_codec, Encoding::kVarint, 4096, payload, PageCodec::kLz);
    std::vector<uint8_t> plain;
    writePageFrame(plain, Encoding::kVarint, 4096, payload);

    EXPECT_EQ(stored_as, PageCodec::kNone);
    EXPECT_EQ(with_codec, plain);
}

TEST(PageCodecTest, BitPackedInteractsWithCodecBySize)
{
    // A cyclic pattern bit-packs *and* still has byte-level repetition
    // left for the codec; random small-range data bit-packs to
    // near-incompressible bits and must stay uncompressed.
    std::vector<int64_t> cyclic(8192), random_small(8192);
    std::mt19937_64 rng(17);
    for (size_t i = 0; i < cyclic.size(); ++i) {
        cyclic[i] = static_cast<int64_t>(i % 16);
        random_small[i] = static_cast<int64_t>(rng() % 256);
    }

    std::vector<uint8_t> frame;
    EXPECT_EQ(writePageFrame(frame, Encoding::kBitPacked,
                             static_cast<uint32_t>(cyclic.size()),
                             enc::encodeBitPacked(cyclic), PageCodec::kLz),
              PageCodec::kLz);
    frame.clear();
    EXPECT_EQ(writePageFrame(frame, Encoding::kBitPacked,
                             static_cast<uint32_t>(random_small.size()),
                             enc::encodeBitPacked(random_small),
                             PageCodec::kLz),
              PageCodec::kNone);
}

TEST(PageCodecTest, TruncatedCompressedFramesRejected)
{
    const auto values = makeValues(Shape::kRuns, 4096, 3);
    const auto payload = enc::encodePlainI64(values);
    std::vector<uint8_t> frame;
    ASSERT_EQ(writePageFrame(frame, Encoding::kPlainI64, 4096, payload,
                             PageCodec::kLz),
              PageCodec::kLz);
    for (size_t keep = 0; keep < frame.size(); ++keep) {
        std::span<const uint8_t> prefix(frame.data(), keep);
        size_t pos = 0;
        PageView page;
        EXPECT_EQ(readPageFrame(prefix, pos, page).code(),
                  StatusCode::kCorruption)
            << "prefix of " << keep << " bytes accepted";
    }
}

TEST(PageCodecTest, MalformedCodecHeadersRejectedDespiteValidCrc)
{
    const auto raw = makeBytes(ByteShape::kRuns, 1024, 9);
    const auto packed = enc::lzCompress(raw);
    ASSERT_LT(packed.size() + kCompressedPageExtraBytes, raw.size());
    const uint8_t enc_lz =
        static_cast<uint8_t>(Encoding::kPlainI64) | kPageCompressedFlag;
    const auto n = static_cast<uint32_t>(raw.size() / 8);
    const auto psize = static_cast<uint32_t>(packed.size());
    const auto rsize = static_cast<uint32_t>(raw.size());

    struct Case {
        const char* what;
        std::vector<uint8_t> frame;
    };
    const Case cases[] = {
        {"compression flag with codec byte kNone",
         buildFrameWithValidCrc(enc_lz, n, psize, 0, rsize, packed)},
        {"unknown codec byte",
         buildFrameWithValidCrc(enc_lz, n, psize, 9, rsize, packed)},
        {"raw size above kMaxPageRawBytes",
         buildFrameWithValidCrc(enc_lz, n, psize, 1,
                                static_cast<uint32_t>(kMaxPageRawBytes + 1),
                                packed)},
        {"stored payload not smaller than raw (overlong frame)",
         buildFrameWithValidCrc(enc_lz, n, psize, 1, psize, packed)},
        {"raw size of zero with stored bytes",
         buildFrameWithValidCrc(enc_lz, n, psize, 1, 0, packed)},
    };
    for (const auto& c : cases) {
        size_t pos = 0;
        PageView page;
        EXPECT_EQ(readPageFrame(c.frame, pos, page).code(),
                  StatusCode::kCorruption)
            << c.what;
    }

    // Control: the same builder with a consistent header parses fine,
    // proving the rejections above come from the header checks.
    auto good = buildFrameWithValidCrc(enc_lz, n, psize, 1, rsize, packed);
    size_t pos = 0;
    PageView page;
    ASSERT_TRUE(readPageFrame(good, pos, page).ok());
    std::vector<uint8_t> scratch;
    std::span<const uint8_t> got;
    ASSERT_TRUE(pagePayload(page, scratch, got).ok());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), raw.begin()));
}

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownVectorAndEmptyInput)
{
    const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(crc32c(digits, sizeof(digits)), 0xE3069283u);
    EXPECT_EQ(crc32cTable(digits, sizeof(digits)), 0xE3069283u);
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
    EXPECT_EQ(crc32cTable(nullptr, 0), 0u);
}

TEST(Crc32cTest, HardwareMatchesTableOnAllSizesOffsetsAndSeeds)
{
    if (!crc32cHardwareAvailable())
        GTEST_SKIP() << "no SSE4.2 CRC32 on this machine";
    // Sizes straddle the 3-way interleave block boundaries (3x4096 and
    // 3x256) plus alignment heads/tails.
    const std::vector<size_t> sizes{0,    1,     7,     8,    9,    63,
                                    255,  256,   767,   768,  4095, 4096,
                                    8191, 12288, 12289, 50000};
    std::mt19937_64 rng(31);
    std::vector<uint8_t> buf(50000 + 8);
    for (auto& b : buf)
        b = static_cast<uint8_t>(rng());
    for (size_t size : sizes) {
        for (size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
            for (uint32_t seed : {0u, 0xdeadbeefu}) {
                EXPECT_EQ(crc32c(buf.data() + offset, size, seed),
                          crc32cTable(buf.data() + offset, size, seed))
                    << "size=" << size << " offset=" << offset
                    << " seed=" << seed;
            }
        }
    }
}

TEST(Crc32cTest, ChainingMatchesOneShot)
{
    std::mt19937_64 rng(32);
    std::vector<uint8_t> buf(30000);
    for (auto& b : buf)
        b = static_cast<uint8_t>(rng());
    const uint32_t whole = crc32c(buf.data(), buf.size());
    for (size_t split : {size_t{0}, size_t{1}, size_t{4096},
                         size_t{12289}, buf.size()}) {
        const uint32_t head = crc32c(buf.data(), split);
        EXPECT_EQ(crc32c(buf.data() + split, buf.size() - split, head),
                  whole)
            << "split=" << split;
        const uint32_t thead = crc32cTable(buf.data(), split);
        EXPECT_EQ(
            crc32cTable(buf.data() + split, buf.size() - split, thead),
            whole)
            << "split=" << split;
    }
}

TEST(Crc32cTest, HardwareToggleIsObservableAndBitIdentical)
{
    if (!crc32cHardwareAvailable())
        GTEST_SKIP() << "no SSE4.2 CRC32 on this machine";
    std::vector<uint8_t> buf(9999, 0xab);
    const bool was = setCrc32cHardwareEnabled(false);
    EXPECT_FALSE(crc32cHardwareActive());
    const uint32_t via_table = crc32c(buf.data(), buf.size());
    setCrc32cHardwareEnabled(true);
    EXPECT_TRUE(crc32cHardwareActive());
    const uint32_t via_hw = crc32c(buf.data(), buf.size());
    setCrc32cHardwareEnabled(was);
    EXPECT_EQ(via_table, via_hw);
}

// --- page-parallel stream decode -------------------------------------------

/** A batch big enough that dense and sparse streams span many pages. */
RowBatch
multiPageBatch(size_t rows)
{
    Schema schema;
    schema.add({"label", FeatureKind::kDense});
    schema.add({"dense0", FeatureKind::kDense});
    schema.add({"ids0", FeatureKind::kSparse});
    RowBatch batch(schema);
    std::mt19937_64 rng(8);
    std::vector<float> labels(rows), dense(rows);
    for (size_t i = 0; i < rows; ++i) {
        labels[i] = static_cast<float>(rng() % 2);
        dense[i] = static_cast<float>(rng() % 1000) * 0.25f;
    }
    std::vector<int64_t> ids;
    std::vector<uint32_t> offsets{0};
    for (size_t i = 0; i < rows; ++i) {
        const size_t k = rng() % 5;
        for (size_t j = 0; j < k; ++j)
            ids.push_back(static_cast<int64_t>(rng() % 100'000));
        offsets.push_back(static_cast<uint32_t>(ids.size()));
    }
    batch.addColumn(DenseColumn(std::move(labels)));
    batch.addColumn(DenseColumn(std::move(dense)));
    batch.addColumn(SparseColumn(std::move(ids), std::move(offsets)));
    return batch;
}

TEST(PageParallelTest, MatchesSerialDecodeBitForBit)
{
    const size_t rows = 3 * kMaxValuesPerPage / 2 + 123;  // 2-3 pages
    const RowBatch batch = multiPageBatch(rows);
    const auto encoded = ColumnarFileWriter().write(batch, 0);

    ColumnarFileReader serial;
    ASSERT_TRUE(serial.open(encoded).ok());
    auto want = serial.readAll();
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(*want, batch);

    ThreadPool pool(4);
    for (int threads_shared = 0; threads_shared < 2; ++threads_shared) {
        ColumnarFileReader parallel;
        parallel.setThreadPool(&pool);
        ASSERT_TRUE(parallel.open(encoded).ok());
        RowBatch got;
        ASSERT_TRUE(parallel.readAllInto(got).ok());
        EXPECT_EQ(got, *want);
        EXPECT_EQ(parallel.bytesTouched(), serial.bytesTouched());
        // Second pass reuses the same reader's buffers.
        RowBatch again;
        ASSERT_TRUE(parallel.readAllInto(again).ok());
        EXPECT_EQ(again, *want);
    }

    // The reference-decode hook applies to the parallel path too.
    enc::setFastDecodeEnabled(false);
    ColumnarFileReader ref_parallel;
    ref_parallel.setThreadPool(&pool);
    ASSERT_TRUE(ref_parallel.open(encoded).ok());
    auto ref_got = ref_parallel.readAll();
    enc::setFastDecodeEnabled(true);
    ASSERT_TRUE(ref_got.ok());
    EXPECT_EQ(*ref_got, *want);
}

TEST(PageParallelTest, CorruptPagesSurfaceAsCorruption)
{
    const size_t rows = 2 * kMaxValuesPerPage + 7;
    const RowBatch batch = multiPageBatch(rows);
    const auto encoded = ColumnarFileWriter().write(batch, 0);

    ThreadPool pool(4);
    std::mt19937_64 rng(12);
    ColumnarFileReader reader;
    reader.setThreadPool(&pool);
    ASSERT_TRUE(reader.open(encoded).ok());
    // Flip bits inside page data of every column (footer damage is
    // caught by open(), so target the page region only).
    for (const auto& col : reader.footer().columns) {
        for (const auto& stream : col.streams) {
            auto corrupt = encoded;
            const size_t pos =
                stream.offset + rng() % stream.byte_size;
            corrupt[pos] ^= static_cast<uint8_t>(1u << (rng() % 8));
            ColumnarFileReader damaged;
            damaged.setThreadPool(&pool);
            ASSERT_TRUE(damaged.open(corrupt).ok());
            auto out = damaged.readAll();
            ASSERT_FALSE(out.ok()) << col.name << " pos=" << pos;
            EXPECT_EQ(out.status().code(), StatusCode::kCorruption)
                << col.name;
        }
    }
}

TEST(PageParallelTest, IspEmulatorWithDecodePoolMatchesSerial)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 512;
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);

    IspEmulator serial(cfg);
    auto want = serial.process(encoded);
    ASSERT_TRUE(want.ok());

    ThreadPool pool(2);
    IspEmulator parallel(cfg, 8, &pool);
    auto got = parallel.process(encoded);
    ASSERT_TRUE(got.ok());

    EXPECT_EQ(got->batch_size, want->batch_size);
    EXPECT_TRUE(std::equal(
        got->dense.begin(), got->dense.end(), want->dense.begin(),
        want->dense.end(), [](float a, float b) {
            return std::bit_cast<uint32_t>(a) == std::bit_cast<uint32_t>(b);
        }));
    ASSERT_EQ(got->sparse.size(), want->sparse.size());
    for (size_t f = 0; f < got->sparse.size(); ++f) {
        EXPECT_EQ(got->sparse[f].values, want->sparse[f].values);
        EXPECT_EQ(got->sparse[f].lengths, want->sparse[f].lengths);
    }
    EXPECT_EQ(parallel.counters().decoded_values,
              serial.counters().decoded_values);
}

}  // namespace
}  // namespace presto
