/**
 * @file
 * Tests for the PreSto core: provisioner, partition store, the
 * functional train/preprocess managers, and the DES training pipeline.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/data_loader.h"
#include "core/fleet.h"
#include "core/managers.h"
#include "core/partition_store.h"
#include "core/provisioner.h"
#include "core/training_pipeline.h"
#include "models/calibration.h"

namespace presto {
namespace {

RmConfig
tinyConfig()
{
    RmConfig cfg = rmConfig(2);
    cfg.batch_size = 96;
    cfg.num_dense = 5;
    cfg.num_sparse = 3;
    cfg.num_generated = 2;
    return cfg;
}

// --- Provisioner --------------------------------------------------------------

TEST(ProvisionerTest, WorkersIsCeilOfDemandOverThroughput)
{
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        const Provision p = prov.provisionCpu(8);
        EXPECT_EQ(p.workers,
                  static_cast<int>(std::ceil(p.demand_batches_per_sec /
                                             p.per_worker_throughput)));
        EXPECT_GE(p.workers, 1);
        EXPECT_GE(p.workers * p.per_worker_throughput,
                  p.demand_batches_per_sec);
    }
}

TEST(ProvisionerTest, DemandScalesWithGpus)
{
    Provisioner prov(rmConfig(3));
    EXPECT_DOUBLE_EQ(prov.trainingDemand(8), 8 * prov.trainingDemand(1));
    EXPECT_GE(prov.provisionCpu(8).workers,
              prov.provisionCpu(1).workers);
}

TEST(ProvisionerTest, IspNeedsFarFewerWorkersThanCpu)
{
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        const Provision cpu = prov.provisionCpu(8);
        const Provision isp = prov.provisionIsp(8, IspParams::smartSsd());
        EXPECT_LT(isp.workers * 10, cpu.workers) << cfg.name;
    }
}

TEST(ProvisionerTest, DeploymentsCarryCostAndPower)
{
    Provisioner prov(rmConfig(5));
    const Provision isp = prov.provisionIsp(8, IspParams::smartSsd());
    EXPECT_DOUBLE_EQ(isp.deployment.power_watts,
                     isp.workers * cal::kSmartSsdWatts);
    EXPECT_DOUBLE_EQ(isp.deployment.capex_dollars,
                     isp.workers * cal::kSmartSsdDollars);
}

TEST(ProvisionerDeathTest, ZeroGpusPanics)
{
    Provisioner prov(rmConfig(1));
    EXPECT_DEATH(prov.trainingDemand(0), "at least one GPU");
}

// --- PartitionStore --------------------------------------------------------------

TEST(PartitionStoreTest, MaterializesLazily)
{
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    EXPECT_EQ(store.materializedCount(), 0u);
    (void)store.partition(3);
    EXPECT_EQ(store.materializedCount(), 1u);
    (void)store.partition(3);
    EXPECT_EQ(store.materializedCount(), 1u);  // cached
}

TEST(PartitionStoreTest, DeterministicBytes)
{
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen_a(cfg), gen_b(cfg);
    PartitionStore a(gen_a), b(gen_b);
    EXPECT_EQ(a.partition(5), b.partition(5));
    EXPECT_EQ(a.partitionBytes(5), b.partitionBytes(5));
}

TEST(PartitionStoreTest, PartitionsAreValidPsfFiles)
{
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(store.partition(2)).ok());
    EXPECT_EQ(reader.footer().partition_id, 2u);
    EXPECT_EQ(reader.footer().num_rows, cfg.batch_size);
}

// --- Managers (functional end-to-end) ----------------------------------------------

TEST(ManagersTest, DeliversAllBatches)
{
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    TrainManager trainer(cfg, store, PreprocessMode::kPreSto);
    const RunStats stats = trainer.train(4, /*worker_override=*/2);
    EXPECT_EQ(stats.batches_delivered, 4u);
    EXPECT_EQ(store.materializedCount(), 4u);
}

TEST(ManagersTest, ByteAccountingMatchesMode)
{
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);

    PartitionStore store_a(gen);
    TrainManager disagg(cfg, store_a, PreprocessMode::kDisaggCpu);
    const RunStats d = disagg.train(3, 1);
    EXPECT_GT(d.raw_bytes_over_network, 0u);
    EXPECT_EQ(d.raw_bytes_p2p, 0u);

    PartitionStore store_b(gen);
    TrainManager presto(cfg, store_b, PreprocessMode::kPreSto);
    const RunStats p = presto.train(3, 1);
    EXPECT_EQ(p.raw_bytes_over_network, 0u);
    EXPECT_GT(p.raw_bytes_p2p, 0u);

    // Same partitions -> same raw byte volume, just a different path.
    EXPECT_EQ(d.raw_bytes_over_network, p.raw_bytes_p2p);
    EXPECT_EQ(d.tensor_bytes_over_network, p.tensor_bytes_over_network);
}

TEST(ManagersTest, ModesProduceIdenticalTensors)
{
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);

    PartitionStore store_a(gen);
    TrainManager a(cfg, store_a, PreprocessMode::kDisaggCpu);
    (void)a.train(3, 2);

    PartitionStore store_b(gen);
    TrainManager b(cfg, store_b, PreprocessMode::kPreSto);
    (void)b.train(3, 2);

    EXPECT_EQ(a.deliveredChecksum(), b.deliveredChecksum());
    EXPECT_NE(a.deliveredChecksum(), 0u);
}

TEST(ManagersTest, ChecksumIndependentOfWorkerCount)
{
    // XOR-folded checksums are order-independent, so parallel delivery
    // must not change the result.
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);
    PartitionStore s1(gen), s2(gen);
    TrainManager one(cfg, s1, PreprocessMode::kPreSto);
    TrainManager four(cfg, s2, PreprocessMode::kPreSto);
    (void)one.train(5, 1);
    (void)four.train(5, 4);
    EXPECT_EQ(one.deliveredChecksum(), four.deliveredChecksum());
}

TEST(ManagersTest, TpRuleProvisionsWorkers)
{
    const RmConfig& cfg = rmConfig(5);
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    TrainManager trainer(cfg, store, PreprocessMode::kDisaggCpu);
    EXPECT_GT(trainer.measuredTrainingThroughput(), 0);
    (void)trainer.train(1);
    // ceil(T / P): one GPU's demand for RM5 needs ~40 CPU workers.
    EXPECT_GT(trainer.provisionedWorkers(), 20);
    EXPECT_LT(trainer.provisionedWorkers(), 80);
}

TEST(ManagersTest, ColumnarBytesTouchedCoversWholeFiles)
{
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    TrainManager trainer(cfg, store, PreprocessMode::kPreSto);
    const RunStats stats = trainer.train(2, 1);
    // readAll touches every page plus footer: within a few % of the raw
    // file bytes.
    EXPECT_GE(stats.columnar_bytes_touched, stats.raw_bytes_p2p * 95 / 100);
}

TEST(PreprocessManagerDeathTest, BadArgsPanic)
{
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    EXPECT_DEATH(PreprocessManager(cfg, store, PreprocessMode::kPreSto, 0),
                 "at least one worker");
    EXPECT_DEATH(
        PreprocessManager(cfg, store, PreprocessMode::kPreSto, 1, 0),
        "capacity");
}

TEST(ManagersTest, StressManyBatchesSmallQueue)
{
    // Backpressure correctness under real threads: a tiny queue and
    // more workers than queue slots must still deliver every batch
    // exactly once.
    const RmConfig cfg = tinyConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    PreprocessManager manager(cfg, store, PreprocessMode::kPreSto,
                              /*num_workers=*/4, /*queue_capacity=*/2);
    manager.start(24);
    size_t delivered = 0;
    while (auto mb = manager.nextBatch()) {
        EXPECT_TRUE(mb->consistent());
        ++delivered;
    }
    EXPECT_EQ(delivered, 24u);
    EXPECT_EQ(manager.stats().batches_delivered, 24u);
    EXPECT_EQ(store.materializedCount(), 24u);
}

class PipelinePerRm : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelinePerRm, IspBackendInvariants)
{
    PipelineOptions opts;
    opts.backend = PreprocBackend::kIsp;
    opts.isp_params = IspParams::smartSsd();
    opts.num_workers = 2;
    opts.batches_to_train = 96;
    const PipelineResult r =
        TrainingPipeline(rmConfig(GetParam()), opts).run();
    EXPECT_EQ(r.batches_trained, 96u);
    EXPECT_GT(r.sim_seconds, 0);
    EXPECT_LE(r.gpu_utilization, 1.0 + 1e-9);
    EXPECT_GE(r.preproc_throughput, r.train_throughput * 0.999);
    EXPECT_LE(r.train_throughput, r.gpu_max_throughput * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Rms, PipelinePerRm, ::testing::Range(1, 6));

// --- EpochPartitionLoader ---------------------------------------------------------------

TEST(DataLoaderTest, EachEpochIsAPermutation)
{
    EpochPartitionLoader loader(17, 42);
    for (int epoch = 0; epoch < 3; ++epoch) {
        std::set<uint64_t> seen;
        for (int i = 0; i < 17; ++i)
            seen.insert(loader.next());
        EXPECT_EQ(seen.size(), 17u);
        EXPECT_EQ(*seen.begin(), 0u);
        EXPECT_EQ(*seen.rbegin(), 16u);
    }
    EXPECT_EQ(loader.currentEpoch(), 2u);
}

TEST(DataLoaderTest, EpochsDiffer)
{
    EpochPartitionLoader loader(64, 7);
    EXPECT_NE(loader.epochOrder(0), loader.epochOrder(1));
    EXPECT_EQ(loader.epochOrder(1), loader.epochOrder(1));
}

TEST(DataLoaderTest, DeterministicAcrossInstances)
{
    EpochPartitionLoader a(32, 9), b(32, 9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(DataLoaderTest, SeedsChangeOrders)
{
    EpochPartitionLoader a(64, 1), b(64, 2);
    EXPECT_NE(a.epochOrder(0), b.epochOrder(0));
}

TEST(DataLoaderTest, NoShuffleIsSequential)
{
    EpochPartitionLoader loader(5, 3, /*shuffle=*/false);
    for (int epoch = 0; epoch < 2; ++epoch) {
        for (uint64_t i = 0; i < 5; ++i)
            EXPECT_EQ(loader.next(), i);
    }
}

TEST(DataLoaderTest, SinglePartitionDataset)
{
    EpochPartitionLoader loader(1, 11);
    EXPECT_EQ(loader.next(), 0u);
    EXPECT_EQ(loader.next(), 0u);
    EXPECT_EQ(loader.currentEpoch(), 1u);
}

TEST(DataLoaderDeathTest, EmptyDatasetPanics)
{
    EXPECT_DEATH(EpochPartitionLoader(0, 1), "partition");
}

// --- FleetModel -----------------------------------------------------------------------

TEST(FleetModelTest, AggregatesAcrossJobs)
{
    FleetModel fleet({{5, 8}, {5, 8}});
    const FleetSummary one = FleetModel({{5, 8}}).evaluate(
        FleetSystem::kDisaggCpu);
    const FleetSummary two = fleet.evaluate(FleetSystem::kDisaggCpu);
    EXPECT_EQ(two.total_workers, 2 * one.total_workers);
    EXPECT_DOUBLE_EQ(two.total_power_watts, 2 * one.total_power_watts);
    EXPECT_DOUBLE_EQ(two.raw_in_bytes_per_sec,
                     2 * one.raw_in_bytes_per_sec);
}

TEST(FleetModelTest, PrestoHasNoRawInTraffic)
{
    FleetModel fleet({{1, 8}, {3, 8}, {5, 16}});
    const FleetSummary presto =
        fleet.evaluate(FleetSystem::kPrestoSmartSsd);
    EXPECT_DOUBLE_EQ(presto.raw_in_bytes_per_sec, 0.0);
    EXPECT_GT(presto.tensors_out_bytes_per_sec, 0.0);
    const FleetSummary disagg = fleet.evaluate(FleetSystem::kDisaggCpu);
    EXPECT_GT(disagg.raw_in_bytes_per_sec, 0.0);
    // Tensors-out is identical: the same batches reach the trainers.
    EXPECT_DOUBLE_EQ(presto.tensors_out_bytes_per_sec,
                     disagg.tensors_out_bytes_per_sec);
}

TEST(FleetModelTest, NetworkReliefAboveOne)
{
    FleetModel fleet({{2, 8}, {4, 8}, {5, 8}});
    EXPECT_GT(fleet.networkReliefFactor(), 1.5);
}

TEST(FleetModelTest, PrestoCheaperAndCooler)
{
    FleetModel fleet({{1, 8}, {2, 8}, {3, 8}, {4, 8}, {5, 8}});
    const FleetSummary d = fleet.evaluate(FleetSystem::kDisaggCpu);
    const FleetSummary p = fleet.evaluate(FleetSystem::kPrestoSmartSsd);
    EXPECT_LT(p.total_cost_dollars * 3, d.total_cost_dollars);
    EXPECT_LT(p.total_power_watts * 8, d.total_power_watts);
    EXPECT_DOUBLE_EQ(p.total_demand_batches_per_sec,
                     d.total_demand_batches_per_sec);
}

TEST(FleetModelDeathTest, BadJobsPanic)
{
    EXPECT_DEATH(FleetModel({}), "at least one job");
    EXPECT_DEATH(FleetModel({{9, 8}}), "bad RM id");
    EXPECT_DEATH(FleetModel({{1, 0}}), "at least one GPU");
}

// --- TrainingPipeline (DES) ----------------------------------------------------------

TEST(TrainingPipelineTest, UndersuppliedGpuMatchesPreprocThroughput)
{
    PipelineOptions opts;
    opts.backend = PreprocBackend::kColocatedCpu;
    opts.num_workers = 4;
    opts.batches_to_train = 128;
    TrainingPipeline pipeline(rmConfig(5), opts);
    const PipelineResult r = pipeline.run();
    EXPECT_EQ(r.batches_trained, 128u);
    // Preprocessing-bound: training throughput ~= preproc throughput,
    // far below the GPU's demand.
    EXPECT_NEAR(r.train_throughput, r.preproc_throughput,
                r.preproc_throughput * 0.05);
    EXPECT_LT(r.gpu_utilization, 0.10);
}

TEST(TrainingPipelineTest, OversuppliedGpuSaturates)
{
    PipelineOptions opts;
    opts.backend = PreprocBackend::kIsp;
    opts.isp_params = IspParams::smartSsd();
    opts.num_workers = 16;  // >> 1 GPU demand for RM1
    opts.batches_to_train = 256;
    TrainingPipeline pipeline(rmConfig(1), opts);
    const PipelineResult r = pipeline.run();
    EXPECT_GT(r.gpu_utilization, 0.95);
    EXPECT_NEAR(r.train_throughput, r.gpu_max_throughput,
                r.gpu_max_throughput * 0.05);
    EXPECT_GT(r.max_stalled_producers, 0u);  // backpressure engaged
}

TEST(TrainingPipelineTest, ThroughputScalesWithWorkers)
{
    auto run = [](int workers) {
        PipelineOptions opts;
        opts.backend = PreprocBackend::kDisaggCpu;
        opts.num_workers = workers;
        // Long enough to amortize the pipeline-fill transient.
        opts.batches_to_train = 512;
        return TrainingPipeline(rmConfig(5), opts).run();
    };
    const double t1 = run(1).train_throughput;
    const double t8 = run(8).train_throughput;
    EXPECT_NEAR(t8 / t1, 8.0, 0.5);
}

TEST(TrainingPipelineTest, DisaggWorkerSlowerThanIspDevice)
{
    PipelineOptions cpu_opts;
    cpu_opts.backend = PreprocBackend::kDisaggCpu;
    PipelineOptions isp_opts;
    isp_opts.backend = PreprocBackend::kIsp;
    isp_opts.isp_params = IspParams::smartSsd();
    const RmConfig& cfg = rmConfig(5);
    EXPECT_GT(TrainingPipeline(cfg, cpu_opts).workerPeriodSeconds(),
              TrainingPipeline(cfg, isp_opts).workerPeriodSeconds() * 20);
}

TEST(TrainingPipelineTest, DeterministicAcrossRuns)
{
    PipelineOptions opts;
    opts.backend = PreprocBackend::kDisaggCpu;
    opts.num_workers = 3;
    opts.batches_to_train = 64;
    const PipelineResult a = TrainingPipeline(rmConfig(2), opts).run();
    const PipelineResult b = TrainingPipeline(rmConfig(2), opts).run();
    EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_DOUBLE_EQ(a.gpu_utilization, b.gpu_utilization);
}

TEST(TrainingPipelineTest, ConservationOfBatches)
{
    PipelineOptions opts;
    opts.backend = PreprocBackend::kDisaggCpu;
    opts.num_workers = 2;
    opts.batches_to_train = 32;
    const PipelineResult r = TrainingPipeline(rmConfig(1), opts).run();
    EXPECT_EQ(r.batches_trained, 32u);
    // Producers may have preprocessed a few extra batches into the queue.
    EXPECT_GE(r.preproc_throughput, r.train_throughput);
}

TEST(TrainingPipelineDeathTest, BadOptionsPanic)
{
    PipelineOptions opts;
    opts.num_workers = 0;
    EXPECT_DEATH(TrainingPipeline(rmConfig(1), opts), "worker");
}

}  // namespace
}  // namespace presto
