/**
 * @file
 * Tests for the discrete-event engine, the bounded producer-consumer
 * queue, and the utilization tracker.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/sim_queue.h"
#include "sim/simulator.h"
#include "sim/utilization.h"

namespace presto {
namespace {

// --- Simulator -----------------------------------------------------------------

TEST(SimulatorTest, StartsAtZero)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_TRUE(sim.empty());
    EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
    EXPECT_EQ(sim.eventsProcessed(), 3u);
}

TEST(SimulatorTest, SimultaneousEventsFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(1.0, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, EventsCanScheduleEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            sim.schedule(1.0, chain);
    };
    sim.schedule(0.0, chain);
    sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(SimulatorTest, RunUntilStopsEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(5.0, [&] { ++fired; });
    sim.run(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    double when = -1;
    sim.schedule(2.0, [&] {
        sim.schedule(0.0, [&] { when = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(when, 2.0);
}

TEST(SimulatorDeathTest, NegativeDelayPanics)
{
    Simulator sim;
    EXPECT_DEATH(sim.schedule(-1.0, [] {}), "past");
}

TEST(SimulatorDeathTest, ScheduleAtPastPanics)
{
    Simulator sim;
    sim.schedule(5.0, [] {});
    sim.run();
    EXPECT_DEATH(sim.scheduleAt(1.0, [] {}), "past");
}

// --- SimQueue ------------------------------------------------------------------

TEST(SimQueueTest, ImmediatePushPop)
{
    SimQueue<int> q(2);
    bool accepted = false;
    q.push(7, [&] { accepted = true; });
    EXPECT_TRUE(accepted);
    EXPECT_EQ(q.size(), 1u);

    int got = 0;
    q.pop([&](int v) { got = v; });
    EXPECT_EQ(got, 7);
    EXPECT_EQ(q.size(), 0u);
}

TEST(SimQueueTest, PopBeforePushWaits)
{
    SimQueue<std::string> q(1);
    std::string got;
    q.pop([&](std::string v) { got = std::move(v); });
    EXPECT_EQ(q.waitingConsumers(), 1u);
    q.push("hello", nullptr);
    EXPECT_EQ(got, "hello");
    EXPECT_EQ(q.waitingConsumers(), 0u);
}

TEST(SimQueueTest, FullQueueBlocksProducer)
{
    SimQueue<int> q(1);
    q.push(1, nullptr);
    bool second_accepted = false;
    q.push(2, [&] { second_accepted = true; });
    EXPECT_FALSE(second_accepted);
    EXPECT_EQ(q.waitingProducers(), 1u);

    int got = 0;
    q.pop([&](int v) { got = v; });
    EXPECT_EQ(got, 1);
    EXPECT_TRUE(second_accepted);  // freed space admitted item 2
    EXPECT_EQ(q.size(), 1u);
}

TEST(SimQueueTest, FifoOrderAcrossBackpressure)
{
    SimQueue<int> q(2);
    for (int i = 0; i < 5; ++i)
        q.push(i, nullptr);
    std::vector<int> got;
    for (int i = 0; i < 5; ++i)
        q.pop([&](int v) { got.push_back(v); });
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimQueueTest, CountsPushedAndPopped)
{
    SimQueue<int> q(4);
    q.push(1, nullptr);
    q.push(2, nullptr);
    q.pop([](int) {});
    EXPECT_EQ(q.totalPushed(), 2u);
    EXPECT_EQ(q.totalPopped(), 1u);
}

TEST(SimQueueTest, MaxWaitingProducersHighWaterMark)
{
    SimQueue<int> q(1);
    q.push(0, nullptr);
    q.push(1, nullptr);
    q.push(2, nullptr);
    EXPECT_EQ(q.maxWaitingProducers(), 2u);
    q.pop([](int) {});
    q.pop([](int) {});
    EXPECT_EQ(q.maxWaitingProducers(), 2u);  // high-water mark persists
}

TEST(SimQueueTest, HandoffCountsThroughWaitingConsumer)
{
    SimQueue<int> q(1);
    q.pop([](int) {});
    q.push(9, nullptr);
    EXPECT_EQ(q.totalPushed(), 1u);
    EXPECT_EQ(q.totalPopped(), 1u);
    EXPECT_EQ(q.size(), 0u);
}

TEST(SimQueueDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(SimQueue<int>{0}, "capacity");
}

// --- Producer-consumer integration over the simulator -----------------------------

TEST(SimQueueTest, ProducerConsumerRatesDetermineThroughput)
{
    // Producer every 1s, consumer every 2s: consumer-bound.
    Simulator sim;
    SimQueue<int> q(2);
    int produced = 0, consumed = 0;

    std::function<void()> produce = [&] {
        sim.schedule(1.0, [&] {
            if (produced >= 20)
                return;
            q.push(produced++, [&] { produce(); });
        });
    };
    std::function<void()> consume = [&] {
        q.pop([&](int) {
            sim.schedule(2.0, [&] {
                ++consumed;
                if (consumed < 20)
                    consume();
            });
        });
    };
    produce();
    consume();
    sim.run();
    EXPECT_EQ(consumed, 20);
    // Consumer-bound end time ~ 2s per item.
    EXPECT_NEAR(sim.now(), 41.0, 2.0);
}

// --- UtilizationTracker --------------------------------------------------------------

TEST(UtilizationTrackerTest, AccumulatesBusyTime)
{
    UtilizationTracker t;
    t.addBusy(2.0);
    t.addBusy(3.0);
    EXPECT_DOUBLE_EQ(t.busySeconds(), 5.0);
    EXPECT_DOUBLE_EQ(t.utilization(10.0), 0.5);
}

TEST(UtilizationTrackerTest, ClampsToOne)
{
    UtilizationTracker t;
    t.addBusy(20.0);
    EXPECT_DOUBLE_EQ(t.utilization(10.0), 1.0);
}

TEST(UtilizationTrackerTest, ZeroTotalIsZero)
{
    UtilizationTracker t;
    t.addBusy(1.0);
    EXPECT_DOUBLE_EQ(t.utilization(0.0), 0.0);
}

TEST(UtilizationTrackerTest, ResetClears)
{
    UtilizationTracker t;
    t.addBusy(1.0);
    t.reset();
    EXPECT_DOUBLE_EQ(t.busySeconds(), 0.0);
}

TEST(UtilizationTrackerDeathTest, NegativeBusyPanics)
{
    UtilizationTracker t;
    EXPECT_DEATH(t.addBusy(-1.0), "negative");
}

}  // namespace
}  // namespace presto
