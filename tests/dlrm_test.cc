/**
 * @file
 * Tests for the reference DLRM trainer: tensor kernels against naive
 * oracles, numerical gradient checks for every layer, and end-to-end
 * training behaviour (loss decreases, determinism).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generator.h"
#include "dlrm/dlrm.h"
#include "dlrm/layers.h"
#include "dlrm/metrics.h"
#include "dlrm/tensor.h"
#include "ops/preprocessor.h"

namespace presto {
namespace {

// --- Matrix kernels -----------------------------------------------------------

TEST(MatrixTest, AtAndShape)
{
    Matrix m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
    m.at(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(m.row(1)[2], 7.0f);
}

TEST(MatrixDeathTest, OutOfRangePanics)
{
    Matrix m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of range");
}

TEST(MatrixTest, MatmulAgainstHandComputedValues)
{
    Matrix a(2, 3);
    Matrix b(3, 2);
    float av = 1.0f;
    for (auto& v : a.data())
        v = av++;
    float bv = 1.0f;
    for (auto& v : b.data())
        v = bv++;
    Matrix out;
    matmul(a, b, out);
    // [[1,2,3],[4,5,6]] x [[1,2],[3,4],[5,6]] = [[22,28],[49,64]].
    EXPECT_FLOAT_EQ(out.at(0, 0), 22.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 28.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 49.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 64.0f);
}

TEST(MatrixTest, MatmulVariantsAgreeWithTransposedNaive)
{
    Rng rng(1);
    Matrix a(4, 5), b(6, 5), c(4, 7);
    a.randomize(rng, 1.0f);
    b.randomize(rng, 1.0f);
    c.randomize(rng, 1.0f);

    // matmulBT: a[4x5] * b^T[5x6] == naive with bT materialized.
    Matrix bt(5, 6);
    for (size_t i = 0; i < 6; ++i) {
        for (size_t j = 0; j < 5; ++j)
            bt.at(j, i) = b.at(i, j);
    }
    Matrix expected, got;
    matmul(a, bt, expected);
    matmulBT(a, b, got);
    for (size_t i = 0; i < expected.data().size(); ++i)
        EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-4);

    // matmulAT: a^T[5x4] * c[4x7].
    Matrix at(5, 4);
    for (size_t i = 0; i < 4; ++i) {
        for (size_t j = 0; j < 5; ++j)
            at.at(j, i) = a.at(i, j);
    }
    matmul(at, c, expected);
    matmulAT(a, c, got);
    for (size_t i = 0; i < expected.data().size(); ++i)
        EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-4);
}

TEST(MatrixDeathTest, MatmulShapeMismatchPanics)
{
    Matrix a(2, 3), b(2, 2), out;
    EXPECT_DEATH(matmul(a, b, out), "shape mismatch");
}

TEST(MatrixTest, ReluAndBackward)
{
    Matrix m(1, 4);
    m.data() = {-1.0f, 0.0f, 2.0f, -3.0f};
    reluInPlace(m);
    EXPECT_EQ(m.data(), (std::vector<float>{0, 0, 2, 0}));

    Matrix grad(1, 4, 1.0f);
    reluBackward(m, grad);
    EXPECT_EQ(grad.data(), (std::vector<float>{0, 0, 1, 0}));
}

TEST(MatrixTest, BiasAndSgd)
{
    Matrix m(2, 2, 1.0f);
    addBiasRows(m, {0.5f, -0.5f});
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 0.5f);

    Matrix g(2, 2, 2.0f);
    sgdStep(m, g, 0.25f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
}

// --- loss ------------------------------------------------------------------------

TEST(BceTest, KnownValues)
{
    Matrix logits(2, 1);
    logits.at(0, 0) = 0.0f;
    logits.at(1, 0) = 100.0f;  // confidently positive
    const std::vector<float> labels = {0.0f, 1.0f};
    Matrix grad;
    const float loss = bceWithLogits(logits, labels, grad);
    // Sample 0: log(2); sample 1: ~0.
    EXPECT_NEAR(loss, std::log(2.0f) / 2.0f, 1e-4);
    EXPECT_NEAR(grad.at(0, 0), 0.5f / 2.0f, 1e-5);
    EXPECT_NEAR(grad.at(1, 0), 0.0f, 1e-5);
}

TEST(BceTest, GradientMatchesNumericalDerivative)
{
    Rng rng(3);
    Matrix logits(8, 1);
    logits.randomize(rng, 2.0f);
    std::vector<float> labels(8);
    for (auto& y : labels)
        y = rng.bernoulli(0.5) ? 1.0f : 0.0f;

    Matrix grad;
    bceWithLogits(logits, labels, grad);
    const float eps = 1e-3f;
    for (size_t r = 0; r < 8; ++r) {
        Matrix lo = logits, hi = logits;
        lo.at(r, 0) -= eps;
        hi.at(r, 0) += eps;
        Matrix unused;
        const float f_lo = bceWithLogits(lo, labels, unused);
        const float f_hi = bceWithLogits(hi, labels, unused);
        EXPECT_NEAR(grad.at(r, 0), (f_hi - f_lo) / (2 * eps), 1e-3);
    }
}

TEST(SigmoidTest, StableAtExtremes)
{
    EXPECT_NEAR(stableSigmoid(0.0f), 0.5f, 1e-6);
    EXPECT_NEAR(stableSigmoid(100.0f), 1.0f, 1e-6);
    EXPECT_NEAR(stableSigmoid(-100.0f), 0.0f, 1e-6);
    EXPECT_GT(stableSigmoid(-100.0f), 0.0f - 1e-30);
}

// --- LinearLayer gradient check -------------------------------------------------------

/** Loss = sum(output) for gradient checking. */
float
sumForward(LinearLayer& layer, const Matrix& input)
{
    const Matrix& out = layer.forward(input);
    float acc = 0.0f;
    for (float v : out.data())
        acc += v;
    return acc;
}

TEST(LinearLayerTest, InputGradientMatchesNumerical)
{
    Rng rng(7);
    LinearLayer layer(5, 3, /*relu=*/false, rng);
    Matrix input(4, 5);
    input.randomize(rng, 1.0f);

    (void)layer.forward(input);
    Matrix grad_out(4, 3, 1.0f);  // d(sum)/dy = 1
    const Matrix grad_in = layer.backward(grad_out);

    const float eps = 1e-2f;
    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < 5; ++c) {
            Matrix lo = input, hi = input;
            lo.at(r, c) -= eps;
            hi.at(r, c) += eps;
            const float numeric =
                (sumForward(layer, hi) - sumForward(layer, lo)) / (2 * eps);
            EXPECT_NEAR(grad_in.at(r, c), numeric, 5e-2);
        }
    }
}

TEST(LinearLayerTest, WeightGradientMatchesNumerical)
{
    Rng rng(8);
    LinearLayer layer(3, 2, /*relu=*/false, rng);
    Matrix input(4, 3);
    input.randomize(rng, 1.0f);

    (void)layer.forward(input);
    Matrix grad_out(4, 2, 1.0f);
    (void)layer.backward(grad_out);

    // Probe one weight numerically: nudge, forward, compare step effect.
    const float eps = 1e-2f;
    const float w_orig = layer.weights().at(1, 2);
    layer.weights().at(1, 2) = w_orig + eps;
    const float f_hi = sumForward(layer, input);
    layer.weights().at(1, 2) = w_orig - eps;
    const float f_lo = sumForward(layer, input);
    layer.weights().at(1, 2) = w_orig;
    const float numeric = (f_hi - f_lo) / (2 * eps);

    // Recover the analytic dW from the SGD step.
    (void)layer.forward(input);
    (void)layer.backward(grad_out);
    const float before = layer.weights().at(1, 2);
    layer.step(1.0f);
    const float analytic = before - layer.weights().at(1, 2);
    EXPECT_NEAR(analytic, numeric, 5e-2);
}

TEST(LinearLayerTest, ReluMasksNegativePreactivations)
{
    Rng rng(9);
    LinearLayer layer(2, 2, /*relu=*/true, rng);
    Matrix input(1, 2);
    input.data() = {100.0f, 100.0f};
    const Matrix& out = layer.forward(input);
    for (float v : out.data())
        EXPECT_GE(v, 0.0f);
}

// --- EmbeddingBag -----------------------------------------------------------------------

TEST(EmbeddingBagTest, PoolsRowSums)
{
    Rng rng(10);
    EmbeddingBag bag(4, 2, rng);
    auto& table = bag.mutableTable();
    for (size_t r = 0; r < 4; ++r) {
        table.at(r, 0) = static_cast<float>(r);
        table.at(r, 1) = static_cast<float>(10 * r);
    }
    JaggedIndices idx;
    idx.values = {1, 3, 0};
    idx.lengths = {2, 0, 1};
    const Matrix& pooled = bag.forward(idx);
    EXPECT_FLOAT_EQ(pooled.at(0, 0), 4.0f);   // rows 1+3
    EXPECT_FLOAT_EQ(pooled.at(0, 1), 40.0f);
    EXPECT_FLOAT_EQ(pooled.at(1, 0), 0.0f);   // empty bag
    EXPECT_FLOAT_EQ(pooled.at(2, 0), 0.0f);   // row 0
}

TEST(EmbeddingBagTest, SparseBackwardOnlyTouchesGatheredRows)
{
    Rng rng(11);
    EmbeddingBag bag(4, 2, rng);
    const Matrix before = bag.table();

    JaggedIndices idx;
    idx.values = {2};
    idx.lengths = {1};
    (void)bag.forward(idx);
    Matrix grad(1, 2);
    grad.data() = {1.0f, -1.0f};
    bag.backwardAndStep(grad, 0.5f);

    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < 2; ++c) {
            if (r == 2) {
                EXPECT_NE(bag.table().at(r, c), before.at(r, c));
            } else {
                EXPECT_EQ(bag.table().at(r, c), before.at(r, c));
            }
        }
    }
    EXPECT_FLOAT_EQ(bag.table().at(2, 0), before.at(2, 0) - 0.5f);
    EXPECT_FLOAT_EQ(bag.table().at(2, 1), before.at(2, 1) + 0.5f);
}

TEST(EmbeddingBagDeathTest, IndexOutOfRangePanics)
{
    Rng rng(12);
    EmbeddingBag bag(4, 2, rng);
    JaggedIndices idx;
    idx.values = {4};
    idx.lengths = {1};
    EXPECT_DEATH(bag.forward(idx), "out of range");
}

// --- InteractionLayer ---------------------------------------------------------------------

TEST(InteractionLayerTest, OutputLayoutAndValues)
{
    InteractionLayer layer(3, 2);
    EXPECT_EQ(layer.outputWidth(), 2u + 3u);

    Matrix v0(1, 2), v1(1, 2), v2(1, 2);
    v0.data() = {1.0f, 2.0f};
    v1.data() = {3.0f, 4.0f};
    v2.data() = {5.0f, 6.0f};
    const Matrix& out = layer.forward({&v0, &v1, &v2});
    EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);   // dense passthrough
    EXPECT_FLOAT_EQ(out.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(out.at(0, 2), 11.0f);  // v0.v1
    EXPECT_FLOAT_EQ(out.at(0, 3), 17.0f);  // v0.v2
    EXPECT_FLOAT_EQ(out.at(0, 4), 39.0f);  // v1.v2
}

TEST(InteractionLayerTest, BackwardMatchesNumerical)
{
    InteractionLayer layer(3, 2);
    Rng rng(13);
    Matrix v0(2, 2), v1(2, 2), v2(2, 2);
    v0.randomize(rng, 1.0f);
    v1.randomize(rng, 1.0f);
    v2.randomize(rng, 1.0f);

    auto loss = [&](const Matrix& a, const Matrix& b, const Matrix& c) {
        const Matrix& out = layer.forward({&a, &b, &c});
        float acc = 0.0f;
        for (float v : out.data())
            acc += v;
        return acc;
    };

    (void)layer.forward({&v0, &v1, &v2});
    Matrix grad_out(2, layer.outputWidth(), 1.0f);
    const auto grads = layer.backward(grad_out);
    ASSERT_EQ(grads.size(), 3u);

    const float eps = 1e-2f;
    for (size_t r = 0; r < 2; ++r) {
        for (size_t c = 0; c < 2; ++c) {
            Matrix lo = v1, hi = v1;
            lo.at(r, c) -= eps;
            hi.at(r, c) += eps;
            const float numeric =
                (loss(v0, hi, v2) - loss(v0, lo, v2)) / (2 * eps);
            EXPECT_NEAR(grads[1].at(r, c), numeric, 5e-2);
        }
    }
}

TEST(InteractionLayerDeathTest, ShapeMismatchPanics)
{
    InteractionLayer layer(2, 2);
    Matrix ok(1, 2), bad(1, 3);
    EXPECT_DEATH(layer.forward({&ok, &bad}), "shape mismatch");
}

// --- metrics ------------------------------------------------------------------------------

TEST(AucTest, PerfectSeparationIsOne)
{
    const std::vector<float> scores = {0.1f, 0.2f, 0.8f, 0.9f};
    const std::vector<float> labels = {0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(rocAuc(scores, labels), 1.0);
}

TEST(AucTest, InvertedSeparationIsZero)
{
    const std::vector<float> scores = {0.9f, 0.8f, 0.2f, 0.1f};
    const std::vector<float> labels = {0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(rocAuc(scores, labels), 0.0);
}

TEST(AucTest, AllTiedIsHalf)
{
    const std::vector<float> scores = {0.5f, 0.5f, 0.5f, 0.5f};
    const std::vector<float> labels = {0, 1, 0, 1};
    EXPECT_DOUBLE_EQ(rocAuc(scores, labels), 0.5);
}

TEST(AucTest, DegenerateClassesReturnHalf)
{
    const std::vector<float> scores = {0.1f, 0.9f};
    EXPECT_DOUBLE_EQ(rocAuc(scores, std::vector<float>{1, 1}), 0.5);
    EXPECT_DOUBLE_EQ(rocAuc(scores, std::vector<float>{0, 0}), 0.5);
}

TEST(AucTest, RandomScoresNearHalf)
{
    Rng rng(77);
    std::vector<float> scores(20000), labels(20000);
    for (size_t i = 0; i < scores.size(); ++i) {
        scores[i] = static_cast<float>(rng.uniform());
        labels[i] = rng.bernoulli(0.3) ? 1.0f : 0.0f;
    }
    EXPECT_NEAR(rocAuc(scores, labels), 0.5, 0.02);
}

TEST(AucTest, InvariantUnderMonotoneTransform)
{
    Rng rng(78);
    std::vector<float> scores(500), labels(500), shifted(500);
    for (size_t i = 0; i < scores.size(); ++i) {
        scores[i] = static_cast<float>(rng.normal());
        labels[i] = rng.bernoulli(0.4) ? 1.0f : 0.0f;
        shifted[i] = 3.0f * scores[i] + 7.0f;
    }
    EXPECT_DOUBLE_EQ(rocAuc(scores, labels), rocAuc(shifted, labels));
}

TEST(AccuracyTest, ThresholdAtZeroLogit)
{
    const std::vector<float> logits = {-1.0f, 2.0f, -3.0f, 0.5f};
    const std::vector<float> labels = {0, 1, 1, 0};
    EXPECT_DOUBLE_EQ(accuracyAtZeroLogit(logits, labels), 0.5);
    EXPECT_DOUBLE_EQ(accuracyAtZeroLogit({}, {}), 0.0);
}

// --- DlrmModel end-to-end --------------------------------------------------------------------

MiniBatch
makeBatch(const RmConfig& cfg, uint64_t partition)
{
    RawDataGenerator gen(cfg);
    Preprocessor pre(cfg);
    return pre.preprocess(gen.generatePartition(partition));
}

RmConfig
tinyRm()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    cfg.num_dense = 6;
    cfg.num_sparse = 4;
    cfg.num_generated = 3;
    return cfg;
}

TEST(DlrmModelTest, ForwardShapeAndFiniteness)
{
    const RmConfig cfg = tinyRm();
    DlrmModel model(DlrmParams::fromRmConfig(cfg, 8, 256));
    const MiniBatch mb = makeBatch(cfg, 0);
    const Matrix logits = model.forward(mb);
    EXPECT_EQ(logits.rows(), mb.batch_size);
    EXPECT_EQ(logits.cols(), 1u);
    for (float v : logits.data())
        EXPECT_TRUE(std::isfinite(v));
}

TEST(DlrmModelTest, LossDecreasesOverTraining)
{
    const RmConfig cfg = tinyRm();
    DlrmParams params = DlrmParams::fromRmConfig(cfg, 8, 256);
    params.learning_rate = 0.1f;
    DlrmModel model(params);
    const MiniBatch mb = makeBatch(cfg, 0);

    const float initial = model.evaluate(mb);
    float final_loss = initial;
    for (int step = 0; step < 25; ++step)
        final_loss = model.trainStep(mb);
    EXPECT_LT(final_loss, initial * 0.8f);
    EXPECT_TRUE(std::isfinite(final_loss));
}

TEST(DlrmModelTest, TrainingIsDeterministic)
{
    const RmConfig cfg = tinyRm();
    const MiniBatch mb = makeBatch(cfg, 1);
    DlrmModel a(DlrmParams::fromRmConfig(cfg, 8, 256));
    DlrmModel b(DlrmParams::fromRmConfig(cfg, 8, 256));
    for (int step = 0; step < 5; ++step)
        EXPECT_FLOAT_EQ(a.trainStep(mb), b.trainStep(mb));
}

TEST(DlrmModelTest, ParameterCountMatchesArchitecture)
{
    DlrmParams p;
    p.num_dense = 4;
    p.num_tables = 2;
    p.embedding_rows = 10;
    p.embedding_dim = 4;
    p.bottom_mlp = {8, 4};
    p.top_mlp = {6, 1};
    DlrmModel model(p);
    // Embeddings: 2*10*4 = 80. Bottom: 4*8+8 + 8*4+4 = 76.
    // Interaction width: 4 + 3 = 7. Top: 7*6+6 + 6*1+1 = 55.
    EXPECT_EQ(model.parameterCount(), 80u + 76u + 55u);
}

TEST(DlrmModelTest, AucImprovesOnLearnableLabels)
{
    // The synthetic 3% CTR gives only a handful of positives per small
    // batch; for a stable AUC check, relabel rows by a dense feature so
    // the signal is balanced and learnable.
    const RmConfig cfg = tinyRm();
    DlrmParams params = DlrmParams::fromRmConfig(cfg, 8, 256);
    params.learning_rate = 0.1f;
    DlrmModel model(params);
    MiniBatch mb = makeBatch(cfg, 0);
    std::vector<float> sorted_f0(mb.batch_size);
    for (size_t r = 0; r < mb.batch_size; ++r)
        sorted_f0[r] = mb.dense[r * mb.num_dense];
    std::nth_element(sorted_f0.begin(),
                     sorted_f0.begin() + sorted_f0.size() / 2,
                     sorted_f0.end());
    const float median = sorted_f0[sorted_f0.size() / 2];
    for (size_t r = 0; r < mb.batch_size; ++r)
        mb.labels[r] = mb.dense[r * mb.num_dense] > median ? 1.0f : 0.0f;

    const Matrix before = model.forward(mb);
    const double auc_before = rocAuc(before.data(), mb.labels);
    for (int step = 0; step < 200; ++step)
        (void)model.trainStep(mb);
    const Matrix after = model.forward(mb);
    const double auc_after = rocAuc(after.data(), mb.labels);
    EXPECT_GT(auc_after, auc_before);
    EXPECT_GT(auc_after, 0.85);  // memorizes the training batch
}

TEST(DlrmModelTest, GeneralizesAcrossPartitions)
{
    // Training on partition 0 should also reduce loss on partition 1
    // (same synthetic distribution).
    const RmConfig cfg = tinyRm();
    DlrmParams params = DlrmParams::fromRmConfig(cfg, 8, 256);
    params.learning_rate = 0.1f;
    DlrmModel model(params);
    const MiniBatch train = makeBatch(cfg, 0);
    const MiniBatch held_out = makeBatch(cfg, 1);

    const float before = model.evaluate(held_out);
    for (int step = 0; step < 30; ++step)
        (void)model.trainStep(train);
    EXPECT_LT(model.evaluate(held_out), before);
}

TEST(DlrmModelDeathTest, MismatchedBatchPanics)
{
    const RmConfig cfg = tinyRm();
    DlrmModel model(DlrmParams::fromRmConfig(cfg, 8, 256));
    MiniBatch mb = makeBatch(cfg, 0);
    mb.sparse.pop_back();
    EXPECT_DEATH(model.forward(mb), "table count mismatch");
}

TEST(DlrmParamsTest, FromRmConfigMirrorsTableStructure)
{
    const DlrmParams p = DlrmParams::fromRmConfig(rmConfig(3), 16, 500);
    EXPECT_EQ(p.num_dense, 504u);
    EXPECT_EQ(p.num_tables, 84u);
    EXPECT_EQ(p.embedding_dim, 16u);
    EXPECT_EQ(p.bottom_mlp.back(), 16u);
    EXPECT_EQ(p.top_mlp.back(), 1u);
}

}  // namespace
}  // namespace presto
