/**
 * @file
 * Tests for the Table I presets, the distribution samplers, and the raw
 * data generator.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "datagen/distributions.h"
#include "datagen/generator.h"
#include "datagen/rm_config.h"

namespace presto {
namespace {

// --- RmConfig (Table I) -------------------------------------------------------

TEST(RmConfigTest, FiveWorkloads)
{
    EXPECT_EQ(numRmConfigs(), 5u);
}

TEST(RmConfigTest, Rm1MatchesCriteo)
{
    const RmConfig& c = rmConfig(1);
    EXPECT_EQ(c.num_dense, 13u);
    EXPECT_EQ(c.num_sparse, 26u);
    EXPECT_DOUBLE_EQ(c.avg_sparse_length, 1.0);
    EXPECT_TRUE(c.fixed_sparse_length);
    EXPECT_EQ(c.num_generated, 13u);
    EXPECT_EQ(c.bucket_size, 1024u);
    EXPECT_EQ(c.num_tables, 39u);
    EXPECT_EQ(c.avg_embeddings, 500000u);
    EXPECT_EQ(c.batch_size, 8192u);
}

struct TableOneRow {
    int rm;
    size_t dense, sparse, generated, bucket, tables;
};

class TableOneTest : public ::testing::TestWithParam<TableOneRow>
{
};

TEST_P(TableOneTest, MatchesPaper)
{
    const auto& row = GetParam();
    const RmConfig& c = rmConfig(row.rm);
    EXPECT_EQ(c.num_dense, row.dense);
    EXPECT_EQ(c.num_sparse, row.sparse);
    EXPECT_EQ(c.num_generated, row.generated);
    EXPECT_EQ(c.bucket_size, row.bucket);
    EXPECT_EQ(c.num_tables, row.tables);
    // Tables = raw sparse features + generated sparse features.
    EXPECT_EQ(c.num_tables, c.totalSparseFeatures());
    // Shared model architecture.
    EXPECT_EQ(c.bottom_mlp, (std::vector<size_t>{512, 256, 128}));
    EXPECT_EQ(c.top_mlp, (std::vector<size_t>{1024, 1024, 512, 256, 1}));
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, TableOneTest,
    ::testing::Values(TableOneRow{1, 13, 26, 13, 1024, 39},
                      TableOneRow{2, 504, 42, 21, 1024, 63},
                      TableOneRow{3, 504, 42, 42, 1024, 84},
                      TableOneRow{4, 504, 42, 42, 2048, 84},
                      TableOneRow{5, 504, 42, 42, 4096, 84}),
    [](const auto& info) { return "RM" + std::to_string(info.param.rm); });

TEST(RmConfigTest, RawValuesPerRow)
{
    const RmConfig& c = rmConfig(1);
    // 13 dense + 26 sparse x len 1 + 1 label.
    EXPECT_DOUBLE_EQ(c.rawValuesPerRow(), 40.0);
    EXPECT_DOUBLE_EQ(c.rawValuesPerBatch(), 40.0 * 8192);
}

TEST(RmConfigDeathTest, OutOfRangeIdPanics)
{
    EXPECT_DEATH(rmConfig(0), "RM id");
    EXPECT_DEATH(rmConfig(6), "RM id");
}

// --- ZipfSampler ---------------------------------------------------------------

class ZipfTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>>
{
};

TEST_P(ZipfTest, SamplesInRange)
{
    const auto [n, s] = GetParam();
    ZipfSampler zipf(n, s);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(zipf.sample(rng), n);
}

TEST_P(ZipfTest, HeadIsMorePopularThanTail)
{
    const auto [n, s] = GetParam();
    if (n < 100)
        GTEST_SKIP() << "needs enough items to split head/tail";
    ZipfSampler zipf(n, s);
    Rng rng(100);
    uint64_t head = 0, tail = 0;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t v = zipf.sample(rng);
        if (v < n / 10)
            ++head;
        else if (v >= n - n / 10)
            ++tail;
    }
    EXPECT_GT(head, tail * 2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfTest,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{10},
                                         uint64_t{1000},
                                         uint64_t{50'000'000}),
                       ::testing::Values(0.8, 1.0, 1.05, 1.5)));

TEST(ZipfTest, DeterministicGivenStream)
{
    ZipfSampler zipf(1000, 1.05);
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf.sample(a), zipf.sample(b));
}

TEST(ZipfTest, SingleItemAlwaysZero)
{
    ZipfSampler zipf(1, 1.0);
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfTest, Rank1MostFrequent)
{
    ZipfSampler zipf(100, 1.2);
    Rng rng(5);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    for (int k = 1; k < 10; ++k)
        EXPECT_GE(counts[0], counts[k]);
}

TEST(ZipfDeathTest, InvalidParamsPanic)
{
    EXPECT_DEATH(ZipfSampler(0, 1.0), "at least one item");
    EXPECT_DEATH(ZipfSampler(10, 0.0), "positive");
}

// --- PoissonSampler ---------------------------------------------------------------

class PoissonTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonTest, MeanAndVarianceMatchLambda)
{
    const double lambda = GetParam();
    PoissonSampler poisson(lambda);
    Rng rng(202);
    Accumulator acc;
    for (int i = 0; i < 50000; ++i)
        acc.add(static_cast<double>(poisson.sample(rng)));
    EXPECT_NEAR(acc.mean(), lambda, std::max(0.05, lambda * 0.03));
    EXPECT_NEAR(acc.variance(), lambda, std::max(0.1, lambda * 0.08));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonTest,
                         ::testing::Values(0.5, 2.0, 20.0, 100.0));

TEST(PoissonTest, ZeroLambdaAlwaysZero)
{
    PoissonSampler poisson(0.0);
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(poisson.sample(rng), 0u);
}

TEST(PoissonDeathTest, NegativeLambdaPanics)
{
    EXPECT_DEATH(PoissonSampler(-1.0), "non-negative");
}

// --- RawDataGenerator -----------------------------------------------------------

TEST(GeneratorTest, SchemaMatchesConfig)
{
    const RmConfig& cfg = rmConfig(2);
    RawDataGenerator gen(cfg);
    EXPECT_EQ(gen.schema().numDense(), cfg.num_dense);
    EXPECT_EQ(gen.schema().numSparse(), cfg.num_sparse);
    EXPECT_EQ(gen.schema().numLabels(), 1u);
}

TEST(GeneratorTest, PartitionIsDeterministic)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 256;
    RawDataGenerator a(cfg), b(cfg);
    EXPECT_EQ(a.generatePartition(3), b.generatePartition(3));
}

TEST(GeneratorTest, PartitionsAreIndependentOfGenerationOrder)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    RawDataGenerator a(cfg), b(cfg);
    (void)a.generatePartition(0);  // warm a differently than b
    EXPECT_EQ(a.generatePartition(5), b.generatePartition(5));
}

TEST(GeneratorTest, DistinctPartitionsDiffer)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    RawDataGenerator gen(cfg);
    EXPECT_FALSE(gen.generatePartition(0) == gen.generatePartition(1));
}

TEST(GeneratorTest, RowCountOverride)
{
    RawDataGenerator gen(rmConfig(1));
    EXPECT_EQ(gen.generatePartition(0, 64).numRows(), 64u);
}

TEST(GeneratorTest, DefaultRowsIsBatchSize)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 512;
    RawDataGenerator gen(cfg);
    EXPECT_EQ(gen.generatePartition(0).numRows(), 512u);
}

TEST(GeneratorTest, Rm1SparseLengthsAreFixedAtOne)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 256;
    RawDataGenerator gen(cfg);
    const RowBatch batch = gen.generatePartition(0);
    for (size_t c : batch.schema().indicesOfKind(FeatureKind::kSparse)) {
        const auto& col = batch.sparse(c);
        for (size_t r = 0; r < col.numRows(); ++r)
            EXPECT_EQ(col.rowLength(r), 1u);
    }
}

TEST(GeneratorTest, ProductionSparseLengthsAverageTwenty)
{
    RmConfig cfg = rmConfig(5);
    cfg.batch_size = 512;
    cfg.num_sparse = 8;  // keep the test fast
    cfg.num_dense = 4;
    cfg.num_generated = 2;
    RawDataGenerator gen(cfg);
    const RowBatch batch = gen.generatePartition(0);
    Accumulator acc;
    for (size_t c : batch.schema().indicesOfKind(FeatureKind::kSparse))
        acc.add(batch.sparse(c).averageLength());
    EXPECT_NEAR(acc.mean(), 20.0, 1.0);
}

TEST(GeneratorTest, MissingDenseRateMatchesOption)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 2048;
    GeneratorOptions opts;
    opts.missing_dense_prob = 0.1;
    RawDataGenerator gen(cfg, opts);
    const RowBatch batch = gen.generatePartition(0);
    size_t nan_count = 0, total = 0;
    for (size_t c : batch.schema().indicesOfKind(FeatureKind::kDense)) {
        for (float v : batch.dense(c).values()) {
            nan_count += std::isnan(v);
            ++total;
        }
    }
    EXPECT_NEAR(static_cast<double>(nan_count) / total, 0.1, 0.02);
}

TEST(GeneratorTest, LabelsAreBinaryWithLowCtr)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 4096;
    RawDataGenerator gen(cfg);
    const RowBatch batch = gen.generatePartition(0);
    const auto& labels = batch.dense(0);
    size_t clicks = 0;
    for (float v : labels.values()) {
        EXPECT_TRUE(v == 0.0f || v == 1.0f);
        clicks += (v == 1.0f);
    }
    EXPECT_NEAR(static_cast<double>(clicks) / batch.numRows(), 0.03, 0.015);
}

TEST(GeneratorTest, SparseIdsAreNonNegative)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 256;
    RawDataGenerator gen(cfg);
    const RowBatch batch = gen.generatePartition(0);
    for (size_t c : batch.schema().indicesOfKind(FeatureKind::kSparse)) {
        for (int64_t id : batch.sparse(c).values())
            EXPECT_GE(id, 0);
    }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentData)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    GeneratorOptions opt_a, opt_b;
    opt_b.seed = opt_a.seed + 1;
    RawDataGenerator a(cfg, opt_a), b(cfg, opt_b);
    EXPECT_FALSE(a.generatePartition(0) == b.generatePartition(0));
}

}  // namespace
}  // namespace presto
