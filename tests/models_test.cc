/**
 * @file
 * Tests for the device/cost models: CPU worker, ISP accelerator, GPU
 * training/preprocessing, data sizes, network/RPC, power/TCO, and the
 * FPGA resource table.
 */
#include <gtest/gtest.h>

#include "models/calibration.h"
#include "models/cost_model.h"
#include "models/cpu_model.h"
#include "models/data_size.h"
#include "models/fpga_resources.h"
#include "models/gpu_model.h"
#include "models/isp_model.h"
#include "models/network_model.h"
#include "models/ssd_model.h"

namespace presto {
namespace {

// --- data sizes ----------------------------------------------------------------

TEST(DataSizeTest, PositiveAndMonotoneInFeatures)
{
    double prev = 0;
    for (const auto& cfg : allRmConfigs()) {
        const double raw = rawEncodedBytes(cfg);
        EXPECT_GT(raw, 0);
        EXPECT_GE(raw, prev);
        prev = raw;
        EXPECT_GT(miniBatchBytes(cfg), 0);
    }
}

TEST(DataSizeTest, RawScalesWithBatchSize)
{
    RmConfig cfg = rmConfig(1);
    const double base = rawEncodedBytes(cfg);
    cfg.batch_size *= 2;
    EXPECT_NEAR(rawEncodedBytes(cfg) / base, 2.0, 0.01);
}

TEST(DataSizeTest, Rm5RawIsTensOfMegabytes)
{
    const double raw = rawEncodedBytes(rmConfig(5));
    EXPECT_GT(raw, 30e6);
    EXPECT_LT(raw, 150e6);
}

// --- CPU model -------------------------------------------------------------------

class CpuModelAllRms : public ::testing::TestWithParam<int>
{
};

TEST_P(CpuModelAllRms, BreakdownIsPositiveEverywhere)
{
    CpuWorkerModel cpu(rmConfig(GetParam()));
    const LatencyBreakdown b = cpu.batchLatency();
    EXPECT_GT(b.extract_read, 0);
    EXPECT_GT(b.extract_decode, 0);
    EXPECT_GT(b.bucketize, 0);
    EXPECT_GT(b.sigrid_hash, 0);
    EXPECT_GT(b.log, 0);
    EXPECT_GT(b.other, 0);
    EXPECT_DOUBLE_EQ(b.total(), b.extract_read + b.extract_decode +
                                    b.bucketize + b.sigrid_hash + b.log +
                                    b.other);
}

TEST_P(CpuModelAllRms, SharesSumToOne)
{
    CpuWorkerModel cpu(rmConfig(GetParam()));
    const LatencyBreakdown b = cpu.batchLatency();
    EXPECT_GT(b.transformShare(), 0.0);
    EXPECT_LT(b.transformShare() + b.extractShare(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rms, CpuModelAllRms, ::testing::Range(1, 6));

TEST(CpuModelTest, ThroughputIsLinearInCores)
{
    CpuWorkerModel cpu(rmConfig(3));
    const double one = cpu.throughput(1);
    EXPECT_DOUBLE_EQ(cpu.throughput(10), 10 * one);
    EXPECT_DOUBLE_EQ(cpu.throughput(0), 0.0);
    EXPECT_DOUBLE_EQ(one, cpu.throughputPerCore());
}

TEST(CpuModelTest, ColocatedSlowerThanDedicated)
{
    CpuWorkerModel cpu(rmConfig(5));
    EXPECT_LT(cpu.colocatedThroughputPerCore(), cpu.throughputPerCore());
}

TEST(CpuModelTest, LocalReadFasterThanRemote)
{
    CpuWorkerModel cpu(rmConfig(5));
    EXPECT_LT(cpu.batchLatencyLocalRead().extract_read,
              cpu.batchLatency().extract_read);
}

TEST(CpuModelTest, LatencyGrowsWithBucketSize)
{
    // RM3 -> RM4 -> RM5 differ only in bucket size.
    const double l3 = CpuWorkerModel(rmConfig(3)).batchLatency().total();
    const double l4 = CpuWorkerModel(rmConfig(4)).batchLatency().total();
    const double l5 = CpuWorkerModel(rmConfig(5)).batchLatency().total();
    EXPECT_LT(l3, l4);
    EXPECT_LT(l4, l5);
    // ...and only the Bucketize component moves.
    EXPECT_LT(CpuWorkerModel(rmConfig(3)).batchLatency().bucketize,
              CpuWorkerModel(rmConfig(5)).batchLatency().bucketize);
    EXPECT_DOUBLE_EQ(CpuWorkerModel(rmConfig(3)).batchLatency().sigrid_hash,
                     CpuWorkerModel(rmConfig(5)).batchLatency().sigrid_hash);
}

TEST(CpuModelTest, LatencyGrowsWithGeneratedFeatures)
{
    // RM2 -> RM3 doubles the generated features at equal bucket size.
    const LatencyBreakdown b2 = CpuWorkerModel(rmConfig(2)).batchLatency();
    const LatencyBreakdown b3 = CpuWorkerModel(rmConfig(3)).batchLatency();
    EXPECT_NEAR(b3.bucketize / b2.bucketize, 2.0, 0.01);
}

TEST(CpuModelTest, FusedTransformRateShrinksTransformOnly)
{
    // The measured fused-VM rate replaces the calibrated per-operator
    // transform costs: Extract is untouched, the transform stages
    // shrink, and the measured rate governs the new transform time.
    for (int rm : {1, 2, 5}) {
        const RmConfig cfg = rmConfig(rm);
        const LatencyBreakdown base =
            CpuWorkerModel(cfg).batchLatency();
        const CpuWorkerModel fused_model(
            cfg, cal::kCpuDecodeSecPerValue, {},
            cal::kMeasuredFusedSecPerValue);
        const LatencyBreakdown fused = fused_model.batchLatency();
        EXPECT_DOUBLE_EQ(fused.extract_read, base.extract_read);
        EXPECT_DOUBLE_EQ(fused.extract_decode, base.extract_decode);
        const double base_transform =
            base.bucketize + base.sigrid_hash + base.log;
        const double fused_transform =
            fused.bucketize + fused.sigrid_hash + fused.log;
        EXPECT_LT(fused_transform, base_transform) << "RM" << rm;
        EXPECT_NEAR(fused_transform,
                    fused_model.work().output_values *
                        cal::kMeasuredFusedSecPerValue,
                    1e-12)
            << "RM" << rm;
        EXPECT_LT(fused.total(), base.total()) << "RM" << rm;
    }
}

TEST(CpuModelDeathTest, NegativeCoresPanics)
{
    CpuWorkerModel cpu(rmConfig(1));
    EXPECT_DEATH(cpu.throughput(-1), "negative");
}

// --- ISP model -------------------------------------------------------------------

TEST(IspParamsTest, FactoriesAreDistinct)
{
    const IspParams ssd = IspParams::smartSsd();
    const IspParams pu = IspParams::prestoU280();
    const IspParams du = IspParams::disaggU280();
    EXPECT_EQ(ssd.placement, AcceleratorPlacement::kInStorage);
    EXPECT_EQ(pu.placement, AcceleratorPlacement::kInStorage);
    EXPECT_EQ(du.placement, AcceleratorPlacement::kDisaggregated);
    EXPECT_GT(pu.hash_pes, ssd.hash_pes);
    EXPECT_GT(pu.watts, ssd.watts);
    EXPECT_EQ(pu.watts, du.watts);
    EXPECT_LE(ssd.watts, 25.0);  // NVMe power envelope
}

class IspModelAllRms : public ::testing::TestWithParam<int>
{
};

TEST_P(IspModelAllRms, FasterThanOneCpuCore)
{
    const RmConfig& cfg = rmConfig(GetParam());
    const double cpu = CpuWorkerModel(cfg).batchLatency().total();
    const double isp =
        IspDeviceModel(IspParams::smartSsd(), cfg).batchLatency().total();
    EXPECT_LT(isp, cpu);
}

TEST_P(IspModelAllRms, ThroughputExceedsInverseLatency)
{
    const RmConfig& cfg = rmConfig(GetParam());
    IspDeviceModel device(IspParams::smartSsd(), cfg);
    // Inter-batch pipelining: throughput beats 1/latency.
    EXPECT_GT(device.throughput(),
              1.0 / device.batchLatency().total() * 1.05);
}

TEST_P(IspModelAllRms, BottleneckBoundsThroughput)
{
    const RmConfig& cfg = rmConfig(GetParam());
    IspDeviceModel device(IspParams::smartSsd(), cfg);
    EXPECT_LE(device.throughput(),
              device.params().batch_concurrency /
                  device.bottleneckStageSeconds() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rms, IspModelAllRms, ::testing::Range(1, 6));

/** Invariants that must hold for every accelerator build x workload. */
class IspBuildSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static IspParams
    build(int which)
    {
        switch (which) {
          case 0: return IspParams::smartSsd();
          case 1: return IspParams::prestoU280();
          default: return IspParams::disaggU280();
        }
    }
};

TEST_P(IspBuildSweep, LatencyAndThroughputInvariants)
{
    const auto [which, rm] = GetParam();
    const IspParams params = build(which);
    IspDeviceModel device(params, rmConfig(rm));

    const LatencyBreakdown b = device.batchLatency();
    EXPECT_GT(b.total(), 0);
    EXPECT_GE(b.extract_read, 0);
    EXPECT_GT(b.extract_decode, 0);
    EXPECT_GT(b.sigrid_hash, 0);
    EXPECT_GT(device.throughput(), 0);
    // Throughput never exceeds the delivery path's capacity.
    EXPECT_LE(device.throughput(), 1.0 / device.deliverSeconds() + 1e-9);
    // All builds beat a single CPU core end to end.
    EXPECT_LT(b.total(),
              CpuWorkerModel(rmConfig(rm)).batchLatency().total());
}

std::string
ispBuildSweepName(const ::testing::TestParamInfo<std::tuple<int, int>>& info)
{
    const char* name = "DisaggU280";
    if (std::get<0>(info.param) == 0)
        name = "SmartSSD";
    else if (std::get<0>(info.param) == 1)
        name = "PreStoU280";
    return std::string(name) + "_RM" +
           std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    BuildsAndWorkloads, IspBuildSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range(1, 6)),
    ispBuildSweepName);

TEST(IspModelTest, DisaggPlacementPaysNetworkCost)
{
    const RmConfig& cfg = rmConfig(5);
    const double in_storage =
        IspDeviceModel(IspParams::prestoU280(), cfg).batchLatency().total();
    const double disagg =
        IspDeviceModel(IspParams::disaggU280(), cfg).batchLatency().total();
    EXPECT_GT(disagg, in_storage);
}

TEST(IspModelTest, U280ComputeFasterThanSmartSsd)
{
    const RmConfig& cfg = rmConfig(5);
    const LatencyBreakdown ssd =
        IspDeviceModel(IspParams::smartSsd(), cfg).batchLatency();
    const LatencyBreakdown u280 =
        IspDeviceModel(IspParams::prestoU280(), cfg).batchLatency();
    EXPECT_LT(u280.sigrid_hash, ssd.sigrid_hash);
    EXPECT_LT(u280.log, ssd.log);
    EXPECT_LT(u280.extract_decode, ssd.extract_decode);
}

// --- GPU models -------------------------------------------------------------------

TEST(GpuTrainModelTest, StepComponentsPositive)
{
    GpuTrainModel gpu(rmConfig(5));
    const TrainStepBreakdown b = gpu.stepBreakdown();
    EXPECT_GT(b.mlp_seconds, 0);
    EXPECT_GT(b.interaction_seconds, 0);
    EXPECT_GT(b.embedding_seconds, 0);
    EXPECT_GT(b.fixed_seconds, 0);
    EXPECT_DOUBLE_EQ(1.0 / b.total(), gpu.maxThroughput());
}

TEST(GpuTrainModelTest, SmallModelTrainsFaster)
{
    EXPECT_GT(GpuTrainModel(rmConfig(1)).maxThroughput(),
              GpuTrainModel(rmConfig(5)).maxThroughput());
}

TEST(GpuTrainModelTest, EmbeddingBytesScaleWithSparsity)
{
    EXPECT_GT(GpuTrainModel(rmConfig(5)).embeddingGatherBytes(),
              GpuTrainModel(rmConfig(1)).embeddingGatherBytes() * 10);
}

TEST(GpuTrainModelTest, ForwardFlopsGrowWithTables)
{
    // More tables -> more pairwise interactions -> more FLOPs.
    EXPECT_GT(GpuTrainModel(rmConfig(3)).forwardFlops(),
              GpuTrainModel(rmConfig(2)).forwardFlops());
}

TEST(GpuPreprocModelTest, DispatchDominatedAndSlowerThanIsp)
{
    for (const auto& cfg : allRmConfigs()) {
        GpuPreprocModel gpu(cfg);
        IspDeviceModel ssd(IspParams::smartSsd(), cfg);
        EXPECT_GT(gpu.batchLatency().total(),
                  ssd.batchLatency().total())
            << cfg.name;
    }
}

TEST(GpuPreprocModelTest, ThroughputPositive)
{
    GpuPreprocModel gpu(rmConfig(2));
    EXPECT_GT(gpu.throughput(), 0);
    EXPECT_GT(gpu.watts(), 0);
}

// --- network model -------------------------------------------------------------------

TEST(NetworkModelTest, TransferTimeHasBandwidthAndRpcTerms)
{
    NetworkModel net(1e9, 1e-4, 1e6);
    // 10 MB -> 10 ms wire + 10 RPCs x 0.1 ms.
    EXPECT_NEAR(net.transferSeconds(10e6), 0.011, 1e-6);
}

TEST(NetworkModelTest, PrestoEliminatesRawInHop)
{
    const NetworkModel net = NetworkModel::datacenter();
    for (const auto& cfg : allRmConfigs()) {
        const RpcBreakdown d = net.disaggRpc(cfg);
        const RpcBreakdown p = net.prestoRpc(cfg);
        EXPECT_GT(d.raw_in_seconds, 0);
        EXPECT_DOUBLE_EQ(p.raw_in_seconds, 0);
        EXPECT_DOUBLE_EQ(d.tensors_out_seconds, p.tensors_out_seconds);
        EXPECT_GT(d.total(), p.total());
    }
}

TEST(NetworkModelDeathTest, BadParamsPanic)
{
    EXPECT_DEATH(NetworkModel(0, 0, 1), "positive");
}

// --- cost model ----------------------------------------------------------------------

TEST(CostModelTest, OpexMatchesHandComputation)
{
    Deployment d;
    d.power_watts = 1000.0;  // 1 kW
    d.duration_sec = kHour;  // 1 hour
    EXPECT_NEAR(d.opexDollars(0.10), 0.10, 1e-9);
}

TEST(CostModelTest, CpuDeploymentUsesWholeNodes)
{
    const Deployment d33 = makeCpuDeployment(33);
    EXPECT_DOUBLE_EQ(d33.capex_dollars, 2 * cal::kCpuNodeDollars);
    EXPECT_DOUBLE_EQ(d33.power_watts, 33 * cal::kCpuWattsPerCore);
    const Deployment d32 = makeCpuDeployment(32);
    EXPECT_DOUBLE_EQ(d32.capex_dollars, cal::kCpuNodeDollars);
}

TEST(CostModelTest, IspDeploymentScalesWithUnits)
{
    const Deployment d = makeIspDeployment(9, 20.0, 2200.0);
    EXPECT_DOUBLE_EQ(d.capex_dollars, 9 * 2200.0);
    EXPECT_DOUBLE_EQ(d.power_watts, 180.0);
    EXPECT_DOUBLE_EQ(d.duration_sec, cal::kDurationSec);
}

TEST(CostModelTest, EfficienciesScaleInversely)
{
    Deployment cheap = makeIspDeployment(1, 20.0, 1000.0);
    Deployment pricey = makeIspDeployment(1, 20.0, 2000.0);
    EXPECT_GT(costEfficiency(cheap, 10.0), costEfficiency(pricey, 10.0));

    Deployment low_power = makeIspDeployment(1, 10.0, 1000.0);
    Deployment high_power = makeIspDeployment(1, 100.0, 1000.0);
    EXPECT_NEAR(energyEfficiency(low_power, 10.0) /
                    energyEfficiency(high_power, 10.0),
                10.0, 1e-9);
}

TEST(CostModelTest, EnergyJoules)
{
    Deployment d;
    d.power_watts = 5.0;
    d.duration_sec = 10.0;
    EXPECT_DOUBLE_EQ(d.energyJoules(), 50.0);
}

// --- SSD model --------------------------------------------------------------------------

TEST(SsdModelTest, SequentialBandwidthInNvmeClass)
{
    SsdModel ssd;
    // A SmartSSD-class drive streams a few GB/s.
    EXPECT_GT(ssd.sequentialBandwidth(), 1.5e9);
    EXPECT_LT(ssd.sequentialBandwidth(), 8.0e9);
}

TEST(SsdModelTest, SequentialReadScalesWithBytes)
{
    SsdModel ssd;
    const double t1 = ssd.sequentialReadSeconds(10e6);
    const double t2 = ssd.sequentialReadSeconds(20e6);
    EXPECT_GT(t2, t1);
    // Doubling far above the pipeline-fill term ~doubles the time.
    EXPECT_NEAR((t2 - ssd.params().page_read_sec) /
                    (t1 - ssd.params().page_read_sec),
                2.0, 0.01);
    EXPECT_DOUBLE_EQ(ssd.sequentialReadSeconds(0), 0.0);
}

TEST(SsdModelTest, RandomReadsSlowerThanSequential)
{
    SsdModel ssd;
    const double bytes = 64e6;
    EXPECT_GE(ssd.randomReadSeconds(bytes, 4096, 1),
              ssd.sequentialReadSeconds(bytes));
    // Deep queues approach the bandwidth floor.
    EXPECT_LT(ssd.randomReadSeconds(bytes, 65536, 256),
              ssd.randomReadSeconds(bytes, 4096, 1));
}

TEST(SsdModelTest, QueueDepthHelpsUntilDiesSaturate)
{
    SsdModel ssd;
    const double bytes = 16e6;
    const double qd1 = ssd.randomReadSeconds(bytes, 4096, 1);
    const double qd8 = ssd.randomReadSeconds(bytes, 4096, 8);
    const double qd32 = ssd.randomReadSeconds(bytes, 4096, 32);
    EXPECT_GT(qd1, qd8);
    EXPECT_GE(qd8, qd32);
}

TEST(SsdModelTest, MoreChannelsMoreBandwidth)
{
    SsdParams narrow = SsdParams::smartSsdClass();
    narrow.channels = 4;
    SsdParams wide = SsdParams::smartSsdClass();
    wide.channels = 16;
    EXPECT_GT(SsdModel(wide).sequentialBandwidth(),
              SsdModel(narrow).sequentialBandwidth());
}

TEST(SsdModelTest, FewDiesExposeReadLatency)
{
    SsdParams starved = SsdParams::smartSsdClass();
    starved.dies_per_channel = 1;
    EXPECT_LT(SsdModel(starved).sequentialBandwidth(),
              SsdModel().sequentialBandwidth());
}

TEST(SsdModelDeathTest, BadParamsPanic)
{
    SsdParams bad = SsdParams::smartSsdClass();
    bad.channels = 0;
    EXPECT_DEATH(SsdModel{bad}, "positive");
    SsdModel ok;
    EXPECT_DEATH(ok.sequentialReadSeconds(-1), "negative");
    EXPECT_DEATH(ok.randomReadSeconds(1, 0), "request");
}

TEST(SsdModelTest, CalibrationConsistentWithDeliveryConstant)
{
    // The P2P delivery constant used by the ISP model should sit at or
    // below what the flash array can stream.
    SsdModel ssd;
    EXPECT_LE(cal::kSmartSsdP2pBytesPerSec,
              ssd.sequentialBandwidth() * 1.05);
}

// --- FPGA resources ---------------------------------------------------------------------

TEST(FpgaResourcesTest, RowsMatchTableTwoWithinTolerance)
{
    // Paper Table II percentages.
    const struct {
        const char* name;
        double lut, reg, bram, uram, dsp;
    } expected[] = {
        {"Decode", 18.84, 8.49, 25.08, 0.00, 0.00},
        {"Bucketize", 7.88, 4.28, 6.19, 27.59, 0.00},
        {"SigridHash", 23.11, 12.47, 11.89, 0.00, 19.19},
        {"Log", 4.18, 2.79, 4.89, 0.00, 10.62},
        {"Total", 54.02, 28.03, 48.05, 27.59, 29.81},
    };
    const auto rows = prestoAcceleratorUtilization();
    ASSERT_EQ(rows.size(), 5u);
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].name, expected[i].name);
        EXPECT_NEAR(rows[i].percent.lut, expected[i].lut, 0.1);
        EXPECT_NEAR(rows[i].percent.reg, expected[i].reg, 0.1);
        EXPECT_NEAR(rows[i].percent.bram, expected[i].bram, 0.1);
        EXPECT_NEAR(rows[i].percent.uram, expected[i].uram, 0.1);
        EXPECT_NEAR(rows[i].percent.dsp, expected[i].dsp, 0.1);
    }
}

TEST(FpgaResourcesTest, TotalIsSumOfUnits)
{
    const auto rows = prestoAcceleratorUtilization();
    FpgaResources sum;
    for (size_t i = 0; i + 1 < rows.size(); ++i)
        sum = sum + rows[i].absolute;
    const auto& total = rows.back().absolute;
    EXPECT_DOUBLE_EQ(sum.lut, total.lut);
    EXPECT_DOUBLE_EQ(sum.dsp, total.dsp);
}

TEST(FpgaResourcesTest, FitsOnFabric)
{
    const auto total = prestoAcceleratorUtilization().back().percent;
    EXPECT_LT(total.lut, 100.0);
    EXPECT_LT(total.reg, 100.0);
    EXPECT_LT(total.bram, 100.0);
    EXPECT_LT(total.uram, 100.0);
    EXPECT_LT(total.dsp, 100.0);
}

TEST(FpgaResourcesTest, ClockIs223Mhz)
{
    EXPECT_NEAR(prestoAcceleratorClockHz(), 223e6, 1e3);
}

TEST(FpgaResourcesTest, ArithmeticOperators)
{
    FpgaResources a{1, 2, 3, 4, 5};
    FpgaResources b = a * 2.0;
    EXPECT_DOUBLE_EQ(b.lut, 2);
    EXPECT_DOUBLE_EQ((a + b).dsp, 15);
    FpgaResources pct = a.percentOf({10, 10, 10, 10, 10});
    EXPECT_DOUBLE_EQ(pct.lut, 10.0);
    EXPECT_DOUBLE_EQ(pct.dsp, 50.0);
}

}  // namespace
}  // namespace presto
