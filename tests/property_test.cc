/**
 * @file
 * Property-based and model-based tests: randomized differential checks
 * of the bounded queue against a reference model, fuzzed decoding of
 * untrusted bytes, an oracle LRU cache, and a discrete-event
 * cross-validation of the ISP pipeline throughput model.
 */
#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <optional>

#include "cachesim/cache.h"
#include "columnar/columnar_file.h"
#include "columnar/encoding.h"
#include "columnar/page.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "core/isp_emulator.h"
#include "datagen/generator.h"
#include "models/isp_model.h"
#include "sim/sim_queue.h"
#include "sim/simulator.h"

namespace presto {
namespace {

// --- SimQueue vs a reference model ------------------------------------------------

/** Straight-line reference with the same contract as SimQueue<int>. */
class ReferenceQueue
{
  public:
    explicit ReferenceQueue(size_t capacity) : capacity_(capacity) {}

    /** @return items delivered to consumers as (consumer_arrival, item). */
    void
    push(int item)
    {
        if (!waiting_consumers_.empty()) {
            delivered_.emplace_back(waiting_consumers_.front(), item);
            waiting_consumers_.pop_front();
            ++accepted_;
            return;
        }
        if (items_.size() < capacity_) {
            items_.push_back(item);
            ++accepted_;
            return;
        }
        blocked_.push_back(item);
    }

    void
    pop(int consumer_tag)
    {
        if (!items_.empty()) {
            delivered_.emplace_back(consumer_tag, items_.front());
            items_.pop_front();
            if (!blocked_.empty()) {
                items_.push_back(blocked_.front());
                blocked_.pop_front();
                ++accepted_;
            }
            return;
        }
        waiting_consumers_.push_back(consumer_tag);
    }

    size_t capacity_;
    std::deque<int> items_;
    std::deque<int> blocked_;
    std::deque<int> waiting_consumers_;
    std::vector<std::pair<int, int>> delivered_;
    size_t accepted_ = 0;
};

class SimQueueFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SimQueueFuzz, MatchesReferenceModelUnderRandomOps)
{
    Rng rng(GetParam());
    const size_t capacity = 1 + rng.uniformInt(uint64_t{5});
    SimQueue<int> queue(capacity);
    ReferenceQueue reference(capacity);

    std::vector<std::pair<int, int>> delivered;
    size_t accepted = 0;
    int next_item = 0;
    int next_consumer = 0;

    for (int op = 0; op < 500; ++op) {
        if (rng.bernoulli(0.55)) {
            const int item = next_item++;
            queue.push(item, [&] { ++accepted; });
            reference.push(item);
        } else {
            const int tag = next_consumer++;
            queue.pop([&, tag](int item) {
                delivered.emplace_back(tag, item);
            });
            reference.pop(tag);
        }
        ASSERT_EQ(queue.size(), reference.items_.size());
        ASSERT_EQ(queue.waitingProducers(), reference.blocked_.size());
        ASSERT_EQ(queue.waitingConsumers(),
                  reference.waiting_consumers_.size());
        ASSERT_EQ(accepted, reference.accepted_);
        ASSERT_EQ(delivered, reference.delivered_);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimQueueFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- fuzzed decoding of untrusted bytes ---------------------------------------------

class DecodeFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DecodeFuzz, RandomBytesNeverCrashVarint)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<uint8_t> bytes(rng.uniformInt(uint64_t{32}));
        for (auto& b : bytes)
            b = static_cast<uint8_t>(rng.next());
        size_t pos = 0;
        uint64_t value = 0;
        const Status st = enc::getVarint(bytes, pos, value);
        if (st.ok()) {
            EXPECT_LE(pos, bytes.size());
        } else {
            EXPECT_EQ(st.code(), StatusCode::kCorruption);
        }
    }
}

TEST_P(DecodeFuzz, RandomBytesNeverCrashIntDecoders)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<uint8_t> bytes(rng.uniformInt(uint64_t{200}));
        for (auto& b : bytes)
            b = static_cast<uint8_t>(rng.next());
        const auto encoding = static_cast<Encoding>(
            1 + rng.uniformInt(uint64_t{6}));  // any int encoding
        const size_t count = rng.uniformInt(uint64_t{64});
        std::vector<int64_t> out;
        // Must return a Status (ok or corruption), never crash or hang.
        (void)enc::decodeI64(encoding, bytes, count, out);
        EXPECT_LE(out.size(), count);
    }
}

TEST_P(DecodeFuzz, RandomBytesNeverCrashPageReader)
{
    Rng rng(GetParam() ^ 0xfeed);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<uint8_t> bytes(rng.uniformInt(uint64_t{64}));
        for (auto& b : bytes)
            b = static_cast<uint8_t>(rng.next());
        size_t pos = 0;
        PageView page;
        const Status st = readPageFrame(bytes, pos, page);
        // A 13+-byte random frame passing a CRC32C check is ~2^-32.
        EXPECT_FALSE(st.ok());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Values(11, 22, 33));

// --- single-bit-flip corruption of encoded PSF partitions ---------------------------

/**
 * Flipping any one bit of an encoded partition must never crash a
 * reader and must never silently change the decoded data: every read
 * either fails with kCorruption or yields output identical to the
 * pristine reference (a flip can land in slack bytes the decode never
 * consumes).
 */
class BitFlipCorruption : public ::testing::TestWithParam<int>
{
};

TEST_P(BitFlipCorruption, ReaderNeverReturnsWrongData)
{
    RmConfig cfg = rmConfig(GetParam());
    cfg.batch_size = 64;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(7);
    const auto pristine = ColumnarFileWriter().write(raw, 7);

    FaultSpec spec;
    spec.corruption_prob = 1.0;  // activate the injector
    const FaultInjector injector(spec);

    size_t detected = 0, benign = 0;
    for (uint64_t trial = 0; trial < 200; ++trial) {
        auto corrupted = pristine;
        injector.corruptBytes(corrupted, 7, trial);
        ASSERT_NE(corrupted, pristine);

        ColumnarFileReader reader;
        Status st = reader.open(corrupted);
        StatusOr<RowBatch> decoded =
            st.ok() ? reader.readAll() : StatusOr<RowBatch>(st);
        if (!decoded.ok()) {
            EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
                << "trial " << trial << ": "
                << decoded.status().toString();
            ++detected;
        } else {
            EXPECT_TRUE(*decoded == raw)
                << "trial " << trial << " silently decoded wrong data";
            ++benign;
        }
    }
    // CRC framing must catch the overwhelming majority of flips.
    EXPECT_GT(detected, benign);
}

TEST_P(BitFlipCorruption, IspEmulatorNeverReturnsWrongData)
{
    RmConfig cfg = rmConfig(GetParam());
    cfg.batch_size = 64;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(3);
    const auto pristine = ColumnarFileWriter().write(raw, 3);
    const MiniBatch reference = Preprocessor(cfg).preprocess(raw);

    FaultSpec spec;
    spec.corruption_prob = 1.0;
    const FaultInjector injector(spec);

    IspEmulator emulator(cfg);
    for (uint64_t trial = 0; trial < 100; ++trial) {
        auto corrupted = pristine;
        injector.corruptBytes(corrupted, 3, trial);
        const auto processed = emulator.process(corrupted);
        if (!processed.ok()) {
            EXPECT_EQ(processed.status().code(), StatusCode::kCorruption)
                << "trial " << trial;
        } else {
            EXPECT_EQ(processed->dense, reference.dense);
            EXPECT_EQ(processed->labels, reference.labels);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, BitFlipCorruption,
                         ::testing::Values(1, 2, 5));

/**
 * Corruption inside a *compressed* page payload must be caught by the
 * page CRC — which covers the stored (compressed) bytes — before the
 * decompressor ever runs. The returned status message proves which
 * check fired: frame-level "page checksum mismatch", never an "lz: ..."
 * decompressor error.
 */
TEST(CompressedPageCorruption, CrcFiresBeforeDecompress)
{
    RmConfig cfg = rmConfig(2);
    cfg.batch_size = 256;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(5);
    const auto pristine = ColumnarFileWriter().write(raw, 5);

    // Locate every compressed page's stored payload in the file.
    ColumnarFileReader meta_reader;
    ASSERT_TRUE(meta_reader.open(pristine).ok());
    struct Region {
        size_t begin, size;
    };
    std::vector<Region> payloads;
    for (const auto& col : meta_reader.footer().columns) {
        for (const auto& stream : col.streams) {
            const std::span<const uint8_t> bytes(
                pristine.data() + stream.offset, stream.byte_size);
            size_t pos = 0;
            for (uint32_t p = 0; p < stream.num_pages; ++p) {
                PageView page;
                ASSERT_TRUE(readPageFrame(bytes, pos, page).ok());
                if (page.codec != PageCodec::kNone)
                    payloads.push_back(
                        {static_cast<size_t>(page.payload.data() -
                                             pristine.data()),
                         page.payload.size()});
            }
        }
    }
    ASSERT_FALSE(payloads.empty())
        << "no page compressed; corruption test is vacuous";

    Rng rng(404);
    int trials = 0;
    for (const auto& region : payloads) {
        for (int flip = 0; flip < 8; ++flip, ++trials) {
            auto corrupted = pristine;
            const size_t byte =
                region.begin + rng.uniformInt(region.size);
            corrupted[byte] ^= static_cast<uint8_t>(
                1u << rng.uniformInt(uint64_t{8}));

            ColumnarFileReader reader;
            Status st = reader.open(corrupted);
            StatusOr<RowBatch> decoded =
                st.ok() ? reader.readAll() : StatusOr<RowBatch>(st);
            ASSERT_FALSE(decoded.ok())
                << "payload flip in trial " << trials
                << " escaped detection";
            EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
            EXPECT_NE(decoded.status().toString().find(
                          "page checksum mismatch"),
                      std::string::npos)
                << "trial " << trials << " failed past the CRC: "
                << decoded.status().toString();
        }
    }
}

// --- CacheSim vs oracle LRU ------------------------------------------------------------

/** Naive fully-associative LRU oracle. */
class OracleLru
{
  public:
    OracleLru(size_t lines, uint64_t line_bytes)
        : lines_(lines), line_bytes_(line_bytes)
    {}

    bool
    access(uint64_t addr)
    {
        const uint64_t tag = addr / line_bytes_;
        for (auto it = order_.begin(); it != order_.end(); ++it) {
            if (*it == tag) {
                order_.erase(it);
                order_.push_front(tag);
                return true;
            }
        }
        order_.push_front(tag);
        if (order_.size() > lines_)
            order_.pop_back();
        return false;
    }

  private:
    size_t lines_;
    uint64_t line_bytes_;
    std::list<uint64_t> order_;
};

TEST(CacheOracleTest, SingleSetConfigMatchesFullyAssociativeLru)
{
    // num_sets == 1 makes the simulator fully associative.
    CacheConfig cfg;
    cfg.line_bytes = 64;
    cfg.ways = 8;
    cfg.size_bytes = 64 * 8;  // exactly one set
    CacheSim sim(cfg);
    OracleLru oracle(8, 64);

    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        // Working set of ~24 lines forces constant eviction.
        const uint64_t addr = rng.uniformInt(uint64_t{24}) * 64 +
                              rng.uniformInt(uint64_t{64});
        ASSERT_EQ(sim.access(addr, false), oracle.access(addr))
            << "divergence at access " << i;
    }
}

// --- DES cross-validation of the ISP throughput model ------------------------------------

/**
 * Simulates the accelerator as a chain of stage resources fed by
 * batch_concurrency independent streams, with the raw-data delivery path
 * (SSD P2P) shared serially across streams, and returns the sustained
 * batches/second. Used to cross-validate the closed-form
 * IspDeviceModel::throughput().
 */
double
simulateIspThroughput(const IspDeviceModel& device, int batches)
{
    const LatencyBreakdown lat = device.batchLatency();
    const auto& p = device.params();

    // Per-stream stage service times mirroring the model's stages:
    // decode, transform (gen+norm), convert, kernel-invoke overhead.
    const double stages[4] = {
        lat.extract_decode,
        lat.bucketize + lat.sigrid_hash + lat.log,
        lat.other - p.fixed_sec_per_batch,
        p.fixed_sec_per_batch,
    };
    const double per_batch_delivery = device.deliverSeconds();

    struct Stream {
        double stage_free[4] = {0, 0, 0, 0};
    };
    std::vector<Stream> streams(
        static_cast<size_t>(p.batch_concurrency));
    double delivery_free_at = 0.0;
    double finish_time = 0.0;

    for (int b = 0; b < batches; ++b) {
        Stream& s = streams[static_cast<size_t>(b) % streams.size()];
        // Delivery is a shared serial resource; a stream only requests
        // the next batch once its decode stage has drained the previous
        // one (double buffering depth 1).
        delivery_free_at = std::max(delivery_free_at, s.stage_free[0]) +
                           per_batch_delivery;
        double t = delivery_free_at;
        for (int stage = 0; stage < 4; ++stage) {
            t = std::max(t, s.stage_free[stage]) + stages[stage];
            s.stage_free[stage] = t;
        }
        finish_time = std::max(finish_time, t);
    }
    return batches / finish_time;
}

TEST(IspDesValidationTest, ClosedFormThroughputMatchesPipelineSimulation)
{
    for (int rm : {1, 3, 5}) {
        IspDeviceModel device(IspParams::smartSsd(), rmConfig(rm));
        const double simulated = simulateIspThroughput(device, 2000);
        const double closed = device.throughput();
        EXPECT_NEAR(simulated / closed, 1.0, 0.25)
            << "RM" << rm << ": simulated " << simulated << " vs closed "
            << closed;
    }
}

}  // namespace
}  // namespace presto
