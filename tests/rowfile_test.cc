/**
 * @file
 * Tests for the row-oriented (RSF) baseline format and the dataset
 * directory (manifest + partitions).
 */
#include <gtest/gtest.h>

#include <filesystem>

#include "columnar/columnar_file.h"
#include "columnar/dataset.h"
#include "columnar/row_file.h"
#include "datagen/generator.h"

namespace presto {
namespace {

RowBatch
smallBatch(int rm, size_t rows, uint64_t partition = 0)
{
    RmConfig cfg = rmConfig(rm);
    cfg.batch_size = rows;
    RawDataGenerator gen(cfg);
    return gen.generatePartition(partition);
}

// --- RowFile -------------------------------------------------------------------

class RowFileRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(RowFileRoundTrip, ReadAllRecoversBatch)
{
    const RowBatch batch = smallBatch(GetParam(), 150);
    const auto bytes = RowFileWriter().write(batch, 9);
    RowFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    EXPECT_EQ(reader.numRows(), 150u);
    EXPECT_EQ(reader.partitionId(), 9u);
    EXPECT_EQ(reader.schema(), batch.schema());
    auto out = reader.readAll();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, batch);
}

INSTANTIATE_TEST_SUITE_P(Workloads, RowFileRoundTrip,
                         ::testing::Values(1, 2, 5));

TEST(RowFileTest, ProjectionMatchesColumnarContent)
{
    const RowBatch batch = smallBatch(1, 80);
    const auto rsf = RowFileWriter().write(batch, 0);
    const auto psf = ColumnarFileWriter().write(batch, 0);

    const std::vector<std::string> names = {"dense_2", "sparse_5"};
    RowFileReader row_reader;
    ASSERT_TRUE(row_reader.open(rsf).ok());
    auto from_row = row_reader.readColumns(names);
    ASSERT_TRUE(from_row.ok());

    ColumnarFileReader col_reader;
    ASSERT_TRUE(col_reader.open(psf).ok());
    auto from_col = col_reader.readColumns(names);
    ASSERT_TRUE(from_col.ok());

    EXPECT_EQ(*from_row, *from_col);
}

TEST(RowFileTest, AnyProjectionTouchesWholeRecordRegion)
{
    const RowBatch batch = smallBatch(2, 100);
    const auto bytes = RowFileWriter().write(batch, 0);

    RowFileReader one_col;
    ASSERT_TRUE(one_col.open(bytes).ok());
    ASSERT_TRUE(one_col.readColumns({"dense_0"}).ok());

    RowFileReader all_cols;
    ASSERT_TRUE(all_cols.open(bytes).ok());
    ASSERT_TRUE(all_cols.readAll().ok());

    // Overfetch: scanning one column costs the same as scanning all.
    EXPECT_EQ(one_col.bytesTouched(), all_cols.bytesTouched());
    EXPECT_GT(one_col.bytesTouched(), bytes.size() * 9 / 10);
}

TEST(RowFileTest, UnknownFeatureIsNotFound)
{
    const auto bytes = RowFileWriter().write(smallBatch(1, 10), 0);
    RowFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    EXPECT_EQ(reader.readColumns({"missing"}).status().code(),
              StatusCode::kNotFound);
}

TEST(RowFileTest, MagicAndFooterCorruptionDetected)
{
    const auto bytes = RowFileWriter().write(smallBatch(1, 10), 0);
    for (size_t pos : {size_t{0}, bytes.size() - 1, bytes.size() - 10}) {
        auto corrupted = bytes;
        corrupted[pos] ^= 0x20;
        RowFileReader reader;
        EXPECT_FALSE(reader.open(corrupted).ok()) << "flip at " << pos;
    }
}

TEST(RowFileTest, ReadBeforeOpenFails)
{
    RowFileReader reader;
    EXPECT_EQ(reader.readAll().status().code(),
              StatusCode::kFailedPrecondition);
}

TEST(RowFileTest, RowFormatBiggerOrSimilarButNeverSelective)
{
    // Columnar wins on selective reads even when total sizes are close.
    const RowBatch batch = smallBatch(5, 200);
    const auto rsf = RowFileWriter().write(batch, 0);
    const auto psf = ColumnarFileWriter().write(batch, 0);
    ColumnarFileReader col_reader;
    ASSERT_TRUE(col_reader.open(psf).ok());
    ASSERT_TRUE(col_reader.readColumns({"dense_0"}).ok());
    EXPECT_LT(col_reader.bytesTouched() * 10, rsf.size());
}

// --- Dataset --------------------------------------------------------------------

std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

TEST(DatasetTest, WriteAndReadBack)
{
    const std::string dir = freshDir("dataset_roundtrip");
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 64;
    RawDataGenerator gen(cfg);

    DatasetWriter writer(dir);
    for (uint64_t p = 0; p < 3; ++p)
        ASSERT_TRUE(writer.addPartition(gen.generatePartition(p), p).ok());
    ASSERT_TRUE(writer.finish().ok());

    DatasetReader reader;
    ASSERT_TRUE(reader.open(dir).ok());
    EXPECT_EQ(reader.manifest().num_partitions, 3u);
    EXPECT_EQ(reader.manifest().rows_per_partition, 64u);
    for (size_t i = 0; i < 3; ++i) {
        auto batch = reader.readPartition(i);
        ASSERT_TRUE(batch.ok());
        EXPECT_EQ(*batch, gen.generatePartition(i));
    }
}

TEST(DatasetTest, RejectsDuplicateAndUnevenPartitions)
{
    const std::string dir = freshDir("dataset_invalid");
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 32;
    RawDataGenerator gen(cfg);
    DatasetWriter writer(dir);
    ASSERT_TRUE(writer.addPartition(gen.generatePartition(0), 0).ok());
    EXPECT_EQ(writer.addPartition(gen.generatePartition(1), 0).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(writer
                  .addPartition(gen.generatePartition(1, 16), 1)
                  .code(),
              StatusCode::kInvalidArgument);
}

TEST(DatasetTest, FinishIsOneShot)
{
    const std::string dir = freshDir("dataset_finish");
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 16;
    RawDataGenerator gen(cfg);
    DatasetWriter writer(dir);
    ASSERT_TRUE(writer.addPartition(gen.generatePartition(0), 0).ok());
    ASSERT_TRUE(writer.finish().ok());
    EXPECT_EQ(writer.finish().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(writer.addPartition(gen.generatePartition(1), 1).code(),
              StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, DetectsTamperedPartitionFile)
{
    const std::string dir = freshDir("dataset_tamper");
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 32;
    RawDataGenerator gen(cfg);
    DatasetWriter writer(dir);
    ASSERT_TRUE(writer.addPartition(gen.generatePartition(0), 0).ok());
    ASSERT_TRUE(writer.finish().ok());

    DatasetReader reader;
    ASSERT_TRUE(reader.open(dir).ok());
    const std::string part_path =
        dir + "/" + reader.manifest().partitions[0].file_name;
    auto bytes = loadFromFile(part_path);
    ASSERT_TRUE(bytes.ok());
    (*bytes)[bytes->size() / 2] ^= 0x04;
    ASSERT_TRUE(saveToFile(part_path, *bytes).ok());

    EXPECT_EQ(reader.readPartition(0).status().code(),
              StatusCode::kCorruption);
}

TEST(DatasetTest, MissingManifestIsNotFound)
{
    const std::string dir = freshDir("dataset_empty");
    DatasetReader reader;
    EXPECT_EQ(reader.open(dir).code(), StatusCode::kNotFound);
}

TEST(DatasetTest, OutOfRangePartitionIndex)
{
    const std::string dir = freshDir("dataset_range");
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 16;
    RawDataGenerator gen(cfg);
    DatasetWriter writer(dir);
    ASSERT_TRUE(writer.addPartition(gen.generatePartition(0), 0).ok());
    ASSERT_TRUE(writer.finish().ok());
    DatasetReader reader;
    ASSERT_TRUE(reader.open(dir).ok());
    EXPECT_EQ(reader.readPartition(5).status().code(),
              StatusCode::kOutOfRange);
}

TEST(DatasetTest, CorruptManifestDetected)
{
    const std::string dir = freshDir("dataset_badmanifest");
    const std::string text = "NOTADATASET 1 0 0\n";
    ASSERT_TRUE(saveToFile(dir + "/MANIFEST",
                           std::span<const uint8_t>(
                               reinterpret_cast<const uint8_t*>(
                                   text.data()),
                               text.size()))
                    .ok());
    DatasetReader reader;
    EXPECT_EQ(reader.open(dir).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace presto
