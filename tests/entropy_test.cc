/**
 * @file
 * Adversarial suite for the canonical-Huffman entropy codec
 * (columnar/entropy.h), its integration into the page-frame codec menu
 * (kEntropy / kLzEntropy), and the footer heat metadata that drives
 * frequency-aware channel placement.
 *
 * Contracts under test:
 *  - huffCompress/huffDecompress round-trip exactly on every byte
 *    distribution, including adversarially skewed histograms;
 *  - every malformed stream — truncations, table mutations, trailing
 *    bytes, non-zero padding — is rejected with kCorruption, even when
 *    the enclosing page frame's CRC is recomputed to be valid;
 *  - the codec-menu writer stores the strictly smallest frame and falls
 *    back to the byte-identical plain frame (on-disk parity with
 *    pre-codec files) when nothing shrinks;
 *  - whole files written plain, LZ-only, and full-menu decode to
 *    bit-identical batches through every read path;
 *  - assignChannelPlacement stripes hot streams round-robin and keeps
 *    cold streams channel-contiguous.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "columnar/columnar_file.h"
#include "columnar/compress.h"
#include "columnar/encoding.h"
#include "columnar/entropy.h"
#include "columnar/page.h"
#include "common/crc32.h"

namespace presto {
namespace {

// --- byte material ---------------------------------------------------------

enum class Dist {
    kEmpty,
    kSingleSymbol,
    kTwoEqual,
    kTwoSkewed,     ///< 99:1 two-symbol split
    kGeometric,     ///< P(s) halves per symbol: deep unbalanced tree
    kFibonacci,     ///< Fibonacci weights: worst case for code length
    kAllBytes,      ///< all 256 symbols near-uniform
    kTextish,
    kRandom,
};

const std::vector<Dist> kDists{
    Dist::kEmpty,    Dist::kSingleSymbol, Dist::kTwoEqual,
    Dist::kTwoSkewed, Dist::kGeometric,   Dist::kFibonacci,
    Dist::kAllBytes, Dist::kTextish,      Dist::kRandom};

const char*
distName(Dist d)
{
    switch (d) {
      case Dist::kEmpty: return "empty";
      case Dist::kSingleSymbol: return "single-symbol";
      case Dist::kTwoEqual: return "two-equal";
      case Dist::kTwoSkewed: return "two-skewed";
      case Dist::kGeometric: return "geometric";
      case Dist::kFibonacci: return "fibonacci";
      case Dist::kAllBytes: return "all-bytes";
      case Dist::kTextish: return "textish";
      case Dist::kRandom: return "random";
    }
    return "?";
}

std::vector<uint8_t>
makeDist(Dist d, size_t n, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<uint8_t> v(n);
    switch (d) {
      case Dist::kEmpty:
        v.clear();
        break;
      case Dist::kSingleSymbol:
        std::fill(v.begin(), v.end(), uint8_t{0xa5});
        break;
      case Dist::kTwoEqual:
        for (auto& b : v)
            b = (rng() & 1) ? 0x00 : 0xff;
        break;
      case Dist::kTwoSkewed:
        for (auto& b : v)
            b = (rng() % 100 == 0) ? 0x7f : 0x01;
        break;
      case Dist::kGeometric:
        // Symbol s with probability ~2^-(s+1), spread over the whole
        // byte range so LZ finds few matches but entropy coding wins.
        for (auto& b : v) {
            uint64_t r = rng();
            uint8_t s = 0;
            while (s < 40 && (r & 1)) {
                r >>= 1;
                ++s;
            }
            b = static_cast<uint8_t>(s * 37 + (rng() % 7));
        }
        break;
      case Dist::kFibonacci: {
        // Draw symbols with Fibonacci-like weights: the unlimited
        // Huffman tree wants codes far deeper than kMaxHuffCodeLen,
        // forcing package-merge to length-limit while staying
        // Kraft-complete.
        std::vector<uint64_t> w{1, 1};
        while (w.size() < 24)
            w.push_back(w[w.size() - 1] + w[w.size() - 2]);
        const uint64_t total =
            std::accumulate(w.begin(), w.end(), uint64_t{0});
        for (auto& b : v) {
            uint64_t r = rng() % total;
            uint8_t s = 0;
            while (r >= w[s]) {
                r -= w[s];
                ++s;
            }
            b = static_cast<uint8_t>(s * 11);
        }
        break;
      }
      case Dist::kAllBytes:
        for (size_t i = 0; i < n; ++i)
            v[i] = static_cast<uint8_t>(i + rng() % 3);
        break;
      case Dist::kTextish: {
        static const char words[] =
            "the quick brown fox jumps over lazy dogs again and again ";
        for (size_t i = 0; i < n; ++i)
            v[i] = static_cast<uint8_t>(
                words[(i + (i / 577) * 13) % (sizeof(words) - 1)]);
        break;
      }
      case Dist::kRandom:
        for (auto& b : v)
            b = static_cast<uint8_t>(rng());
        break;
    }
    return v;
}

// --- round trips -----------------------------------------------------------

TEST(HuffRoundTripTest, AllDistributionsAndSizes)
{
    const std::vector<size_t> sizes{0,   1,    2,    3,    7,    8,
                                    63,  255,  256,  1021, 4096, 65536};
    for (Dist d : kDists) {
        for (size_t n : sizes) {
            const auto raw = makeDist(d, n, n * 131 + 7);
            const auto packed = enc::huffCompress(raw);
            ASSERT_FALSE(packed.empty());

            HuffStreamInfo info;
            ASSERT_TRUE(enc::huffStreamInfo(packed, info).ok())
                << distName(d) << " n=" << n;
            EXPECT_EQ(info.raw_bytes, raw.size());
            EXPECT_LE(info.header_bytes, packed.size());

            std::vector<uint8_t> out(raw.size());
            ASSERT_TRUE(enc::huffDecompress(packed, out).ok())
                << distName(d) << " n=" << n;
            EXPECT_EQ(out, raw) << distName(d) << " n=" << n;
        }
    }
}

TEST(HuffRoundTripTest, OutputBufferReusedAcrossCalls)
{
    std::vector<uint8_t> packed;
    for (int i = 0; i < 4; ++i) {
        const auto raw =
            makeDist(kDists[i % kDists.size()], 4096, 17 + i);
        enc::huffCompress(raw, packed);
        std::vector<uint8_t> out(raw.size());
        ASSERT_TRUE(enc::huffDecompress(packed, out).ok());
        EXPECT_EQ(out, raw);
    }
}

TEST(HuffRoundTripTest, SingleSymbolRunsUseCompactMode)
{
    const auto raw = makeDist(Dist::kSingleSymbol, 65536, 1);
    const auto packed = enc::huffCompress(raw);
    HuffStreamInfo info;
    ASSERT_TRUE(enc::huffStreamInfo(packed, info).ok());
    EXPECT_EQ(info.mode, 1);
    EXPECT_EQ(info.table_bytes, 0u);
    // varint + mode + symbol: nothing else.
    EXPECT_LE(packed.size(), size_t{12});
    std::vector<uint8_t> out(raw.size());
    ASSERT_TRUE(enc::huffDecompress(packed, out).ok());
    EXPECT_EQ(out, raw);
}

TEST(HuffRoundTripTest, SkewedHistogramsBeatRawSize)
{
    // The codec exists for exactly these shapes: compressed size
    // (including the 130-byte header) must come in under raw.
    for (Dist d : {Dist::kTwoSkewed, Dist::kGeometric, Dist::kFibonacci,
                   Dist::kTextish}) {
        const auto raw = makeDist(d, 65536, 3);
        const auto packed = enc::huffCompress(raw);
        EXPECT_LT(packed.size(), raw.size()) << distName(d);
    }
}

TEST(HuffRoundTripTest, RandomFuzzRoundTrips)
{
    std::mt19937_64 rng(99);
    for (int iter = 0; iter < 300; ++iter) {
        const Dist d = kDists[rng() % kDists.size()];
        const auto raw = makeDist(d, rng() % 5000, rng());
        const auto packed = enc::huffCompress(raw);
        std::vector<uint8_t> out(raw.size());
        ASSERT_TRUE(enc::huffDecompress(packed, out).ok())
            << distName(d) << " iter " << iter;
        EXPECT_EQ(out, raw) << distName(d) << " iter " << iter;
    }
}

// --- rejection of malformed streams ----------------------------------------

TEST(HuffRejectTest, EveryTruncationRejected)
{
    for (Dist d :
         {Dist::kSingleSymbol, Dist::kGeometric, Dist::kTextish}) {
        const auto raw = makeDist(d, 2048, 5);
        const auto packed = enc::huffCompress(raw);
        std::vector<uint8_t> out(raw.size());
        for (size_t keep = 0; keep < packed.size(); ++keep) {
            const std::span<const uint8_t> prefix(packed.data(), keep);
            EXPECT_EQ(enc::huffDecompress(prefix, out).code(),
                      StatusCode::kCorruption)
                << distName(d) << " prefix of " << keep << " bytes";
        }
    }
}

TEST(HuffRejectTest, WrongAdvertisedSizeRejected)
{
    const auto raw = makeDist(Dist::kGeometric, 1024, 6);
    const auto packed = enc::huffCompress(raw);
    for (size_t wrong : {size_t{0}, raw.size() - 1, raw.size() + 1}) {
        std::vector<uint8_t> out(wrong);
        EXPECT_EQ(enc::huffDecompress(packed, out).code(),
                  StatusCode::kCorruption)
            << "out size " << wrong;
    }
}

TEST(HuffRejectTest, AnyTableNibbleMutationRejected)
{
    // Changing any single code-length nibble breaks Kraft completeness
    // (the scaled per-length weights are distinct powers of two) or
    // exceeds kMaxHuffCodeLen — either way the decoder must refuse
    // before emitting a byte.
    const auto raw = makeDist(Dist::kGeometric, 4096, 8);
    auto packed = enc::huffCompress(raw);
    HuffStreamInfo info;
    ASSERT_TRUE(enc::huffStreamInfo(packed, info).ok());
    ASSERT_EQ(info.mode, 0);
    ASSERT_GT(info.table_bytes, 0u);
    const size_t table_at = info.header_bytes - info.table_bytes;

    std::vector<uint8_t> out(raw.size());
    ASSERT_TRUE(enc::huffDecompress(packed, out).ok());  // control

    for (size_t i = 0; i < info.table_bytes; ++i) {
        for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x10}}) {
            packed[table_at + i] ^= mask;
            EXPECT_EQ(enc::huffDecompress(packed, out).code(),
                      StatusCode::kCorruption)
                << "table byte " << i << " mask " << int{mask};
            packed[table_at + i] ^= mask;
        }
    }
    ASSERT_TRUE(enc::huffDecompress(packed, out).ok());  // still intact
}

TEST(HuffRejectTest, TrailingBytesRejected)
{
    for (Dist d : {Dist::kSingleSymbol, Dist::kGeometric}) {
        const auto raw = makeDist(d, 512, 9);
        auto packed = enc::huffCompress(raw);
        packed.push_back(0x00);
        std::vector<uint8_t> out(raw.size());
        EXPECT_EQ(enc::huffDecompress(packed, out).code(),
                  StatusCode::kCorruption)
            << distName(d);
    }
}

TEST(HuffRejectTest, NonZeroPaddingRejected)
{
    // Two equally likely symbols give 1-bit codes; 9 bytes -> 9 bits ->
    // 2 bitstream bytes with 7 pad bits that must be zero.
    std::vector<uint8_t> raw(9);
    for (size_t i = 0; i < raw.size(); ++i)
        raw[i] = (i & 1) ? 0xff : 0x00;
    auto packed = enc::huffCompress(raw);
    std::vector<uint8_t> out(raw.size());
    ASSERT_TRUE(enc::huffDecompress(packed, out).ok());
    packed.back() |= 0x80;
    EXPECT_EQ(enc::huffDecompress(packed, out).code(),
              StatusCode::kCorruption);
}

TEST(HuffRejectTest, GarbageNeverCrashes)
{
    std::mt19937_64 rng(21);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<uint8_t> garbage(rng() % 600);
        for (auto& b : garbage)
            b = static_cast<uint8_t>(rng());
        std::vector<uint8_t> out(rng() % 2048);
        (void)enc::huffDecompress(garbage, out);  // must not crash/UB
    }
}

// --- page-frame integration ------------------------------------------------

TEST(EntropyPageTest, FullMenuStoresTheStrictlySmallestFrame)
{
    for (Dist d : kDists) {
        const auto payload = makeDist(d, 32768, 13);
        if (payload.empty())
            continue;
        const auto n = static_cast<uint32_t>(payload.size() / 8);

        std::vector<uint8_t> plain, lz_only, entropy_only, full;
        writePageFrame(plain, Encoding::kPlainI64, n, payload);
        writePageFrame(lz_only, Encoding::kPlainI64, n, payload,
                       PageCodec::kLz);
        writePageFrame(entropy_only, Encoding::kPlainI64, n, payload,
                       PageCodec::kEntropy);
        const PageCodec stored = writePageFrame(
            full, Encoding::kPlainI64, n, payload, PageCodec::kLzEntropy);

        // The full menu can never lose to any restricted menu.
        EXPECT_LE(full.size(), plain.size()) << distName(d);
        EXPECT_LE(full.size(), lz_only.size()) << distName(d);
        EXPECT_LE(full.size(), entropy_only.size()) << distName(d);

        size_t pos = 0;
        PageView page;
        ASSERT_TRUE(readPageFrame(full, pos, page).ok()) << distName(d);
        EXPECT_EQ(page.codec, stored);
        std::vector<uint8_t> scratch;
        std::span<const uint8_t> got;
        ASSERT_TRUE(pagePayload(page, scratch, got).ok()) << distName(d);
        ASSERT_EQ(got.size(), payload.size()) << distName(d);
        EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()))
            << distName(d);
    }
}

TEST(EntropyPageTest, SkewedPagesPickAnEntropyCodec)
{
    // An i.i.d. geometric byte stream has almost no LZ matches but a
    // heavily skewed histogram: the winning frame must involve entropy
    // coding, and must be materially smaller than LZ alone managed.
    const auto payload = makeDist(Dist::kGeometric, 65536, 29);
    const auto n = static_cast<uint32_t>(payload.size() / 8);
    std::vector<uint8_t> lz_only, full;
    writePageFrame(lz_only, Encoding::kPlainI64, n, payload,
                   PageCodec::kLz);
    const PageCodec stored = writePageFrame(
        full, Encoding::kPlainI64, n, payload, PageCodec::kLzEntropy);
    EXPECT_TRUE(stored == PageCodec::kEntropy ||
                stored == PageCodec::kLzEntropy)
        << pageCodecName(stored);
    EXPECT_LT(full.size(), lz_only.size());
}

TEST(EntropyPageTest, LzEntropyCompoundsOnRedundantSkewedData)
{
    // Textish bytes shrink under LZ and the residual literal stream is
    // still letter-skewed, so lz+entropy beats either codec alone.
    const auto payload = makeDist(Dist::kTextish, 65536, 31);
    const auto n = static_cast<uint32_t>(payload.size() / 8);
    std::vector<uint8_t> lz_only, entropy_only, full;
    writePageFrame(lz_only, Encoding::kPlainI64, n, payload,
                   PageCodec::kLz);
    writePageFrame(entropy_only, Encoding::kPlainI64, n, payload,
                   PageCodec::kEntropy);
    const PageCodec stored = writePageFrame(
        full, Encoding::kPlainI64, n, payload, PageCodec::kLzEntropy);
    EXPECT_EQ(stored, PageCodec::kLzEntropy);
    EXPECT_LT(full.size(), lz_only.size());
    EXPECT_LT(full.size(), entropy_only.size());

    size_t pos = 0;
    PageView page;
    ASSERT_TRUE(readPageFrame(full, pos, page).ok());
    std::vector<uint8_t> scratch;
    std::span<const uint8_t> got;
    ASSERT_TRUE(pagePayload(page, scratch, got).ok());
    ASSERT_EQ(got.size(), payload.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
}

TEST(EntropyPageTest, IncompressiblePageParityWithPlainWriter)
{
    // When nothing in the menu shrinks the page, the stored frame must
    // be byte-identical to the codec-free writer's — zero overhead, so
    // full-menu files of incompressible data match pre-codec files
    // on disk exactly.
    const auto payload = makeDist(Dist::kRandom, 32768, 37);
    const auto n = static_cast<uint32_t>(payload.size() / 8);
    std::vector<uint8_t> with_menu, plain;
    const PageCodec stored = writePageFrame(
        with_menu, Encoding::kPlainI64, n, payload, PageCodec::kLzEntropy);
    writePageFrame(plain, Encoding::kPlainI64, n, payload);
    EXPECT_EQ(stored, PageCodec::kNone);
    EXPECT_EQ(with_menu, plain);
}

TEST(EntropyPageTest, MutatedTableBehindRecomputedCrcRejected)
{
    // A storage-level attacker (or firmware bug) that rewrites the
    // entropy table *and* fixes up the frame CRC gets past the checksum
    // but must still be stopped by the decoder's structural checks.
    const auto payload = makeDist(Dist::kGeometric, 65536, 41);
    const auto n = static_cast<uint32_t>(payload.size() / 8);
    std::vector<uint8_t> frame;
    const PageCodec stored = writePageFrame(
        frame, Encoding::kPlainI64, n, payload, PageCodec::kEntropy);
    ASSERT_EQ(stored, PageCodec::kEntropy);

    // Frame layout: [enc u8][count u32][psize u32][codec u8][raw u32]
    // [payload][crc u32]; the huffman table sits inside the payload.
    const size_t header = 1 + 4 + 4 + kCompressedPageExtraBytes;
    HuffStreamInfo info;
    ASSERT_TRUE(enc::huffStreamInfo(
                    std::span<const uint8_t>(frame).subspan(
                        header, frame.size() - header - 4),
                    info)
                    .ok());
    ASSERT_EQ(info.mode, 0);
    const size_t table_at = header + info.header_bytes - info.table_bytes;

    frame[table_at] ^= 0x01;
    const uint32_t crc = crc32c(frame.data(), frame.size() - 4);
    std::memcpy(frame.data() + frame.size() - 4, &crc, 4);

    size_t pos = 0;
    PageView page;
    ASSERT_TRUE(readPageFrame(frame, pos, page).ok());  // CRC passes
    std::vector<uint8_t> scratch;
    std::span<const uint8_t> got;
    EXPECT_EQ(pagePayload(page, scratch, got).code(),
              StatusCode::kCorruption);
}

// --- whole-file differential -----------------------------------------------

RowBatch
multiPageBatch(size_t rows)
{
    Schema schema;
    schema.add({"label", FeatureKind::kDense});
    schema.add({"dense0", FeatureKind::kDense});
    schema.add({"ids0", FeatureKind::kSparse});
    RowBatch batch(schema);
    std::mt19937_64 rng(8);
    std::vector<float> labels(rows), dense(rows);
    for (size_t i = 0; i < rows; ++i) {
        labels[i] = static_cast<float>(rng() % 2);
        dense[i] = static_cast<float>(rng() % 1000) * 0.25f;
    }
    std::vector<int64_t> ids;
    std::vector<uint32_t> offsets{0};
    for (size_t i = 0; i < rows; ++i) {
        const size_t k = rng() % 5;
        for (size_t j = 0; j < k; ++j)
            ids.push_back(static_cast<int64_t>(rng() % 4000));
        offsets.push_back(static_cast<uint32_t>(ids.size()));
    }
    batch.addColumn(DenseColumn(std::move(labels)));
    batch.addColumn(DenseColumn(std::move(dense)));
    batch.addColumn(SparseColumn(std::move(ids), std::move(offsets)));
    return batch;
}

TEST(EntropyFileTest, AllCodecMenusDecodeBitIdentical)
{
    const size_t rows = 2 * kMaxValuesPerPage + 321;
    const RowBatch batch = multiPageBatch(rows);

    WriterOptions plain_opts;
    plain_opts.codec = PageCodec::kNone;
    WriterOptions lz_opts;
    lz_opts.codec = PageCodec::kLz;
    WriterOptions full_opts;  // default: kLzEntropy
    full_opts.column_heat = {120, 700, 1000};

    const auto plain = ColumnarFileWriter(plain_opts).write(batch, 7);
    const auto lz = ColumnarFileWriter(lz_opts).write(batch, 7);
    const auto full = ColumnarFileWriter(full_opts).write(batch, 7);

    // Per-page strictly-smallest selection composes to the file level.
    EXPECT_LT(full.size(), plain.size());
    EXPECT_LE(full.size(), lz.size() + 3 * 5);  // footer heat varints

    for (const auto* bytes : {&plain, &lz, &full}) {
        ColumnarFileReader reader;
        ASSERT_TRUE(reader.open(*bytes).ok());
        auto got = reader.readAll();
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, batch);
        // Warm buffer-reusing path.
        RowBatch into;
        ASSERT_TRUE(reader.readAllInto(into).ok());
        EXPECT_EQ(into, batch);
    }
}

TEST(EntropyFileTest, AsyncPageSplitDecodesEntropyPages)
{
    const size_t rows = kMaxValuesPerPage + 17;
    const RowBatch batch = multiPageBatch(rows);
    WriterOptions opts;
    opts.column_heat = {50, 1000, 900};
    const auto bytes = ColumnarFileWriter(opts).write(batch, 3);

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    std::vector<PageReadPlan> plans;
    ASSERT_TRUE(reader.planPageReads(plans).ok());
    assignChannelPlacement(reader.footer(), 4, plans);

    RowBatch out;
    ASSERT_TRUE(reader.beginReadInto(out).ok());
    // Complete in reverse order to prove order independence.
    for (size_t i = plans.size(); i > 0; --i) {
        const PageReadPlan& plan = plans[i - 1];
        const std::span<const uint8_t> frame(bytes.data() + plan.offset,
                                             plan.frame_bytes);
        ASSERT_TRUE(reader.completePage(plan, frame, out).ok());
    }
    ASSERT_TRUE(reader.finishReadInto(out).ok());
    EXPECT_EQ(out, batch);
}

TEST(EntropyFileTest, HeatMetadataRoundTripsAndIsClamped)
{
    const RowBatch batch = multiPageBatch(256);
    WriterOptions opts;
    opts.column_heat = {40, 5000, 1000};  // 5000 clamps to 1000
    const auto bytes = ColumnarFileWriter(opts).write(batch, 1);

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    const FileFooter& footer = reader.footer();
    ASSERT_EQ(footer.columns.size(), 3u);
    EXPECT_EQ(footer.columns[0].streams[0].heat, 40u);
    EXPECT_EQ(footer.columns[1].streams[0].heat, kMaxStreamHeat);
    for (const StreamMeta& s : footer.columns[2].streams)
        EXPECT_EQ(s.heat, kMaxStreamHeat);  // both sparse streams inherit
}

// --- frequency-aware channel placement -------------------------------------

TEST(HeatPlacementTest, HotStreamsStripedColdStreamsContiguous)
{
    const RowBatch batch = multiPageBatch(3 * kMaxValuesPerPage);
    WriterOptions opts;
    // Column 1 is hot (>= half of max); columns 0 and 2 are cold.
    opts.column_heat = {10, 1000, 100};
    const auto bytes = ColumnarFileWriter(opts).write(batch, 2);

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    std::vector<PageReadPlan> plans;
    ASSERT_TRUE(reader.planPageReads(plans).ok());
    const int channels = 4;
    assignChannelPlacement(reader.footer(), channels, plans);

    std::vector<int32_t> hot_channels;
    std::vector<std::vector<int32_t>> cold_per_stream;
    for (const PageReadPlan& plan : plans) {
        ASSERT_GE(plan.channel, 0);
        ASSERT_LT(plan.channel, channels);
        if (plan.hot) {
            EXPECT_EQ(plan.column, 1u);
            hot_channels.push_back(plan.channel);
        } else {
            const size_t key = plan.column * 2 + plan.stream;
            if (cold_per_stream.size() <= key)
                cold_per_stream.resize(key + 1);
            cold_per_stream[key].push_back(plan.channel);
        }
    }
    // Hot pages stripe round-robin: consecutive pages land on distinct
    // channels, covering more than one channel overall.
    ASSERT_GT(hot_channels.size(), 1u);
    for (size_t i = 1; i < hot_channels.size(); ++i)
        EXPECT_EQ(hot_channels[i],
                  (hot_channels[i - 1] + 1) % channels);
    // Every cold stream stays on one channel.
    for (const auto& stream_channels : cold_per_stream) {
        for (int32_t c : stream_channels)
            EXPECT_EQ(c, stream_channels.front());
    }
}

TEST(HeatPlacementTest, NoHeatMetadataLeavesPlacementUnpinned)
{
    const RowBatch batch = multiPageBatch(512);
    const auto bytes = ColumnarFileWriter().write(batch, 0);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(bytes).ok());
    std::vector<PageReadPlan> plans;
    ASSERT_TRUE(reader.planPageReads(plans).ok());
    assignChannelPlacement(reader.footer(), 8, plans);
    for (const PageReadPlan& plan : plans) {
        EXPECT_EQ(plan.channel, -1);
        EXPECT_FALSE(plan.hot);
    }
}

TEST(HeatPlacementTest, ExcessiveFooterHeatRejectedAsCorruption)
{
    const RowBatch batch = multiPageBatch(64);
    WriterOptions opts;
    opts.column_heat = {1000, 1000, 1000};
    auto bytes = ColumnarFileWriter(opts).write(batch, 0);

    // Bump one stream's heat varint above kMaxStreamHeat in the footer
    // and fix the footer CRC: the parser must reject the value itself.
    // (Find the footer: its size is the u32 at file end - 12.)
    const size_t tail = bytes.size();
    uint32_t footer_size = 0;
    std::memcpy(&footer_size, bytes.data() + tail - 12, 4);
    const size_t footer_at = tail - 12 - footer_size;
    // heat 1000 encodes as the varint e8 07; patch the first occurrence
    // inside the footer to 4000 (a0 1f).
    bool patched = false;
    for (size_t i = footer_at; i + 1 < tail - 12 && !patched; ++i) {
        if (bytes[i] == 0xe8 && bytes[i + 1] == 0x07) {
            bytes[i] = 0xa0;
            bytes[i + 1] = 0x1f;
            patched = true;
        }
    }
    ASSERT_TRUE(patched);
    const uint32_t crc = crc32c(bytes.data() + footer_at, footer_size);
    std::memcpy(bytes.data() + tail - 8, &crc, 4);

    ColumnarFileReader reader;
    EXPECT_EQ(reader.open(bytes).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace presto
