/**
 * @file
 * Unit tests for the common substrate: status, units, rng, crc32, stats,
 * thread pool, and the table printer.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace presto {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk)
{
    Status st;
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kOk);
    EXPECT_EQ(st.toString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage)
{
    Status st = Status::corruption("bad page");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
    EXPECT_EQ(st.message(), "bad page");
    EXPECT_EQ(st.toString(), "CORRUPTION: bad page");
}

TEST(StatusTest, FactoriesProduceDistinctCodes)
{
    EXPECT_EQ(Status::invalidArgument("x").code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(Status::notFound("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(Status::outOfRange("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(Status::unimplemented("x").code(),
              StatusCode::kUnimplemented);
    EXPECT_EQ(Status::failedPrecondition("x").code(),
              StatusCode::kFailedPrecondition);
}

TEST(StatusTest, EqualityComparesCodeAndMessage)
{
    EXPECT_EQ(Status::notFound("a"), Status::notFound("a"));
    EXPECT_FALSE(Status::notFound("a") == Status::notFound("b"));
    EXPECT_EQ(Status(), Status::okStatus());
}

TEST(StatusTest, CodeNamesAreStable)
{
    EXPECT_STREQ(statusCodeName(StatusCode::kOk), "OK");
    EXPECT_STREQ(statusCodeName(StatusCode::kCorruption), "CORRUPTION");
}

TEST(StatusOrTest, HoldsValue)
{
    StatusOr<int> v = 42;
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 42);
    EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError)
{
    StatusOr<int> v = Status::notFound("missing");
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue)
{
    StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
    std::vector<int> out = std::move(v).value();
    EXPECT_EQ(out.size(), 3u);
}

TEST(StatusOrDeathTest, ValueOnErrorPanics)
{
    StatusOr<int> v = Status::notFound("missing");
    EXPECT_DEATH((void)v.value(), "value\\(\\) on error StatusOr");
}

// --- Units -------------------------------------------------------------------

TEST(UnitsTest, FormatBytesScales)
{
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(3.5 * kMiB), "3.50 MiB");
    EXPECT_EQ(formatBytes(kGiB), "1.00 GiB");
}

TEST(UnitsTest, FormatTimeScales)
{
    EXPECT_EQ(formatTime(5e-9), "5.00 ns");
    EXPECT_EQ(formatTime(1.5e-6), "1.50 us");
    EXPECT_EQ(formatTime(2.5e-3), "2.50 ms");
    EXPECT_EQ(formatTime(12.0), "12.00 s");
    EXPECT_EQ(formatTime(120.0), "2.00 min");
    EXPECT_EQ(formatTime(7200.0), "2.00 h");
}

TEST(UnitsTest, FormatBandwidthScales)
{
    EXPECT_EQ(formatBandwidth(1.25e9), "1.25 GB/s");
    EXPECT_EQ(formatBandwidth(500), "500.00 B/s");
}

TEST(UnitsTest, FormatRateUsesPrefixes)
{
    EXPECT_EQ(formatRate(1500, "batch"), "1.50 Kbatch/s");
    EXPECT_EQ(formatRate(2, "item"), "2.00 item/s");
}

TEST(UnitsTest, FormatDoubleRespectsDecimals)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.14159, 0), "3");
}

TEST(UnitsTest, TenGbEConstant)
{
    EXPECT_DOUBLE_EQ(kTenGbEBytesPerSec, 1.25e9);
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformIntInRange)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(RngTest, UniformIntInclusiveRange)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(RngDeathTest, UniformIntZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.uniformInt(uint64_t{0}), "uniformInt");
}

TEST(RngTest, UniformIntRoughlyUnbiased)
{
    Rng rng(10);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(uint64_t{10})];
    for (int c : counts) {
        EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
    }
}

TEST(RngTest, NormalMoments)
{
    Rng rng(11);
    Accumulator acc;
    for (int i = 0; i < 100000; ++i)
        acc.add(rng.normal());
    EXPECT_NEAR(acc.mean(), 0.0, 0.02);
    EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(RngTest, NormalShifted)
{
    Rng rng(12);
    Accumulator acc;
    for (int i = 0; i < 50000; ++i)
        acc.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(acc.mean(), 5.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(2.0, 1.5), 0.0);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(14);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.03);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.03, 0.005);
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng base(15);
    Rng a = base.fork(1);
    Rng b = base.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, Mix64IsDeterministicAndMixing)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Single-bit input flip changes roughly half the output bits.
    const int bits = std::popcount(mix64(0x1000) ^ mix64(0x1001));
    EXPECT_GT(bits, 16);
    EXPECT_LT(bits, 48);
}

// --- CRC32C --------------------------------------------------------------------

TEST(Crc32Test, KnownVector)
{
    // CRC32C("123456789") = 0xE3069283 (iSCSI test vector).
    const char* data = "123456789";
    EXPECT_EQ(crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip)
{
    std::vector<uint8_t> buf(256);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>(i);
    const uint32_t base = crc32c(buf.data(), buf.size());
    for (size_t i = 0; i < buf.size(); i += 17) {
        buf[i] ^= 1;
        EXPECT_NE(crc32c(buf.data(), buf.size()), base);
        buf[i] ^= 1;
    }
}

TEST(Crc32Test, SeedChaining)
{
    const char* data = "hello world";
    const uint32_t whole = crc32c(data, 11);
    const uint32_t first = crc32c(data, 5);
    const uint32_t chained = crc32c(data + 5, 6, first);
    EXPECT_EQ(chained, whole);
}

// --- Stats --------------------------------------------------------------------

TEST(AccumulatorTest, BasicMoments)
{
    Accumulator acc;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
    EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
}

TEST(AccumulatorTest, EmptyIsSafe)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, MergeEqualsSequential)
{
    Accumulator all, left, right;
    Rng rng(20);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(3.0, 2.0);
        all.add(v);
        (i < 500 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(AccumulatorTest, MergeWithEmpty)
{
    Accumulator a, empty;
    a.add(1.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(HistogramTest, BinsAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-1.0);
    h.add(10.0);  // hi is exclusive -> overflow
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.totalCount(), 4u);
}

TEST(HistogramTest, QuantileOfUniformData)
{
    Histogram h(0.0, 1.0, 100);
    Rng rng(21);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.uniform());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(HistogramTest, ToStringHasOneLinePerBin)
{
    Histogram h(0.0, 1.0, 4);
    h.add(0.1);
    const std::string s = h.toString();
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(HistogramDeathTest, InvalidRangePanics)
{
    EXPECT_DEATH(Histogram(1.0, 0.0, 4), "range inverted");
}

TEST(HistogramDeathTest, QuantileOutOfRangePanics)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DEATH(h.quantile(1.5), "quantile");
}

// --- ThreadPool ------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns)
{
    ThreadPool pool(2);
    pool.wait();  // must not hang
    SUCCEED();
}

TEST(ThreadPoolTest, NumThreads)
{
    ThreadPool pool(5);
    EXPECT_EQ(pool.numThreads(), 5u);
}

TEST(ThreadPoolDeathTest, ZeroThreadsPanics)
{
    EXPECT_DEATH(ThreadPool(0), "at least one thread");
}

// --- TablePrinter ----------------------------------------------------------------

TEST(TablePrinterTest, RendersAlignedColumns)
{
    TablePrinter t({"A", "LongHeader"});
    t.addRow({"x", "1"});
    t.addRow({"yyyy", "2"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("| A    | LongHeader |"), std::string::npos);
    EXPECT_NE(s.find("| yyyy | 2          |"), std::string::npos);
}

TEST(TablePrinterTest, NumericRowHelper)
{
    TablePrinter t({"name", "v1", "v2"});
    t.addRow("row", {1.234, 5.678}, 1);
    EXPECT_NE(t.toString().find("| row  | 1.2 | 5.7 |"),
              std::string::npos);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TablePrinterTest, SeparatorAddsRule)
{
    TablePrinter t({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string s = t.toString();
    // Rules: top, under-header, separator, bottom = 4.
    EXPECT_EQ(std::count(s.begin(), s.end(), '+') / 2, 4);
}

TEST(TablePrinterDeathTest, WrongCellCountPanics)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "row has");
}

TEST(TablePrinterDeathTest, EmptyHeaderPanics)
{
    EXPECT_DEATH(TablePrinter({}), "at least one column");
}

}  // namespace
}  // namespace presto
