/**
 * @file
 * Tests for the JSON plan authoring format (ops/plan_json.h): exact
 * round-tripping (including full-width 64-bit hash seeds), strict
 * parse-error reporting with line numbers, and execution equivalence
 * between a parsed plan and its in-code original.
 */
#include <gtest/gtest.h>

#include <string>

#include "datagen/generator.h"
#include "datagen/rm_config.h"
#include "ops/plan.h"
#include "ops/plan_json.h"

namespace presto {
namespace {

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 64;
    return cfg;
}

TEST(PlanJsonTest, StandardPlanRoundTripsExactly)
{
    const TransformPlan plan = TransformPlan::standard(smallConfig());
    const std::string json = planToJson(plan);

    auto parsed = parsePlanJson(json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_TRUE(parsed.value() == plan);

    // Canonical emission is a fixed point: emit(parse(emit(p))) ==
    // emit(p), byte for byte.
    EXPECT_EQ(planToJson(parsed.value()), json);
}

TEST(PlanJsonTest, Preserves64BitSeedsExactly)
{
    // 2^63 + epsilon class seeds lose low bits through a double; the
    // parser must keep integer tokens exact.
    const uint64_t seed = 0x8618cc44cb71b832ULL;  // 9663429661392591922
    TransformPlan plan;
    PlanOutput out;
    out.kind = PlanOutput::Kind::kSparse;
    out.output_name = "s0";
    out.source_feature = "sparse_0";
    out.sparse_ops = {SparseOp::sigridHash(seed, 1'000'003),
                      SparseOp::firstX(20)};
    plan.add(out);

    auto parsed = parsePlanJson(planToJson(plan));
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    ASSERT_EQ(parsed.value().outputs().size(), 1u);
    EXPECT_EQ(parsed.value().outputs()[0].sparse_ops[0].seed, seed);
    EXPECT_TRUE(parsed.value() == plan);
}

TEST(PlanJsonTest, AcceptsDocumentedExample)
{
    const char* json = R"({
      "outputs": [
        {"kind": "label", "name": "label", "source": "label"},
        {"kind": "dense", "name": "d0", "source": "dense_0",
         "dense_ops": [{"op": "fill_missing", "value": 0.0},
                       {"op": "log"},
                       {"op": "clamp", "lo": 0.0, "hi": 10.0}]},
        {"kind": "generated", "name": "g0", "source": "dense_1",
         "bucket_boundaries": 256,
         "sparse_ops": [{"op": "sigrid_hash", "seed": 7,
                         "max_value": 65536}]}
      ]
    })";
    auto parsed = parsePlanJson(json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const auto& outputs = parsed.value().outputs();
    ASSERT_EQ(outputs.size(), 3u);
    EXPECT_EQ(outputs[0].kind, PlanOutput::Kind::kLabel);
    ASSERT_EQ(outputs[1].dense_ops.size(), 3u);
    EXPECT_EQ(outputs[1].dense_ops[2].b, 10.0f);
    EXPECT_EQ(outputs[2].kind, PlanOutput::Kind::kGenerated);
    EXPECT_EQ(outputs[2].bucket_boundaries, 256u);
}

TEST(PlanJsonTest, ReportsErrorsWithLineNumbers)
{
    // Unterminated string on line 3.
    auto broken = parsePlanJson("{\n \"outputs\": [\n {\"kind\": \"lab");
    ASSERT_FALSE(broken.ok());
    EXPECT_EQ(broken.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(broken.status().message().find("line 3"),
              std::string::npos);

    auto trailing = parsePlanJson("{\"outputs\": []} extra");
    ASSERT_FALSE(trailing.ok());

    auto unknown_field = parsePlanJson(
        R"({"outputs": [{"kind": "label", "name": "l",
            "source": "label", "surprise": 1}]})");
    ASSERT_FALSE(unknown_field.ok());
    EXPECT_NE(unknown_field.status().message().find("surprise"),
              std::string::npos);

    auto bad_kind = parsePlanJson(
        R"({"outputs": [{"kind": "labe1", "name": "l", "source": "l"}]})");
    ASSERT_FALSE(bad_kind.ok());

    auto negative_seed = parsePlanJson(
        R"({"outputs": [{"kind": "sparse", "name": "s", "source": "s",
            "sparse_ops": [{"op": "sigrid_hash", "seed": -1,
                            "max_value": 10}]}]})");
    ASSERT_FALSE(negative_seed.ok());

    // max_value is a signed modulus downstream; a uint64 above
    // INT64_MAX must error instead of wrapping negative.
    auto wide_max = parsePlanJson(
        R"({"outputs": [{"kind": "sparse", "name": "s", "source": "s",
            "sparse_ops": [{"op": "sigrid_hash", "seed": 1,
                            "max_value": 9223372036854775808}]}]})");
    ASSERT_FALSE(wide_max.ok());
    EXPECT_EQ(wide_max.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(wide_max.status().message().find("max_value"),
              std::string::npos);
}

TEST(PlanJsonTest, RejectsPathologicalNestingWithoutCrashing)
{
    // Thousands of unclosed '[' must fail cleanly (bounded recursion),
    // not overflow the parser stack.
    std::string deep(100000, '[');
    auto parsed = parsePlanJson(deep);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find("nesting"),
              std::string::npos);

    // Moderate nesting inside the limit still parses.
    std::string ok_doc = std::string(16, '[') + "1" + std::string(16, ']');
    // Raw arrays are not valid plans, but the *parser* must get past
    // the nesting; wrap in a plan-shaped failure check instead: the
    // error, if any, must not be about nesting.
    auto moderate = parsePlanJson(ok_doc);
    if (!moderate.ok()) {
        EXPECT_EQ(moderate.status().message().find("nesting"),
                  std::string::npos);
    }
}

TEST(PlanJsonTest, ParsedPlanExecutesBitIdentically)
{
    const RmConfig cfg = smallConfig();
    const TransformPlan original = TransformPlan::standard(cfg);
    auto parsed = parsePlanJson(planToJson(original));
    ASSERT_TRUE(parsed.ok());

    RawDataGenerator generator(cfg, {});
    const RowBatch raw = generator.generatePartition(3);
    ASSERT_TRUE(original.validate(generator.schema()).ok());

    const MiniBatch want = PlanExecutor(original, generator.schema()).run(raw);
    const MiniBatch got =
        PlanExecutor(parsed.value(), generator.schema()).run(raw);

    EXPECT_EQ(got.batch_size, want.batch_size);
    EXPECT_EQ(got.dense, want.dense);
    EXPECT_EQ(got.labels, want.labels);
    ASSERT_EQ(got.sparse.size(), want.sparse.size());
    for (size_t i = 0; i < want.sparse.size(); ++i) {
        EXPECT_EQ(got.sparse[i].feature_name, want.sparse[i].feature_name);
        EXPECT_EQ(got.sparse[i].values, want.sparse[i].values);
        EXPECT_EQ(got.sparse[i].lengths, want.sparse[i].lengths);
    }
}

}  // namespace
}  // namespace presto
