/**
 * @file
 * Cross-module integration tests: generate -> encode -> store -> extract
 * -> transform -> train-ready tensors, with replay determinism, failure
 * injection, and selective-fetch accounting.
 */
#include <gtest/gtest.h>

#include "columnar/columnar_file.h"
#include "core/data_loader.h"
#include "core/managers.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "dlrm/dlrm.h"
#include "ops/preprocessor.h"

namespace presto {
namespace {

RmConfig
smallRm(int rm, size_t batch)
{
    RmConfig cfg = rmConfig(rm);
    cfg.batch_size = batch;
    return cfg;
}

class EndToEndPerRm : public ::testing::TestWithParam<int>
{
};

TEST_P(EndToEndPerRm, StorageRoundTripPreservesTransformResults)
{
    const RmConfig cfg = smallRm(GetParam(), 64);
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(11);

    // Direct path: transform the in-memory batch.
    Preprocessor pre(cfg);
    const MiniBatch direct = pre.preprocess(raw);

    // Storage path: encode to PSF, decode, then transform.
    const auto encoded = ColumnarFileWriter().write(raw, 11);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(encoded).ok());
    auto decoded = reader.readAll();
    ASSERT_TRUE(decoded.ok());
    const MiniBatch via_storage = pre.preprocess(*decoded);

    EXPECT_EQ(direct.dense, via_storage.dense);
    EXPECT_EQ(direct.labels, via_storage.labels);
    ASSERT_EQ(direct.sparse.size(), via_storage.sparse.size());
    for (size_t i = 0; i < direct.sparse.size(); ++i) {
        EXPECT_EQ(direct.sparse[i].values, via_storage.sparse[i].values);
        EXPECT_EQ(direct.sparse[i].lengths, via_storage.sparse[i].lengths);
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, EndToEndPerRm,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(IntegrationTest, ExtractOnlyNeededFeaturesForPartialModels)
{
    // An ML engineer's model may use a subset of logged features; the
    // columnar Extract should only pay for those.
    const RmConfig cfg = smallRm(2, 128);
    RawDataGenerator gen(cfg);
    const auto encoded = ColumnarFileWriter().write(gen.generatePartition(0),
                                                    0);

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(encoded).ok());
    std::vector<std::string> wanted = {"label"};
    for (int i = 0; i < 8; ++i)
        wanted.push_back("dense_" + std::to_string(i));
    for (int i = 0; i < 4; ++i)
        wanted.push_back("sparse_" + std::to_string(i));
    auto subset = reader.readColumns(wanted);
    ASSERT_TRUE(subset.ok());
    EXPECT_EQ(subset->numColumns(), wanted.size());
    // 13 of 547 columns; sparse columns dominate bytes, we took 4/42.
    EXPECT_LT(reader.bytesTouched(), encoded.size() / 5);
}

TEST(IntegrationTest, TrainRunIsReplayableByteForByte)
{
    const RmConfig cfg = smallRm(1, 128);
    RawDataGenerator gen(cfg);

    uint64_t checksums[2];
    for (int run = 0; run < 2; ++run) {
        PartitionStore store(gen);
        TrainManager trainer(cfg, store, PreprocessMode::kPreSto);
        (void)trainer.train(4, 2);
        checksums[run] = trainer.deliveredChecksum();
    }
    EXPECT_EQ(checksums[0], checksums[1]);
}

TEST(IntegrationTest, CorruptPartitionIsDetectedBeforeTraining)
{
    const RmConfig cfg = smallRm(1, 64);
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    auto corrupted = store.partition(0);
    corrupted[corrupted.size() / 3] ^= 0x08;

    ColumnarFileReader reader;
    Status st = reader.open(corrupted);
    if (st.ok())
        st = reader.readAll().status();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(IntegrationTest, PartitionFilesSurviveDiskRoundTrip)
{
    const RmConfig cfg = smallRm(1, 64);
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& bytes = store.partition(9);

    const std::string path = ::testing::TempDir() + "partition9.psf";
    ASSERT_TRUE(saveToFile(path, bytes).ok());
    auto loaded = loadFromFile(path);
    ASSERT_TRUE(loaded.ok());

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(*loaded).ok());
    auto batch = reader.readAll();
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(*batch, gen.generatePartition(9));
}

TEST(IntegrationTest, GeneratedFeatureIndicesAreStableAcrossPaths)
{
    // Bucketize -> SigridHash of the same dense input must agree whether
    // the data came straight from the generator or through storage.
    const RmConfig cfg = smallRm(5, 32);
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(3);
    const auto encoded = ColumnarFileWriter().write(raw, 3);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(encoded).ok());
    auto decoded = reader.readAll();
    ASSERT_TRUE(decoded.ok());

    Preprocessor pre(cfg);
    const MiniBatch a = pre.preprocess(raw);
    const MiniBatch b = pre.preprocess(*decoded);
    for (size_t g = cfg.num_sparse; g < a.sparse.size(); ++g)
        EXPECT_EQ(a.sparse[g].values, b.sparse[g].values);
}

TEST(IntegrationTest, MixedWorkloadStoresAreIsolated)
{
    // Two jobs with different configs share nothing: partitions differ
    // and transforms differ, even for the same partition index.
    const RmConfig cfg_a = smallRm(1, 64);
    RmConfig cfg_b = smallRm(1, 64);
    GeneratorOptions opts;
    opts.seed = 777;
    RawDataGenerator gen_a(cfg_a);
    RawDataGenerator gen_b(cfg_b, opts);
    PartitionStore store_a(gen_a), store_b(gen_b);
    EXPECT_NE(store_a.partition(0), store_b.partition(0));
}

TEST(IntegrationTest, MultiEpochTrainingOverShuffledPartitions)
{
    // Figure 1 end to end, for real: a 4-partition dataset, epoch-level
    // shuffling, in-storage preprocessing, and a DLRM whose held-out
    // loss drops after two epochs.
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    cfg.num_dense = 6;
    cfg.num_sparse = 4;
    cfg.num_generated = 3;

    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    Preprocessor pre(cfg);
    EpochPartitionLoader loader(4, 0xbeef);

    DlrmParams params = DlrmParams::fromRmConfig(cfg, 8, 256);
    params.learning_rate = 0.08f;
    DlrmModel model(params);

    auto batchFor = [&](uint64_t pid) {
        ColumnarFileReader reader;
        EXPECT_TRUE(reader.open(store.partition(pid)).ok());
        auto raw = reader.readAll();
        EXPECT_TRUE(raw.ok());
        return pre.preprocess(*raw);
    };

    const MiniBatch held_out = batchFor(99);
    const float before = model.evaluate(held_out);
    for (int step = 0; step < 2 * 4; ++step)
        (void)model.trainStep(batchFor(loader.next()));
    EXPECT_EQ(loader.currentEpoch(), 1u);
    EXPECT_LT(model.evaluate(held_out), before);
}

TEST(IntegrationTest, WorkAccountingConsistentWithDeliveredTensors)
{
    const RmConfig cfg = smallRm(2, 64);
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    const TransformWork work = TransformWork::measure(cfg, raw);
    const MiniBatch mb = Preprocessor(cfg).preprocess(raw);
    // hash_values counts every sparse id including generated ones.
    EXPECT_DOUBLE_EQ(work.hash_values,
                     static_cast<double>(mb.totalSparseValues()));
    EXPECT_DOUBLE_EQ(work.dense_values,
                     static_cast<double>(mb.dense.size()));
}

}  // namespace
}  // namespace presto
