/**
 * @file
 * Tests for Criteo TSV ingestion and its interplay with the rest of the
 * pipeline (storage round-trip, preprocessing, training).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "columnar/columnar_file.h"
#include "datagen/criteo_tsv.h"
#include "ops/preprocessor.h"

namespace presto {
namespace {

/** Build a syntactically valid Criteo line. */
std::string
makeLine(int label, const std::string& dense_fill = "5",
         const std::string& sparse_fill = "68fd1e64")
{
    std::string line = std::to_string(label);
    for (size_t i = 0; i < kCriteoDenseFeatures; ++i)
        line += "\t" + dense_fill;
    for (size_t i = 0; i < kCriteoSparseFeatures; ++i)
        line += "\t" + sparse_fill;
    return line;
}

TEST(CriteoTsvTest, ParsesWellFormedLine)
{
    CriteoTsvParser parser;
    ASSERT_TRUE(parser.addLine(makeLine(1)).ok());
    EXPECT_EQ(parser.numRows(), 1u);
    RowBatch batch = parser.takeBatch();
    EXPECT_EQ(batch.numRows(), 1u);
    EXPECT_EQ(batch.schema().numDense(), kCriteoDenseFeatures);
    EXPECT_EQ(batch.schema().numSparse(), kCriteoSparseFeatures);
    EXPECT_FLOAT_EQ(batch.dense(0).value(0), 1.0f);  // label
    EXPECT_FLOAT_EQ(batch.dense(1).value(0), 5.0f);
    EXPECT_EQ(batch.sparse(14).row(0)[0], 0x68fd1e64);
}

TEST(CriteoTsvTest, EmptyDenseFieldBecomesNaN)
{
    CriteoTsvParser parser;
    std::string line = "0";
    line += "\t";  // dense_0 empty
    for (size_t i = 1; i < kCriteoDenseFeatures; ++i)
        line += "\t3";
    for (size_t i = 0; i < kCriteoSparseFeatures; ++i)
        line += "\tdeadbeef";
    ASSERT_TRUE(parser.addLine(line).ok());
    RowBatch batch = parser.takeBatch();
    EXPECT_TRUE(std::isnan(batch.dense(1).value(0)));
    EXPECT_FLOAT_EQ(batch.dense(2).value(0), 3.0f);
}

TEST(CriteoTsvTest, EmptySparseFieldBecomesEmptyList)
{
    CriteoTsvParser parser;
    std::string line = "0";
    for (size_t i = 0; i < kCriteoDenseFeatures; ++i)
        line += "\t1";
    line += "\t";  // sparse_0 empty
    for (size_t i = 1; i < kCriteoSparseFeatures; ++i)
        line += "\tcafe0001";
    ASSERT_TRUE(parser.addLine(line).ok());
    RowBatch batch = parser.takeBatch();
    const size_t first_sparse = 1 + kCriteoDenseFeatures;
    EXPECT_EQ(batch.sparse(first_sparse).rowLength(0), 0u);
    EXPECT_EQ(batch.sparse(first_sparse + 1).rowLength(0), 1u);
}

TEST(CriteoTsvTest, NegativeDenseValuesAllowed)
{
    // Criteo's integer features include small negatives.
    CriteoTsvParser parser;
    ASSERT_TRUE(parser.addLine(makeLine(0, "-2")).ok());
    RowBatch batch = parser.takeBatch();
    EXPECT_FLOAT_EQ(batch.dense(1).value(0), -2.0f);
}

TEST(CriteoTsvTest, RejectsMalformedLines)
{
    CriteoTsvParser parser;
    EXPECT_EQ(parser.addLine("1\t2\t3").code(),
              StatusCode::kInvalidArgument);  // field count
    EXPECT_EQ(parser.addLine(makeLine(2)).code(),
              StatusCode::kInvalidArgument);  // label not binary
    EXPECT_EQ(parser.addLine(makeLine(0, "xyz")).code(),
              StatusCode::kInvalidArgument);  // bad integer
    EXPECT_EQ(parser.addLine(makeLine(0, "1", "nothex!")).code(),
              StatusCode::kInvalidArgument);  // bad hex
    // No partial rows were committed.
    EXPECT_EQ(parser.numRows(), 0u);
}

TEST(CriteoTsvTest, CarriageReturnTolerated)
{
    CriteoTsvParser parser;
    ASSERT_TRUE(parser.addLine(makeLine(1) + "\r").ok());
    EXPECT_EQ(parser.numRows(), 1u);
}

TEST(CriteoTsvTest, ParseWholeBufferReportsLineNumbers)
{
    const std::string text =
        makeLine(0) + "\n" + makeLine(1) + "\n" + "garbage\n";
    auto result = parseCriteoTsv(text);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("line 3"),
              std::string::npos);
}

TEST(CriteoTsvTest, ParseWholeBufferSkipsBlankLines)
{
    const std::string text = makeLine(0) + "\n\n" + makeLine(1) + "\n";
    auto result = parseCriteoTsv(text);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->numRows(), 2u);
}

TEST(CriteoTsvTest, ParsedBatchFlowsThroughTheWholePipeline)
{
    std::string text;
    for (int i = 0; i < 32; ++i)
        text += makeLine(i % 2, std::to_string(i),
                         i % 3 ? "68fd1e64" : "") +
                "\n";
    auto batch = parseCriteoTsv(text);
    ASSERT_TRUE(batch.ok());

    // Storage round-trip.
    const auto encoded = ColumnarFileWriter().write(*batch, 0);
    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(encoded).ok());
    auto decoded = reader.readAll();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, *batch);

    // Transform with the RM1 plan (Criteo-shaped).
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 32;
    Preprocessor pre(cfg);
    const MiniBatch mb = pre.preprocess(*decoded);
    EXPECT_TRUE(mb.consistent());
    EXPECT_EQ(mb.batch_size, 32u);
    EXPECT_EQ(mb.sparse.size(), cfg.totalSparseFeatures());
}

}  // namespace
}  // namespace presto
