/**
 * @file
 * Functional tests for the persistent segment store: append/read round
 * trips (blocking and through the IoRing), manifest recovery across
 * re-opens, retirement, compaction, the CRC scrub, journal
 * checkpointing, and the PartitionStore/PreprocessManager persistence
 * wiring. Crash-injection coverage lives in store_crash_test.cc and
 * store_recovery_test.cc.
 */
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/durable_file.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/managers.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "io/async_reader.h"
#include "io/io_ring.h"
#include "store/segment_store.h"

namespace presto {
namespace {

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 256;
    return cfg;
}

/** Fresh, empty directory under the test temp root. */
std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    ::system(("rm -rf " + dir).c_str());
    EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
    return dir;
}

std::unique_ptr<SegmentStore>
openStore(const std::string& dir, RecoveryReport* report = nullptr)
{
    SegmentStoreOptions opt;
    opt.directory = dir;
    auto store = SegmentStore::open(opt, report);
    EXPECT_TRUE(store.ok()) << store.status().message();
    return std::move(*store);
}

bool
fileExists(const std::string& path)
{
    return fileSizeOf(path).ok();
}

TEST(SegmentStoreTest, AppendReadRoundTripBlockingAndRing)
{
    const std::string dir = freshDir("store_roundtrip");
    auto store = openStore(dir);
    RawDataGenerator gen(smallConfig());
    const RowBatch batch = gen.generatePartition(7);

    auto id = store->appendPartition(batch, 7);
    ASSERT_TRUE(id.ok()) << id.status().message();

    RowBatch via_blocking;
    ASSERT_TRUE(store->readSegmentBlocking(*id, via_blocking).ok());
    EXPECT_TRUE(via_blocking == batch);

    IoRing ring;
    AsyncPartitionReader reader(ring);
    RowBatch via_ring;
    ASSERT_TRUE(store->readSegment(*id, reader, via_ring).ok());
    EXPECT_TRUE(via_ring == batch);
    EXPECT_GT(reader.lastReadStats().pages, 0u);

    const auto segments = store->listSegments();
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].meta.segment_id, *id);
    EXPECT_EQ(segments[0].meta.partition_id, 7u);
    EXPECT_EQ(segments[0].state, SegmentState::kSealed);
    EXPECT_GT(segments[0].meta.plans.size(), 0u);
    EXPECT_TRUE(fileExists(store->segmentPath(segments[0].meta)));

    auto info = store->segmentForPartition(7);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->meta.segment_id, *id);
    EXPECT_EQ(store->segmentForPartition(8).status().code(),
              StatusCode::kNotFound);
}

TEST(SegmentStoreTest, ReopenRebuildsTheSameManifest)
{
    const std::string dir = freshDir("store_reopen");
    RawDataGenerator gen(smallConfig());
    std::vector<SegmentInfo> before;
    {
        auto store = openStore(dir);
        for (uint64_t pid = 0; pid < 3; ++pid) {
            auto id = store->appendPartition(gen.generatePartition(pid),
                                             pid);
            ASSERT_TRUE(id.ok());
        }
        before = store->listSegments();
    }

    RecoveryReport report;
    auto store = openStore(dir, &report);
    // Each append writes intent + seal; a clean shutdown leaves no torn
    // tail, no orphans, no quarantines.
    EXPECT_EQ(report.records_replayed, 6u);
    EXPECT_EQ(report.torn_tail_bytes, 0u);
    EXPECT_TRUE(report.orphans_removed.empty());
    EXPECT_TRUE(report.quarantined.empty());
    EXPECT_EQ(report.live_segments, 3u);

    const auto after = store->listSegments();
    ASSERT_EQ(after.size(), before.size());
    for (size_t i = 0; i < after.size(); ++i) {
        EXPECT_EQ(after[i].meta.segment_id, before[i].meta.segment_id);
        EXPECT_EQ(after[i].meta.partition_id, before[i].meta.partition_id);
        EXPECT_EQ(after[i].meta.byte_size, before[i].meta.byte_size);
        EXPECT_EQ(after[i].meta.file_crc, before[i].meta.file_crc);
        EXPECT_EQ(after[i].meta.tail_bytes, before[i].meta.tail_bytes);
        EXPECT_EQ(after[i].meta.plans.size(), before[i].meta.plans.size());
        EXPECT_EQ(after[i].state, SegmentState::kSealed);
    }
    for (uint64_t pid = 0; pid < 3; ++pid) {
        auto info = store->segmentForPartition(pid);
        ASSERT_TRUE(info.ok());
        RowBatch got;
        ASSERT_TRUE(
            store->readSegmentBlocking(info->meta.segment_id, got).ok());
        EXPECT_TRUE(got == gen.generatePartition(pid)) << pid;
    }
}

TEST(SegmentStoreTest, RetireDeletesTheFileAndSurvivesReopen)
{
    const std::string dir = freshDir("store_retire");
    RawDataGenerator gen(smallConfig());
    uint64_t id = 0;
    std::string path;
    {
        auto store = openStore(dir);
        auto got = store->appendPartition(gen.generatePartition(0), 0);
        ASSERT_TRUE(got.ok());
        id = *got;
        path = store->segmentPath(store->listSegments()[0].meta);
        ASSERT_TRUE(fileExists(path));
        ASSERT_TRUE(store->retireSegment(id).ok());
        EXPECT_FALSE(fileExists(path));
        EXPECT_EQ(store->segmentForPartition(0).status().code(),
                  StatusCode::kNotFound);
        RowBatch out;
        EXPECT_EQ(store->readSegmentBlocking(id, out).code(),
                  StatusCode::kNotFound);
        // Retiring again is a no-op, not an error.
        EXPECT_TRUE(store->retireSegment(id).ok());
    }
    auto store = openStore(dir);
    EXPECT_EQ(store->segmentForPartition(0).status().code(),
              StatusCode::kNotFound);
    EXPECT_FALSE(fileExists(path));
}

TEST(SegmentStoreTest, CompactOnceRewritesSmallerAndRetiresTheOld)
{
    const std::string dir = freshDir("store_compact");
    RawDataGenerator gen(smallConfig());
    const RowBatch batch = gen.generatePartition(4);

    // Seed the store (whose own writer uses the default LZ codec) with
    // a deliberately fat encoding, so compaction has a win to find.
    WriterOptions fat;
    fat.force_plain = true;
    fat.codec = PageCodec::kNone;
    const auto fat_psf = ColumnarFileWriter(fat).write(batch, 4);

    auto store = openStore(dir);
    auto old_id = store->appendEncoded(fat_psf, 4);
    ASSERT_TRUE(old_id.ok());
    const std::string old_path =
        store->segmentPath(store->listSegments()[0].meta);

    auto new_id = store->compactOnce();
    ASSERT_TRUE(new_id.ok()) << new_id.status().message();
    ASSERT_NE(*new_id, 0u);
    EXPECT_NE(*new_id, *old_id);

    auto info = store->segmentForPartition(4);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->meta.segment_id, *new_id);
    EXPECT_LT(info->meta.byte_size, fat_psf.size());
    EXPECT_FALSE(fileExists(old_path));  // old segment retired

    RowBatch got;
    ASSERT_TRUE(store->readSegmentBlocking(*new_id, got).ok());
    EXPECT_TRUE(got == batch);

    // The rewrite is already tight: nothing further to compact.
    auto again = store->compactOnce();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, 0u);
}

TEST(SegmentStoreTest, ScrubCountsPagesAndQuarantinesDamage)
{
    const std::string dir = freshDir("store_scrub");
    RawDataGenerator gen(smallConfig());
    auto store = openStore(dir);
    for (uint64_t pid = 0; pid < 2; ++pid)
        ASSERT_TRUE(
            store->appendPartition(gen.generatePartition(pid), pid).ok());
    const auto segments = store->listSegments();
    uint64_t total_pages = 0;
    for (const auto& info : segments)
        total_pages += info.meta.plans.size();

    auto verified = store->scrubSome(100000);
    ASSERT_TRUE(verified.ok());
    EXPECT_EQ(*verified, total_pages);

    // Flip one byte inside the first page frame of segment 1.
    const SegmentInfo& victim = segments[0];
    const std::string path = store->segmentPath(victim.meta);
    auto bytes = loadFromFile(path);
    ASSERT_TRUE(bytes.ok());
    (*bytes)[victim.meta.plans[0].offset + victim.meta.plans[0].frame_bytes /
             2] ^= 0x10;
    ASSERT_TRUE(saveToFile(path, *bytes).ok());

    // The scrub cursor wraps and the damaged page is caught.
    verified = store->scrubSome(100000);
    ASSERT_TRUE(verified.ok());
    EXPECT_LT(*verified, total_pages);
    auto listed = store->listSegments();
    EXPECT_EQ(listed[0].state, SegmentState::kQuarantined);
    EXPECT_FALSE(listed[0].quarantine_reason.empty());

    // A quarantined segment is never served again.
    RowBatch out;
    EXPECT_EQ(store->readSegmentBlocking(victim.meta.segment_id, out).code(),
              StatusCode::kUnavailable);
    EXPECT_EQ(store->segmentForPartition(victim.meta.partition_id)
                  .status()
                  .code(),
              StatusCode::kNotFound);
}

TEST(SegmentStoreTest, ReadQuarantinesOnDecodeCorruption)
{
    const std::string dir = freshDir("store_read_quarantine");
    RawDataGenerator gen(smallConfig());
    auto store = openStore(dir);
    auto id = store->appendPartition(gen.generatePartition(0), 0);
    ASSERT_TRUE(id.ok());
    const SegmentInfo info = store->listSegments()[0];

    const std::string path = store->segmentPath(info.meta);
    auto bytes = loadFromFile(path);
    ASSERT_TRUE(bytes.ok());
    (*bytes)[info.meta.plans[0].offset + 8] ^= 0x01;
    ASSERT_TRUE(saveToFile(path, *bytes).ok());

    // The ring read re-reads the page (same bytes every time — real bit
    // rot, not an in-flight flip), exhausts its attempts, and fails
    // with corruption, which quarantines the segment.
    IoRing ring;
    AsyncReadOptions opt;
    opt.max_page_attempts = 2;
    AsyncPartitionReader reader(ring, opt);
    RowBatch out;
    EXPECT_EQ(store->readSegment(*id, reader, out).code(),
              StatusCode::kCorruption);
    EXPECT_EQ(store->listSegments()[0].state, SegmentState::kQuarantined);
}

TEST(SegmentStoreTest, CheckpointDropsRetiredHistoryAndReplays)
{
    const std::string dir = freshDir("store_checkpoint");
    RawDataGenerator gen(smallConfig());
    auto store = openStore(dir);
    std::vector<uint64_t> ids;
    for (uint64_t pid = 0; pid < 3; ++pid) {
        auto id = store->appendPartition(gen.generatePartition(pid), pid);
        ASSERT_TRUE(id.ok());
        ids.push_back(*id);
    }
    ASSERT_TRUE(store->retireSegment(ids[1]).ok());
    const uint64_t journal_before = *fileSizeOf(store->journalPath());

    ASSERT_TRUE(store->checkpointJournal().ok());
    EXPECT_LT(*fileSizeOf(store->journalPath()), journal_before);
    // Retired entries are garbage-collected by the rewrite.
    EXPECT_EQ(store->listSegments().size(), 2u);

    RecoveryReport report;
    auto reopened = openStore(dir, &report);
    EXPECT_EQ(report.live_segments, 2u);
    EXPECT_TRUE(report.quarantined.empty());
    for (uint64_t pid : {uint64_t{0}, uint64_t{2}}) {
        auto info = reopened->segmentForPartition(pid);
        ASSERT_TRUE(info.ok()) << pid;
        RowBatch got;
        ASSERT_TRUE(reopened
                        ->readSegmentBlocking(info->meta.segment_id, got)
                        .ok());
        EXPECT_TRUE(got == gen.generatePartition(pid));
    }
    // The id allocator floor survives the checkpoint: a new segment
    // never reuses a retired id.
    auto id = reopened->appendPartition(gen.generatePartition(9), 9);
    ASSERT_TRUE(id.ok());
    EXPECT_GT(*id, ids.back());
}

TEST(SegmentStoreTest, ScheduledMaintenanceRunsOneTickAtATime)
{
    const std::string dir = freshDir("store_maintenance");
    RawDataGenerator gen(smallConfig());
    auto store = openStore(dir);
    for (uint64_t pid = 0; pid < 2; ++pid)
        ASSERT_TRUE(
            store->appendPartition(gen.generatePartition(pid), pid).ok());

    ThreadPool pool(1);
    EXPECT_TRUE(store->scheduleMaintenance(pool));
    // Back-pressure: a second tick is refused while one is pending.
    // (The single pool thread has not necessarily started the first.)
    EXPECT_FALSE(store->scheduleMaintenance(pool));
    pool.wait();
    EXPECT_TRUE(store->scheduleMaintenance(pool));
    pool.wait();
    // Maintenance must not have hurt anything.
    for (const auto& info : store->listSegments()) {
        if (info.state != SegmentState::kSealed &&
            info.state != SegmentState::kCompacted)
            continue;
        RowBatch got;
        EXPECT_TRUE(
            store->readSegmentBlocking(info.meta.segment_id, got).ok());
    }
}

// --- PartitionStore persistence ----------------------------------------------

TEST(PartitionStorePersistenceTest, PersistPartitionIsIdempotent)
{
    const std::string dir = freshDir("store_persist");
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore pstore(gen);
    EXPECT_EQ(pstore.persistPartition(0).status().code(),
              StatusCode::kFailedPrecondition);

    auto store = openStore(dir);
    pstore.enablePersistence(store.get());
    ASSERT_EQ(pstore.segmentStore(), store.get());

    auto first = pstore.persistPartition(5);
    ASSERT_TRUE(first.ok());
    auto second = pstore.persistPartition(5);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(*first, *second);
    EXPECT_EQ(store->listSegments().size(), 1u);

    // The durable segment holds exactly the canonical encoded bytes.
    auto bytes = loadFromFile(store->segmentPath(
        store->listSegments()[0].meta));
    ASSERT_TRUE(bytes.ok());
    EXPECT_TRUE(*bytes == pstore.partition(5));
}

/** Consume every batch and fold the TrainManager-style checksum. */
uint64_t
drainChecksum(PreprocessManager& manager, size_t batches)
{
    manager.start(batches);
    uint64_t checksum = 0;
    for (;;) {
        auto mb = manager.nextBatch();
        if (mb == nullptr)
            break;
        uint64_t crc = crc32c(mb->dense.data(),
                              mb->dense.size() * sizeof(float));
        for (const auto& jag : mb->sparse) {
            crc = crc32c(jag.values.data(),
                         jag.values.size() * sizeof(int64_t), crc);
        }
        checksum ^= mix64(crc + mb->batch_size);
        manager.recycle(std::move(mb));
    }
    return checksum;
}

TEST(ManagerStoreTest, ColdReadPipelineMatchesMemoryPipeline)
{
    const std::string dir = freshDir("store_manager");
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    RawDataGenerator gen(cfg);
    const size_t batches = 8;

    PartitionStore memory_store(gen);
    IoRing memory_ring;
    PreprocessManager memory_mgr(cfg, memory_store, PreprocessMode::kPreSto,
                                 2, /*queue_capacity=*/8, /*prefetch=*/true,
                                 /*decode_pool=*/nullptr, &memory_ring);
    const uint64_t reference = drainChecksum(memory_mgr, batches);

    // Same pipeline, but partitions are first committed as durable
    // segments and every page then arrives via pread through the ring.
    auto store = openStore(dir);
    PartitionStore cold_store(gen);
    cold_store.enablePersistence(store.get());
    IoRing ring;
    PreprocessManager cold_mgr(cfg, cold_store, PreprocessMode::kPreSto, 2,
                               /*queue_capacity=*/8, /*prefetch=*/true,
                               /*decode_pool=*/nullptr, &ring);
    EXPECT_EQ(drainChecksum(cold_mgr, batches), reference);
    EXPECT_EQ(store->listSegments().size(), batches);
    const IoRingStats stats = ring.statsSnapshot();
    EXPECT_GT(stats.submitted, 0u);
    EXPECT_EQ(stats.failed, 0u);
}

}  // namespace
}  // namespace presto
