/**
 * @file
 * Service-tier tests: epoch-versioned DatasetCatalog (including crash
 * mid-publish and recovery), admission control, the threaded
 * IngestService (backpressure, strict order, epoch pinning), the DES
 * service scenario (fair shares, determinism, bounded queues), and the
 * PartitionStore cache budget the catalog builds on.
 */
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "service/admission.h"
#include "service/dataset_catalog.h"
#include "service/ingest_service.h"
#include "service/service_scenario.h"
#include "store/segment_store.h"

namespace presto {
namespace {

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 64;
    return cfg;
}

DatasetSpec
smallSpec(const std::string& name, size_t partitions = 4,
          size_t shards = 2)
{
    DatasetSpec spec;
    spec.name = name;
    spec.config = smallConfig();
    spec.generator.seed = 0xfeed;
    spec.partitions_per_epoch = partitions;
    spec.shards = shards;
    return spec;
}

std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    ::system(("rm -rf " + dir).c_str());
    EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
    return dir;
}

std::vector<std::vector<uint8_t>>
snapshotEpoch(const EpochReader& reader)
{
    std::vector<std::vector<uint8_t>> encoded;
    for (size_t i = 0; i < reader.numPartitions(); ++i) {
        auto bytes = reader.fetchEncoded(i);
        EXPECT_TRUE(bytes.ok());
        encoded.push_back(std::move(bytes.value()));
    }
    return encoded;
}

// --- Admission policy (pure function) --------------------------------

TEST(AdmissionTest, AdmitsWithinBudgetRejectsSaturation)
{
    AdmissionInput light{"light", 2.0, 0.1, 1.0};
    AdmissionDecision d = evaluateAdmission({}, light, 1.0);
    EXPECT_TRUE(d.admitted);
    EXPECT_TRUE(d.reason.empty());
    EXPECT_NEAR(d.projected_utilization, 0.2, 1e-9);
    EXPECT_NEAR(d.projected_p99_sec, projectedP99Sec(0.1, 0.2), 1e-12);

    AdmissionInput heavy{"heavy", 20.0, 0.1, 0.0};
    d = evaluateAdmission({light}, heavy, 1.0);
    EXPECT_FALSE(d.admitted);
    EXPECT_NE(d.reason.find("stable limit"), std::string::npos);
}

TEST(AdmissionTest, RejectsWhenAdmittedTenantSloWouldBreak)
{
    // Alone, "tight" projects well under its 0.15s budget.
    AdmissionInput tight{"tight", 1.0, 0.1, 0.15};
    ASSERT_TRUE(evaluateAdmission({}, tight, 1.0).admitted);

    // The candidate stays under the stable-utilization limit but drags
    // rho (and with it tight's projected p99) past tight's budget.
    AdmissionInput pusher{"pusher", 6.0, 0.1, 0.0};
    const AdmissionDecision d = evaluateAdmission({tight}, pusher, 1.0);
    EXPECT_FALSE(d.admitted);
    EXPECT_NE(d.reason.find("tight"), std::string::npos);
}

TEST(AdmissionTest, P99ProjectionMonotoneAndSaturating)
{
    EXPECT_NEAR(projectedP99Sec(0.2, 0.0), 0.2, 1e-12);
    EXPECT_LT(projectedP99Sec(0.2, 0.3), projectedP99Sec(0.2, 0.8));
    EXPECT_GE(projectedP99Sec(0.2, 1.0), 1e8);  // saturated: no promise
}

// --- DatasetCatalog, in-memory mode ----------------------------------

TEST(DatasetCatalogTest, PublishAdvancesHeadAtomically)
{
    DatasetCatalog catalog;
    ASSERT_TRUE(catalog.registerDataset(smallSpec("clicks")).ok());

    auto head = catalog.headEpoch("clicks");
    ASSERT_TRUE(head.ok());
    EXPECT_EQ(head.value(), 0u);
    EXPECT_FALSE(catalog.pin("clicks").ok());  // nothing published yet

    auto epoch = catalog.publishEpoch("clicks");
    ASSERT_TRUE(epoch.ok());
    EXPECT_EQ(epoch.value(), 1u);

    auto reader = catalog.pin("clicks");
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.value().epoch(), 1u);
    EXPECT_EQ(reader.value().numPartitions(), 4u);
    EXPECT_EQ(reader.value().partitionId(2), epochPartitionId(1, 2));
    EXPECT_EQ(reader.value().shardOf(3), 3u % 2u);

    RowBatch rows;
    ASSERT_TRUE(reader.value().readPartition(0, rows).ok());
    EXPECT_EQ(rows.numRows(), smallConfig().batch_size);

    EXPECT_FALSE(catalog.pin("clicks", 2).ok());  // future epoch
    EXPECT_FALSE(catalog.pin("nope").ok());       // unknown dataset
}

TEST(DatasetCatalogTest, PinnedEpochBitIdenticalUnderConcurrentPublish)
{
    DatasetCatalog catalog;
    ASSERT_TRUE(catalog.registerDataset(smallSpec("clicks")).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    auto reader = catalog.pin("clicks", 1);
    ASSERT_TRUE(reader.ok());
    const auto baseline = snapshotEpoch(reader.value());

    // Publish four more epochs while the pinned reader replays its own.
    std::thread publisher([&catalog] {
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
    });
    for (int pass = 0; pass < 8; ++pass)
        EXPECT_EQ(snapshotEpoch(reader.value()), baseline);
    publisher.join();

    EXPECT_EQ(catalog.headEpoch("clicks").value(), 5u);
    EXPECT_EQ(reader.value().epoch(), 1u);
    EXPECT_EQ(snapshotEpoch(reader.value()), baseline);

    // The pinned epoch outlives the catalog itself.
    auto survivor = catalog.pin("clicks", 1);
    ASSERT_TRUE(survivor.ok());
    {
        DatasetCatalog ephemeral;  // NOLINT: scope illustration
    }
    EXPECT_EQ(snapshotEpoch(survivor.value()), baseline);
}

// --- DatasetCatalog, persistent mode + crash mid-publish -------------

std::unique_ptr<SegmentStore>
openStore(const std::string& dir, const FaultInjector* faults)
{
    SegmentStoreOptions options;
    options.directory = dir;
    options.faults = faults;
    auto store = SegmentStore::open(options);
    EXPECT_TRUE(store.ok());
    return std::move(store.value());
}

TEST(DatasetCatalogTest, CrashMidPublishLeavesHeadAndRecovers)
{
    const std::string dir_a = freshDir("svc_shard_a");
    const std::string dir_b = freshDir("svc_shard_b");
    std::vector<std::vector<uint8_t>> baseline;

    // Phase 1: publish epoch 1 durably.
    {
        auto shard_a = openStore(dir_a, nullptr);
        auto shard_b = openStore(dir_b, nullptr);
        DatasetCatalog catalog;
        ASSERT_TRUE(catalog
                        .registerDataset(smallSpec("clicks"),
                                         {shard_a.get(), shard_b.get()})
                        .ok());
        ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
        auto reader = catalog.pin("clicks", 1);
        ASSERT_TRUE(reader.ok());
        baseline = snapshotEpoch(reader.value());
    }

    // Phase 2: crash partway through publishing epoch 2. The head must
    // not move and epoch 1 must stay bit-identical.
    {
        FaultSpec spec;
        spec.crash_at_durable_op = 5;
        FaultInjector faults(spec);
        auto shard_a = openStore(dir_a, &faults);
        auto shard_b = openStore(dir_b, &faults);
        DatasetCatalog catalog;
        ASSERT_TRUE(catalog
                        .registerDataset(smallSpec("clicks"),
                                         {shard_a.get(), shard_b.get()})
                        .ok());
        EXPECT_EQ(catalog.headEpoch("clicks").value(), 1u);

        auto published = catalog.publishEpoch("clicks");
        EXPECT_FALSE(published.ok());
        EXPECT_EQ(catalog.headEpoch("clicks").value(), 1u);
        EXPECT_FALSE(catalog.pin("clicks", 2).ok());
    }

    // Phase 3: recover without faults. The head resumes at the last
    // fully-published epoch; re-publishing epoch 2 is idempotent over
    // whatever partitions the crash left committed.
    {
        auto shard_a = openStore(dir_a, nullptr);
        auto shard_b = openStore(dir_b, nullptr);
        DatasetCatalog catalog;
        ASSERT_TRUE(catalog
                        .registerDataset(smallSpec("clicks"),
                                         {shard_a.get(), shard_b.get()})
                        .ok());
        EXPECT_EQ(catalog.headEpoch("clicks").value(), 1u);

        auto reader = catalog.pin("clicks", 1);
        ASSERT_TRUE(reader.ok());
        EXPECT_EQ(snapshotEpoch(reader.value()), baseline);

        auto republished = catalog.publishEpoch("clicks");
        ASSERT_TRUE(republished.ok());
        EXPECT_EQ(republished.value(), 2u);
        auto epoch2 = catalog.pin("clicks", 2);
        ASSERT_TRUE(epoch2.ok());
        RowBatch rows;
        ASSERT_TRUE(epoch2.value().readPartition(1, rows).ok());
        EXPECT_EQ(rows.numRows(), smallConfig().batch_size);
        EXPECT_EQ(snapshotEpoch(reader.value()), baseline);
    }
}

// --- IngestService (threaded) ----------------------------------------

TEST(IngestServiceTest, BackpressureBoundsQueueAndPreservesOrder)
{
    DatasetCatalog catalog;
    ASSERT_TRUE(catalog.registerDataset(smallSpec("clicks")).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    ServiceOptions options;
    options.workers = 2;
    IngestService service(catalog, options);

    TenantSpec tenant;
    tenant.name = "trainer";
    tenant.dataset = "clicks";
    tenant.queue_capacity = 2;
    auto session = service.openSession(tenant);
    ASSERT_TRUE(session.ok());

    // Consume two epochs' worth; delivery is strictly sequential and
    // wraps the 4-partition epoch.
    for (uint64_t i = 0; i < 8; ++i) {
        auto delivered = service.nextBatch(session.value());
        ASSERT_TRUE(delivered.ok());
        EXPECT_EQ(delivered.value().sequence, i);
        EXPECT_EQ(delivered.value().partition_index, i % 4);
        EXPECT_EQ(delivered.value().epoch, 1u);
        ASSERT_NE(delivered.value().batch, nullptr);
        EXPECT_EQ(delivered.value().batch->batch_size,
                  smallConfig().batch_size);
        EXPECT_TRUE(delivered.value().batch->consistent());
    }

    auto stats = service.sessionStats(session.value());
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().delivered, 8u);
    EXPECT_GE(stats.value().produced, 8u);
    EXPECT_LE(stats.value().max_queue_occupancy, tenant.queue_capacity);

    ASSERT_TRUE(service.closeSession(session.value()).ok());
    EXPECT_FALSE(service.nextBatch(session.value()).ok());
    EXPECT_FALSE(service.closeSession(session.value()).ok());
}

TEST(IngestServiceTest, AdmissionRejectsOverloadWithReason)
{
    DatasetCatalog catalog;
    ASSERT_TRUE(catalog.registerDataset(smallSpec("clicks")).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    ServiceOptions options;
    options.workers = 1;
    options.service_sec_override = 0.1;
    IngestService service(catalog, options);

    TenantSpec modest;
    modest.name = "modest";
    modest.dataset = "clicks";
    modest.peak_batches_per_sec = 5.0;
    modest.slo_p99_sec = 1.0;
    auto admitted = service.openSession(modest);
    ASSERT_TRUE(admitted.ok());

    TenantSpec greedy;
    greedy.name = "greedy";
    greedy.dataset = "clicks";
    greedy.peak_batches_per_sec = 20.0;  // rho would hit 2.5
    const AdmissionDecision probe = service.admissionProbe(greedy);
    EXPECT_FALSE(probe.admitted);
    EXPECT_FALSE(probe.reason.empty());

    auto rejected = service.openSession(greedy);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(rejected.status().message().find("greedy"),
              std::string::npos);

    ASSERT_TRUE(service.closeSession(admitted.value()).ok());
}

TEST(IngestServiceTest, RejectsDegenerateWeights)
{
    DatasetCatalog catalog;
    ASSERT_TRUE(catalog.registerDataset(smallSpec("clicks")).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
    IngestService service(catalog);

    TenantSpec tenant;
    tenant.name = "trainer";
    tenant.dataset = "clicks";

    // weight = 0 would starve via vtime += 1/0 = inf; negative would
    // monopolize the workers. Both must be rejected up front.
    for (double weight : {0.0, -1.0,
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN()}) {
        tenant.weight = weight;
        auto session = service.openSession(tenant);
        ASSERT_FALSE(session.ok()) << "weight=" << weight;
        EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
    }

    tenant.weight = 0.5;
    auto session = service.openSession(tenant);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(service.closeSession(session.value()).ok());
}

TEST(IngestServiceTest, AdmissionProbeMatchesOpenSessionOnBadSpecs)
{
    DatasetCatalog catalog;
    ASSERT_TRUE(catalog.registerDataset(smallSpec("clicks")).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());
    IngestService service(catalog);

    // Unknown dataset: the probe must not report admitted when
    // openSession would fail to pin.
    TenantSpec unknown;
    unknown.name = "ghost";
    unknown.dataset = "nope";
    const AdmissionDecision bad_dataset = service.admissionProbe(unknown);
    EXPECT_FALSE(bad_dataset.admitted);
    EXPECT_FALSE(bad_dataset.reason.empty());
    EXPECT_FALSE(service.openSession(unknown).ok());

    // Unpublished epoch: same contract for the explicit-epoch pin.
    TenantSpec future;
    future.name = "early";
    future.dataset = "clicks";
    future.epoch = 7;
    const AdmissionDecision bad_epoch = service.admissionProbe(future);
    EXPECT_FALSE(bad_epoch.admitted);
    EXPECT_FALSE(bad_epoch.reason.empty());
    EXPECT_FALSE(service.openSession(future).ok());
}

TEST(IngestServiceTest, SessionsStayPinnedWhileHeadAdvances)
{
    DatasetCatalog catalog;
    ASSERT_TRUE(catalog.registerDataset(smallSpec("clicks")).ok());
    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());

    IngestService service(catalog);

    TenantSpec tenant;
    tenant.name = "replay";
    tenant.dataset = "clicks";
    auto session = service.openSession(tenant);
    ASSERT_TRUE(session.ok());

    ASSERT_TRUE(catalog.publishEpoch("clicks").ok());  // head -> 2

    for (int i = 0; i < 6; ++i) {
        auto delivered = service.nextBatch(session.value());
        ASSERT_TRUE(delivered.ok());
        EXPECT_EQ(delivered.value().epoch, 1u);  // pinned at open
    }

    TenantSpec fresh = tenant;
    fresh.name = "fresh";
    auto head_session = service.openSession(fresh);
    ASSERT_TRUE(head_session.ok());
    auto delivered = service.nextBatch(head_session.value());
    ASSERT_TRUE(delivered.ok());
    EXPECT_EQ(delivered.value().epoch, 2u);

    ASSERT_TRUE(service.closeSession(session.value()).ok());
    ASSERT_TRUE(service.closeSession(head_session.value()).ok());
}

// --- DES service scenario --------------------------------------------

ScenarioTenant
constantTenant(const std::string& name, double rate, double weight)
{
    ScenarioTenant tenant;
    tenant.name = name;
    tenant.traffic.diurnal.mean_batches_per_sec = rate;
    tenant.traffic.diurnal.amplitude = 0;
    tenant.weight = weight;
    tenant.queue_capacity = 4;
    return tenant;
}

TEST(ServiceScenarioTest, WeightedFairSharesUnderOverload)
{
    ScenarioOptions options;
    options.devices = 1;
    options.service_sec = 0.1;  // capacity 10/s vs 40/s offered
    options.duration_sec = 300;
    options.admission_control = false;

    const ScenarioReport report = runServiceScenario(
        options, {constantTenant("gold", 20, 2.0),
                  constantTenant("bronze", 20, 1.0)});

    ASSERT_EQ(report.tenants.size(), 2u);
    const TenantReport& gold = report.tenants[0];
    const TenantReport& bronze = report.tenants[1];

    // The scenario is work-conserving: overload surfaces as latency,
    // never as lost batches, so both tenants are fully served and the
    // 2:1 weighted-fair device shares show up as gold waiting far less.
    EXPECT_EQ(gold.served, gold.arrivals);
    EXPECT_EQ(bronze.served, bronze.arrivals);
    EXPECT_GT(bronze.mean_latency_sec, 1.3 * gold.mean_latency_sec);
    EXPECT_GT(bronze.max_latency_sec, gold.max_latency_sec);
    EXPECT_LT(gold.backlog_peak, bronze.backlog_peak);
    EXPECT_GT(gold.backlog_peak, 0u);
    EXPECT_GT(report.fleet_utilization, 0.95);
}

TEST(ServiceScenarioTest, DeterministicReplayAndBoundedStallQueue)
{
    ScenarioOptions options;
    options.devices = 4;
    options.service_sec = 0.1;
    options.duration_sec = 400;
    options.faults.fail_stops = {{1, 200.0}};

    ScenarioTenant steady = constantTenant("steady", 8, 1.0);
    steady.slo_p99_sec = 1.0;
    ScenarioTenant stalled = constantTenant("stalled", 6, 1.0);
    stalled.queue_capacity = 3;
    stalled.stall_start_sec = 100;
    stalled.stall_end_sec = 150;

    const ScenarioReport first =
        runServiceScenario(options, {steady, stalled});
    const ScenarioReport second =
        runServiceScenario(options, {steady, stalled});

    ASSERT_EQ(first.tenants.size(), 2u);
    EXPECT_EQ(first.devices_failed, 1u);
    EXPECT_TRUE(first.tenants[0].slo_met);

    // The stalled trainer fills its bounded queue exactly to capacity
    // and never beyond: backpressure, not buffering.
    EXPECT_EQ(first.tenants[1].max_queue_occupancy, 3u);
    EXPECT_GT(first.tenants[1].backlog_peak, 3u);

    // Bit-identical replay: same inputs, same report.
    for (size_t i = 0; i < first.tenants.size(); ++i) {
        EXPECT_EQ(first.tenants[i].served, second.tenants[i].served);
        EXPECT_EQ(first.tenants[i].p99_latency_sec,
                  second.tenants[i].p99_latency_sec);
        EXPECT_EQ(first.tenants[i].max_latency_sec,
                  second.tenants[i].max_latency_sec);
    }
    EXPECT_EQ(first.busy_device_sec, second.busy_device_sec);
}

TEST(ServiceScenarioTest, AdmissionControlGatesJoiner)
{
    ScenarioOptions options;
    options.devices = 2;
    options.service_sec = 0.1;  // capacity 20/s
    options.duration_sec = 120;

    ScenarioTenant anchor = constantTenant("anchor", 8, 1.0);
    anchor.slo_p99_sec = 1.0;
    ScenarioTenant flood = constantTenant("flood", 40, 1.0);
    flood.join_sec = 30;

    ScenarioReport controlled =
        runServiceScenario(options, {anchor, flood});
    EXPECT_TRUE(controlled.tenants[0].admitted);
    EXPECT_FALSE(controlled.tenants[1].admitted);
    EXPECT_FALSE(controlled.tenants[1].reject_reason.empty());
    EXPECT_EQ(controlled.tenants[1].arrivals, 0u);

    options.admission_control = false;
    ScenarioReport open = runServiceScenario(options, {anchor, flood});
    EXPECT_TRUE(open.tenants[1].admitted);
    EXPECT_GT(open.tenants[1].arrivals, 0u);
}

// --- PartitionStore cache budget -------------------------------------

TEST(PartitionStoreCacheTest, BudgetEvictsAndRematerializesIdentically)
{
    RawDataGenerator generator(smallConfig(), {});
    PartitionStore store(generator);

    auto first = store.fetchPartition(1);
    ASSERT_TRUE(first.ok());
    const uint64_t one_partition = store.partitionBytes(1);
    ASSERT_GT(one_partition, 0u);

    store.setCacheBudget(2 * one_partition + one_partition / 2);
    for (uint64_t pid = 1; pid <= 8; ++pid)
        ASSERT_TRUE(store.fetchPartition(pid).ok());

    EXPECT_GT(store.evictions(), 0u);
    EXPECT_LE(store.cachedBytes(), 2 * one_partition + one_partition / 2);

    // Evicted partitions re-materialize bit-identically on demand.
    auto again = store.fetchPartition(1);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value(), first.value());
}

TEST(PartitionStoreCacheTest, ConcurrentFetchesSurviveEviction)
{
    // Regression: fetchPartition used to copy from a reference after
    // releasing the store lock, so a concurrent materialization could
    // evict (destroy) the vector mid-copy under a tight budget. Several
    // workers hammering a budget that holds ~1 partition makes that
    // interleaving common; run under ASan for the UAF itself, and check
    // bit-identical reads either way.
    RawDataGenerator generator(smallConfig(), {});
    PartitionStore store(generator);
    const std::vector<uint8_t> want(store.partition(0));
    store.setCacheBudget(store.partitionBytes(0) + 1);

    std::atomic<bool> mismatch{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&store, &want, &mismatch, t] {
            for (uint64_t i = 0; i < 20; ++i) {
                // Worker-dependent stride: everyone revisits partition
                // 0 while others pull in evicting neighbours.
                const uint64_t pid = (i + t) % 2 == 0 ? 0 : (i % 3) + 1;
                auto bytes = store.fetchPartition(pid);
                if (!bytes.ok() ||
                    (pid == 0 && bytes.value() != want)) {
                    mismatch = true;
                }
            }
        });
    }
    for (std::thread& worker : workers)
        worker.join();
    EXPECT_FALSE(mismatch);
    EXPECT_GT(store.evictions(), 0u);
}

}  // namespace
}  // namespace presto
