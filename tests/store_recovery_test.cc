/**
 * @file
 * Journal-replay and recovery property tests for the segment store.
 *
 * The journal's damage model is "torn tail only": appends can tear the
 * last frame at any byte offset but never damage earlier bytes. These
 * tests drive that model exhaustively — the journal is truncated at
 * every byte offset and the store must recover the longest committed
 * prefix every time — and pin down the idempotence property: replaying
 * (or recovering) twice is bit-identical to doing it once.
 */
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <set>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "datagen/generator.h"
#include "store/journal.h"
#include "store/segment_store.h"

namespace presto {
namespace {

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 64;
    return cfg;
}

std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    ::system(("rm -rf " + dir).c_str());
    EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
    return dir;
}

// --- journal-level properties ------------------------------------------------

std::vector<JournalRecord>
sampleRecords()
{
    std::vector<JournalRecord> records;
    JournalRecord cp;
    cp.kind = JournalRecordKind::kCheckpoint;
    cp.next_segment_id = 17;
    records.push_back(cp);
    for (uint64_t id = 1; id <= 3; ++id) {
        JournalRecord intent;
        intent.kind = JournalRecordKind::kSegmentWriting;
        intent.segment_id = id;
        intent.partition_id = id * 11;
        intent.file_name = "seg-" + std::to_string(id) + ".psf";
        records.push_back(intent);

        JournalRecord seal;
        seal.kind = JournalRecordKind::kSegmentSealed;
        // The decoder mirrors meta.segment_id into the record-level id.
        seal.segment_id = id;
        seal.meta.segment_id = id;
        seal.meta.partition_id = id * 11;
        seal.meta.file_name = intent.file_name;
        seal.meta.byte_size = 1000 + id;
        seal.meta.file_crc = static_cast<uint32_t>(0xabc0 + id);
        seal.meta.num_rows = 64;
        seal.meta.tail_bytes = 96;
        for (uint32_t p = 0; p < 4; ++p) {
            PageReadPlan plan;
            plan.offset = 4 + p * 100;
            plan.frame_bytes = 100;
            plan.value_count = 16;
            plan.out_offset = p * 16;
            plan.column = p % 2;
            plan.stream = 0;
            seal.meta.plans.push_back(plan);
        }
        records.push_back(seal);
    }
    JournalRecord compacted;
    compacted.kind = JournalRecordKind::kSegmentCompacted;
    compacted.segment_id = 1;
    compacted.new_segment_id = 3;
    records.push_back(compacted);
    JournalRecord retired;
    retired.kind = JournalRecordKind::kSegmentRetired;
    retired.segment_id = 1;
    records.push_back(retired);
    JournalRecord quarantined;
    quarantined.kind = JournalRecordKind::kSegmentQuarantined;
    quarantined.segment_id = 2;
    quarantined.reason = "page 3 checksum mismatch";
    records.push_back(quarantined);
    return records;
}

std::vector<uint8_t>
encodeJournal(const std::vector<JournalRecord>& records)
{
    std::vector<uint8_t> bytes = encodeJournalHeader();
    for (const JournalRecord& rec : records) {
        const auto frame = encodeJournalFrame(rec);
        bytes.insert(bytes.end(), frame.begin(), frame.end());
    }
    return bytes;
}

void
expectSameRecord(const JournalRecord& a, const JournalRecord& b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.segment_id, b.segment_id);
    EXPECT_EQ(a.partition_id, b.partition_id);
    EXPECT_EQ(a.file_name, b.file_name);
    EXPECT_EQ(a.new_segment_id, b.new_segment_id);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.next_segment_id, b.next_segment_id);
    EXPECT_EQ(a.meta.segment_id, b.meta.segment_id);
    EXPECT_EQ(a.meta.partition_id, b.meta.partition_id);
    EXPECT_EQ(a.meta.file_name, b.meta.file_name);
    EXPECT_EQ(a.meta.byte_size, b.meta.byte_size);
    EXPECT_EQ(a.meta.file_crc, b.meta.file_crc);
    EXPECT_EQ(a.meta.num_rows, b.meta.num_rows);
    EXPECT_EQ(a.meta.tail_bytes, b.meta.tail_bytes);
    ASSERT_EQ(a.meta.plans.size(), b.meta.plans.size());
    for (size_t i = 0; i < a.meta.plans.size(); ++i) {
        EXPECT_EQ(a.meta.plans[i].offset, b.meta.plans[i].offset);
        EXPECT_EQ(a.meta.plans[i].frame_bytes, b.meta.plans[i].frame_bytes);
        EXPECT_EQ(a.meta.plans[i].value_count, b.meta.plans[i].value_count);
        EXPECT_EQ(a.meta.plans[i].out_offset, b.meta.plans[i].out_offset);
        EXPECT_EQ(a.meta.plans[i].column, b.meta.plans[i].column);
        EXPECT_EQ(a.meta.plans[i].stream, b.meta.plans[i].stream);
    }
}

TEST(JournalReplayTest, RoundTripsEveryRecordKind)
{
    const auto records = sampleRecords();
    const auto bytes = encodeJournal(records);
    JournalReplay replay;
    ASSERT_TRUE(replayJournal(bytes, replay).ok());
    EXPECT_EQ(replay.valid_bytes, bytes.size());
    EXPECT_EQ(replay.torn_bytes, 0u);
    EXPECT_TRUE(replay.torn_reason.empty());
    ASSERT_EQ(replay.records.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameRecord(replay.records[i], records[i]);
    }
}

TEST(JournalReplayTest, TruncationAtEveryOffsetYieldsTheLongestPrefix)
{
    const auto records = sampleRecords();
    const auto bytes = encodeJournal(records);

    // Frame boundaries: prefix lengths at which the journal is intact.
    std::vector<size_t> boundaries{encodeJournalHeader().size()};
    for (const JournalRecord& rec : records)
        boundaries.push_back(boundaries.back() +
                             encodeJournalFrame(rec).size());

    for (size_t cut = 0; cut <= bytes.size(); ++cut) {
        SCOPED_TRACE("cut at " + std::to_string(cut));
        const std::span<const uint8_t> prefix(bytes.data(), cut);
        JournalReplay replay;
        const Status st = replayJournal(prefix, replay);
        if (cut < 4) {
            // Below the header the file is not a journal at all; the
            // header is written atomically, so this is hard corruption,
            // not a torn tail.
            EXPECT_EQ(st.code(), StatusCode::kCorruption);
            continue;
        }
        ASSERT_TRUE(st.ok()) << st.message();

        // The replayed prefix is the longest run of whole frames.
        size_t expect_records = 0;
        size_t expect_valid = boundaries[0];
        while (expect_records < records.size() &&
               boundaries[expect_records + 1] <= cut) {
            ++expect_records;
            expect_valid = boundaries[expect_records];
        }
        EXPECT_EQ(replay.records.size(), expect_records);
        EXPECT_EQ(replay.valid_bytes, expect_valid);
        EXPECT_EQ(replay.torn_bytes, cut - expect_valid);
        EXPECT_EQ(replay.torn_reason.empty(), replay.torn_bytes == 0);

        // Idempotence: replaying the valid prefix again is clean and
        // decodes identically.
        JournalReplay again;
        ASSERT_TRUE(
            replayJournal({bytes.data(), replay.valid_bytes}, again).ok());
        EXPECT_EQ(again.torn_bytes, 0u);
        ASSERT_EQ(again.records.size(), replay.records.size());
        for (size_t i = 0; i < again.records.size(); ++i)
            expectSameRecord(again.records[i], replay.records[i]);
    }
}

TEST(JournalReplayTest, BitFlipInAFrameStopsTheReplayThere)
{
    const auto records = sampleRecords();
    const auto bytes = encodeJournal(records);
    auto damaged = bytes;
    // Flip a byte inside the third frame's payload.
    size_t pos = encodeJournalHeader().size();
    pos += encodeJournalFrame(records[0]).size();
    pos += encodeJournalFrame(records[1]).size();
    damaged[pos + 10] ^= 0x40;

    JournalReplay replay;
    ASSERT_TRUE(replayJournal(damaged, replay).ok());
    EXPECT_EQ(replay.records.size(), 2u);
    EXPECT_EQ(replay.valid_bytes, pos);
    EXPECT_EQ(replay.torn_bytes, damaged.size() - pos);
    EXPECT_FALSE(replay.torn_reason.empty());
}

// --- store-level recovery ----------------------------------------------------

/** Canonical store: three appended partitions, clean shutdown. */
struct Canonical {
    std::string dir;
    std::vector<uint8_t> journal;
    std::vector<std::string> segment_files;
};

Canonical
buildCanonicalStore(const std::string& name)
{
    Canonical c;
    c.dir = freshDir(name);
    RawDataGenerator gen(smallConfig());
    SegmentStoreOptions opt;
    opt.directory = c.dir;
    auto store = SegmentStore::open(opt);
    EXPECT_TRUE(store.ok());
    for (uint64_t pid = 0; pid < 3; ++pid) {
        auto id = (*store)->appendPartition(gen.generatePartition(pid), pid);
        EXPECT_TRUE(id.ok());
    }
    for (const SegmentInfo& info : (*store)->listSegments())
        c.segment_files.push_back(info.meta.file_name);
    auto bytes = loadFromFile((*store)->journalPath());
    EXPECT_TRUE(bytes.ok());
    c.journal = *bytes;
    return c;
}

/** Scratch store dir: truncated journal + hard links to the segments. */
std::string
scratchStore(const Canonical& c, size_t cut, const std::string& name)
{
    const std::string dir = freshDir(name);
    const std::vector<uint8_t> prefix(c.journal.begin(),
                                      c.journal.begin() + cut);
    EXPECT_TRUE(saveToFile(dir + "/JOURNAL", prefix).ok());
    for (const std::string& file : c.segment_files)
        EXPECT_EQ(::link((c.dir + "/" + file).c_str(),
                         (dir + "/" + file).c_str()),
                  0);
    return dir;
}

TEST(StoreRecoveryTest, JournalTruncatedAtEveryOffsetRecoversThePrefix)
{
    const Canonical c = buildCanonicalStore("store_trunc_canonical");
    RawDataGenerator gen(smallConfig());

    for (size_t cut = 0; cut <= c.journal.size(); ++cut) {
        SCOPED_TRACE("journal truncated at " + std::to_string(cut));
        const std::string dir = scratchStore(c, cut, "store_trunc_scratch");
        SegmentStoreOptions opt;
        opt.directory = dir;
        RecoveryReport report;
        auto store = SegmentStore::open(opt, &report);
        if (cut < 4) {
            // A sub-header journal is outside the torn-tail damage
            // model (the header is published atomically): recovery
            // refuses rather than guessing.
            EXPECT_FALSE(store.ok());
            EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
            continue;
        }
        ASSERT_TRUE(store.ok()) << store.status().message();

        // Expected state: fold the journal prefix ourselves.
        JournalReplay replay;
        ASSERT_TRUE(replayJournal({c.journal.data(), cut}, replay).ok());
        std::set<uint64_t> sealed;
        for (const JournalRecord& rec : replay.records)
            if (rec.kind == JournalRecordKind::kSegmentSealed)
                sealed.insert(rec.meta.segment_id);

        EXPECT_EQ(report.records_replayed, replay.records.size());
        EXPECT_EQ(report.torn_tail_bytes, replay.torn_bytes);
        EXPECT_EQ(report.live_segments, sealed.size());
        EXPECT_TRUE(report.quarantined.empty());

        const auto listed = (*store)->listSegments();
        ASSERT_EQ(listed.size(), sealed.size());
        for (const SegmentInfo& info : listed) {
            EXPECT_TRUE(sealed.count(info.meta.segment_id) > 0);
            EXPECT_EQ(info.state, SegmentState::kSealed);
        }
        // The torn tail was physically dropped from the journal.
        EXPECT_EQ(*fileSizeOf((*store)->journalPath()), replay.valid_bytes);

        // Spot-decode the recovered state (every 17th offset and the
        // interesting edges, to keep the sweep fast).
        if (cut % 17 == 0 || cut < 8 || cut + 8 > c.journal.size()) {
            for (const SegmentInfo& info : listed) {
                RowBatch got;
                ASSERT_TRUE((*store)
                                ->readSegmentBlocking(info.meta.segment_id,
                                                      got)
                                .ok());
                EXPECT_TRUE(got ==
                            gen.generatePartition(info.meta.partition_id));
            }
        }
    }
}

TEST(StoreRecoveryTest, RecoveringTwiceIsBitIdentical)
{
    const Canonical c = buildCanonicalStore("store_idem_canonical");
    // A torn mid-frame cut: recovery has real work (truncate + orphan
    // sweep) to do, and doing it twice must change nothing.
    const size_t cut = c.journal.size() - 7;
    const std::string dir = scratchStore(c, cut, "store_idem_scratch");
    SegmentStoreOptions opt;
    opt.directory = dir;

    RecoveryReport first_report;
    auto first = SegmentStore::open(opt, &first_report);
    ASSERT_TRUE(first.ok());
    EXPECT_GT(first_report.torn_tail_bytes, 0u);
    const auto state_one = (*first)->listSegments();
    const auto journal_one = loadFromFile((*first)->journalPath());
    ASSERT_TRUE(journal_one.ok());
    first->reset();

    RecoveryReport second_report;
    auto second = SegmentStore::open(opt, &second_report);
    ASSERT_TRUE(second.ok());
    // The second recovery sees an already-clean store: no torn tail, no
    // orphans left to remove, the same live set.
    EXPECT_EQ(second_report.torn_tail_bytes, 0u);
    EXPECT_TRUE(second_report.orphans_removed.empty());
    EXPECT_EQ(second_report.live_segments, first_report.live_segments);
    const auto state_two = (*second)->listSegments();
    ASSERT_EQ(state_two.size(), state_one.size());
    for (size_t i = 0; i < state_two.size(); ++i) {
        EXPECT_EQ(state_two[i].meta.segment_id, state_one[i].meta.segment_id);
        EXPECT_EQ(state_two[i].meta.file_crc, state_one[i].meta.file_crc);
        EXPECT_EQ(state_two[i].state, state_one[i].state);
    }
    const auto journal_two = loadFromFile((*second)->journalPath());
    ASSERT_TRUE(journal_two.ok());
    EXPECT_TRUE(*journal_two == *journal_one);
}

TEST(StoreRecoveryTest, DamagedSegmentFileIsQuarantinedNeverServed)
{
    const Canonical c = buildCanonicalStore("store_quarantine");
    // Bit rot in the middle of the second segment's file.
    const std::string victim = c.dir + "/" + c.segment_files[1];
    auto bytes = loadFromFile(victim);
    ASSERT_TRUE(bytes.ok());
    (*bytes)[bytes->size() / 2] ^= 0x08;
    ASSERT_TRUE(saveToFile(victim, *bytes).ok());

    SegmentStoreOptions opt;
    opt.directory = c.dir;
    RecoveryReport report;
    auto store = SegmentStore::open(opt, &report);
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.live_segments, 2u);

    bool decision_found = false;
    for (const std::string& line : report.decisions())
        decision_found |= line.find("quarantined segment") !=
                          std::string::npos;
    EXPECT_TRUE(decision_found);

    RawDataGenerator gen(smallConfig());
    const uint64_t bad_id = report.quarantined[0];
    RowBatch out;
    EXPECT_EQ((*store)->readSegmentBlocking(bad_id, out).code(),
              StatusCode::kUnavailable);
    for (const SegmentInfo& info : (*store)->listSegments()) {
        if (info.meta.segment_id == bad_id) {
            EXPECT_EQ(info.state, SegmentState::kQuarantined);
            continue;
        }
        RowBatch got;
        ASSERT_TRUE(
            (*store)->readSegmentBlocking(info.meta.segment_id, got).ok());
        EXPECT_TRUE(got == gen.generatePartition(info.meta.partition_id));
    }
}

TEST(StoreRecoveryTest, StrayFilesAreSweptOnRecovery)
{
    const Canonical c = buildCanonicalStore("store_sweep");
    const std::vector<uint8_t> junk{1, 2, 3};
    ASSERT_TRUE(saveToFile(c.dir + "/seg-99999999.psf", junk).ok());
    ASSERT_TRUE(saveToFile(c.dir + "/seg-00000001.psf.tmp", junk).ok());
    ASSERT_TRUE(saveToFile(c.dir + "/notes.txt", junk).ok());

    SegmentStoreOptions opt;
    opt.directory = c.dir;
    RecoveryReport report;
    auto store = SegmentStore::open(opt, &report);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(report.orphans_removed.size(), 2u);
    EXPECT_FALSE(fileSizeOf(c.dir + "/seg-99999999.psf").ok());
    EXPECT_FALSE(fileSizeOf(c.dir + "/seg-00000001.psf.tmp").ok());
    EXPECT_TRUE(fileSizeOf(c.dir + "/notes.txt").ok());  // not ours
    EXPECT_EQ(report.live_segments, 3u);
    EXPECT_TRUE(report.quarantined.empty());
}

}  // namespace
}  // namespace presto
