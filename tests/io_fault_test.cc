/**
 * @file
 * Fault injection against the async I/O engine: transient errors and
 * timeouts on individual in-flight ring requests (retried inside the
 * ring with backoff), silent bit flips caught by the per-page CRC and
 * answered with single-page re-reads, and retry-budget exhaustion —
 * plus end-to-end recovery through the PreprocessManager.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "core/managers.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "io/async_reader.h"
#include "io/io_ring.h"

namespace presto {
namespace {

/** Submit @p n small reads and drain every completion. */
std::vector<IoCompletion>
runRequests(IoRing& ring, size_t n)
{
    const uint32_t me = ring.registerConsumer();
    std::vector<uint8_t> device(256);
    for (size_t i = 0; i < device.size(); ++i)
        device[i] = static_cast<uint8_t>(i);
    std::vector<std::vector<uint8_t>> dsts(n,
                                           std::vector<uint8_t>(256));
    for (size_t i = 0; i < n; ++i) {
        IoRequest req;
        req.src = device;
        req.dest = dsts[i].data();
        req.offset = i * 256;  // distinct fault identity per request
        req.user_data = i;
        ring.submit(me, req);
    }
    ring.drain();
    std::vector<IoCompletion> got;
    ring.reapCompletions(me, got);
    std::sort(got.begin(), got.end(),
              [](const IoCompletion& a, const IoCompletion& b) {
                  return a.user_data < b.user_data;
              });
    return got;
}

TEST(IoRingFaultTest, TransientErrorsRetryInsideTheRing)
{
    FaultSpec spec;
    spec.transient_read_error_prob = 0.3;
    spec.retry_backoff_base_sec = 1e-6;
    const FaultInjector faults(spec);
    IoRingOptions opt;
    opt.faults = &faults;
    IoRing ring(opt);

    const auto got = runRequests(ring, 128);
    ASSERT_EQ(got.size(), 128u);
    for (const auto& c : got)
        EXPECT_TRUE(c.status.ok()) << c.user_data;

    const IoRingStats stats = ring.statsSnapshot();
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_GT(stats.transient_errors, 0u);
    EXPECT_EQ(stats.retries, stats.transient_errors);
    EXPECT_EQ(stats.timeouts, 0u);
    // A retried request is charged service time per attempt plus the
    // exponential backoff between attempts.
    const double clean = ring.serviceSeconds(256);
    for (const auto& c : got) {
        if (c.retries == 0) {
            EXPECT_DOUBLE_EQ(c.latency_sec, clean);
        } else {
            EXPECT_GT(c.latency_sec, clean * (c.retries + 1));
        }
    }
}

TEST(IoRingFaultTest, TimeoutsAreChargedTheLostCommandWindow)
{
    FaultSpec spec;
    spec.read_timeout_prob = 0.25;
    spec.retry_backoff_base_sec = 1e-6;
    const FaultInjector faults(spec);
    IoRingOptions opt;
    opt.faults = &faults;
    opt.timeout_sec = 0.5;  // much larger than any service time
    IoRing ring(opt);

    const auto got = runRequests(ring, 128);
    const IoRingStats stats = ring.statsSnapshot();
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_GT(stats.timeouts, 0u);
    EXPECT_GE(stats.retries, stats.timeouts);
    for (const auto& c : got) {
        if (c.retries > 0)
            EXPECT_GE(c.latency_sec, opt.timeout_sec);
    }
}

TEST(IoRingFaultTest, RetryBudgetExhaustionFailsWithUnavailable)
{
    FaultSpec spec;
    spec.transient_read_error_prob = 0.9;
    spec.max_read_retries = 1;
    spec.retry_backoff_base_sec = 1e-6;
    const FaultInjector faults(spec);
    IoRingOptions opt;
    opt.faults = &faults;
    IoRing ring(opt);

    const auto got = runRequests(ring, 64);
    size_t failed = 0;
    for (const auto& c : got) {
        if (!c.status.ok()) {
            EXPECT_EQ(c.status.code(), StatusCode::kUnavailable);
            EXPECT_EQ(c.state, IoRequestState::kFailed);
            EXPECT_EQ(c.bytes, 0u);
            EXPECT_EQ(c.retries, 1u);
            ++failed;
        }
    }
    // p(fail) = 0.9^2 = 0.81: some of each outcome among 64 draws.
    EXPECT_GT(failed, 0u);
    EXPECT_LT(failed, 64u);
    EXPECT_EQ(ring.statsSnapshot().failed, failed);
}

TEST(IoRingFaultTest, FaultTimelineIsDeterministic)
{
    FaultSpec spec;
    spec.transient_read_error_prob = 0.4;
    spec.read_timeout_prob = 0.1;
    spec.corruption_prob = 0.1;
    spec.max_read_retries = 2;
    spec.retry_backoff_base_sec = 1e-6;
    const FaultInjector faults(spec);

    auto run = [&faults] {
        IoRingOptions opt;
        opt.faults = &faults;
        opt.workers = 4;  // interleaving must not matter
        IoRing ring(opt);
        return runRequests(ring, 96);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].status.code(), b[i].status.code()) << i;
        EXPECT_EQ(a[i].retries, b[i].retries) << i;
        EXPECT_DOUBLE_EQ(a[i].latency_sec, b[i].latency_sec) << i;
    }
}

// --- AsyncPartitionReader under faults --------------------------------------

RmConfig
smallConfig()
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 512;
    return cfg;
}

TEST(AsyncReaderFaultTest, BitFlipIsCaughtByPageCrcAndReread)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& encoded = store.partition(0);

    ColumnarFileReader blocking;
    RowBatch expect;
    ASSERT_TRUE(blocking.open(encoded).ok());
    ASSERT_TRUE(blocking.readAllInto(expect).ok());

    FaultSpec spec;
    spec.corruption_prob = 0.15;
    const FaultInjector faults(spec);
    IoRingOptions opt;
    opt.faults = &faults;
    IoRing ring(opt);
    AsyncPartitionReader reader(ring);
    RowBatch got;
    ASSERT_TRUE(reader.read(encoded, 0, got).ok());

    // Silently corrupted pages were detected by their CRC and re-read;
    // the delivered batch is still bit-identical.
    EXPECT_TRUE(got == expect);
    EXPECT_GT(reader.lastReadStats().corrupt_page_rereads, 0u);
    EXPECT_GT(ring.statsSnapshot().corruptions_injected, 0u);
}

TEST(AsyncReaderFaultTest, TransientAndTimeoutFaultsRecoverInFlight)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& encoded = store.partition(0);

    ColumnarFileReader blocking;
    RowBatch expect;
    ASSERT_TRUE(blocking.open(encoded).ok());
    ASSERT_TRUE(blocking.readAllInto(expect).ok());

    FaultSpec spec;
    spec.transient_read_error_prob = 0.2;
    spec.read_timeout_prob = 0.1;
    spec.retry_backoff_base_sec = 1e-6;
    const FaultInjector faults(spec);
    IoRingOptions opt;
    opt.faults = &faults;
    IoRing ring(opt);
    AsyncPartitionReader reader(ring);
    RowBatch got;
    ASSERT_TRUE(reader.read(encoded, 0, got).ok());
    EXPECT_TRUE(got == expect);
    EXPECT_GT(reader.lastReadStats().device_retries, 0u);
    const IoRingStats stats = ring.statsSnapshot();
    EXPECT_GT(stats.transient_errors + stats.timeouts, 0u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(AsyncReaderFaultTest, MixedFaultsStayDeterministicAndRecoverable)
{
    const RmConfig cfg = smallConfig();
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& encoded = store.partition(2);

    FaultSpec spec;
    spec.transient_read_error_prob = 0.15;
    spec.read_timeout_prob = 0.05;
    spec.corruption_prob = 0.1;
    spec.retry_backoff_base_sec = 1e-6;
    const FaultInjector faults(spec);

    auto run = [&](RowBatch& out, AsyncReadStats& rs) {
        IoRingOptions opt;
        opt.faults = &faults;
        IoRing ring(opt);
        AsyncPartitionReader reader(ring);
        ASSERT_TRUE(reader.read(encoded, 2, out).ok());
        rs = reader.lastReadStats();
    };
    RowBatch a, b;
    AsyncReadStats ra, rb;
    run(a, ra);
    run(b, rb);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(ra.device_retries, rb.device_retries);
    EXPECT_EQ(ra.corrupt_page_rereads, rb.corrupt_page_rereads);
    EXPECT_DOUBLE_EQ(ra.modeled_storage_sec, rb.modeled_storage_sec);
}

// --- PreprocessManager over a faulty ring -----------------------------------

uint64_t
drainChecksum(PreprocessManager& manager, size_t batches)
{
    manager.start(batches);
    uint64_t checksum = 0;
    for (;;) {
        auto mb = manager.nextBatch();
        if (mb == nullptr)
            break;
        uint64_t crc = crc32c(mb->dense.data(),
                              mb->dense.size() * sizeof(float));
        for (const auto& jag : mb->sparse) {
            crc = crc32c(jag.values.data(),
                         jag.values.size() * sizeof(int64_t), crc);
        }
        checksum ^= mix64(crc + mb->batch_size);
        manager.recycle(std::move(mb));
    }
    return checksum;
}

TEST(ManagerIoFaultTest, PipelineRecoversIdenticalDataOverFaultyRing)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 96;
    RawDataGenerator gen(cfg);
    const size_t batches = 16;

    PartitionStore clean_store(gen);
    PreprocessManager clean_mgr(cfg, clean_store,
                                PreprocessMode::kPreSto, 2);
    const uint64_t reference = drainChecksum(clean_mgr, batches);

    FaultSpec spec;
    spec.transient_read_error_prob = 0.1;
    spec.read_timeout_prob = 0.05;
    spec.corruption_prob = 0.05;
    spec.retry_backoff_base_sec = 1e-6;
    const FaultInjector faults(spec);
    PartitionStore store(gen);
    IoRingOptions opt;
    opt.faults = &faults;
    IoRing ring(opt);
    PreprocessManager manager(cfg, store, PreprocessMode::kPreSto, 2,
                              /*queue_capacity=*/8, /*prefetch=*/true,
                              /*decode_pool=*/nullptr, &ring);
    EXPECT_EQ(drainChecksum(manager, batches), reference);
    const RunStats stats = manager.stats();
    EXPECT_EQ(stats.batches_delivered, batches);
    // Ring-level retries and page re-reads surface in the run stats.
    EXPECT_GT(stats.transient_read_errors +
                  stats.corrupt_partition_refetches, 0u);
}

}  // namespace
}  // namespace presto
