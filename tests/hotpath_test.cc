/**
 * @file
 * Differential and allocation tests for the vectorized Transform hot
 * path: every SIMD dispatch level must produce bit-identical results to
 * the scalar reference ops, and the steady-state preprocess loop must
 * run without per-batch heap allocations.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <random>
#include <ranges>
#include <vector>

#include "columnar/columnar_file.h"
#include "common/batch_arena.h"
#include "common/crc32.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/isp_emulator.h"
#include "core/managers.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "ops/fast_math.h"
#include "ops/fast_ops.h"
#include "ops/hash.h"
#include "ops/ops.h"
#include "ops/plan.h"
#include "ops/preprocessor.h"
#include "ops/simd.h"

// --- Global allocation-counting hook --------------------------------------
// Replaces the global allocation functions for this test binary; counting
// is off unless a test arms it, so gtest's own allocations don't count.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<size_t> g_alloc_count{0};

void*
countedAlloc(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void* p = std::malloc(size ? size : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}
}  // namespace

void*
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace presto {
namespace {

/** Every dispatch level available on this machine, scalar first. */
std::vector<SimdLevel>
availableLevels()
{
    std::vector<SimdLevel> levels{SimdLevel::kScalar};
    if (detectedSimdLevel() >= SimdLevel::kAvx2)
        levels.push_back(SimdLevel::kAvx2);
    if (detectedSimdLevel() >= SimdLevel::kAvx512)
        levels.push_back(SimdLevel::kAvx512);
    return levels;
}

/** RAII restore of the active SIMD level. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level) : saved_(activeSimdLevel())
    {
        setSimdLevel(level);
    }
    ~ScopedSimdLevel() { setSimdLevel(saved_); }

  private:
    SimdLevel saved_;
};

std::vector<float>
adversarialFloats(size_t n, uint32_t seed)
{
    std::mt19937 rng(seed);
    std::vector<float> v(n);
    for (size_t i = 0; i < n; ++i) {
        switch (rng() % 8) {
          case 0: v[i] = std::numeric_limits<float>::quiet_NaN(); break;
          case 1: v[i] = std::numeric_limits<float>::infinity(); break;
          case 2: v[i] = -std::numeric_limits<float>::infinity(); break;
          case 3: v[i] = std::numeric_limits<float>::denorm_min(); break;
          case 4: v[i] = -1.0f * static_cast<float>(rng() % 1000); break;
          case 5:
            // Random bit pattern (may be NaN/inf/denormal/negative).
            v[i] = std::bit_cast<float>(static_cast<uint32_t>(rng()));
            break;
          default:
            v[i] = std::ldexp(static_cast<float>(rng()),
                              static_cast<int>(rng() % 40) - 20);
        }
    }
    return v;
}

TEST(SimdDispatchTest, DetectionIsMonotonicAndSettable)
{
    const SimdLevel detected = detectedSimdLevel();
    EXPECT_GE(detected, SimdLevel::kScalar);
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    EXPECT_EQ(activeSimdLevel(), SimdLevel::kScalar);
    // Requests above the detected level clamp down.
    EXPECT_EQ(setSimdLevel(SimdLevel::kAvx512), detected);
    EXPECT_EQ(activeSimdLevel(), detected);
}

TEST(HotpathDifferentialTest, SigridHashMatchesReferenceOnAllLevels)
{
    const std::vector<int64_t> divisors{
        1,       2,         3,        7,         1024,
        500000,  999983,    33554431, 33554432,  int64_t{1} << 26,
        (int64_t{1} << 40) + 7};
    std::mt19937_64 rng(42);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                     size_t{9}, size_t{4096}}) {
        std::vector<int64_t> input(n);
        for (auto& v : input)
            v = static_cast<int64_t>(rng());
        for (int64_t d : divisors) {
            const uint64_t seed = rng();
            std::vector<int64_t> expected(input);
            sigridHashInPlace(expected, seed, d);
            for (SimdLevel level : availableLevels()) {
                ScopedSimdLevel scoped(level);
                std::vector<int64_t> got(n, -1);
                sigridHashInto(input, got, seed, d);
                EXPECT_EQ(got, expected)
                    << "level=" << simdLevelName(level) << " d=" << d
                    << " n=" << n;
                // In-place (aliased) form.
                std::vector<int64_t> inplace(input);
                sigridHashInPlaceFast(inplace, seed, d);
                EXPECT_EQ(inplace, expected)
                    << "level=" << simdLevelName(level) << " d=" << d;
            }
        }
    }
}

TEST(HotpathDifferentialTest, LogMatchesReferenceOnAllLevels)
{
    for (size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                     size_t{17}, size_t{4096}}) {
        const auto input = adversarialFloats(n, 7 + n);
        std::vector<float> expected(input);
        logTransformInPlace(expected);
        for (SimdLevel level : availableLevels()) {
            ScopedSimdLevel scoped(level);
            std::vector<float> got(input);
            logTransformInPlaceFast(got);
            for (size_t i = 0; i < n; ++i) {
                EXPECT_EQ(std::bit_cast<uint32_t>(got[i]),
                          std::bit_cast<uint32_t>(expected[i]))
                    << "level=" << simdLevelName(level) << " i=" << i
                    << " in=" << input[i];
            }
        }
    }
}

TEST(HotpathDifferentialTest, FastLog1pNearLibm)
{
    // fastLog1p must stay within EXPECT_FLOAT_EQ's 4-ulp band of libm
    // (existing ops tests compare transformed output against std::log1p).
    const auto input = adversarialFloats(65536, 99);
    for (float v : input) {
        const float x = v < 0.0f ? 0.0f : v;
        if (std::isnan(x)) {
            EXPECT_TRUE(std::isnan(fastLog1p(x)));
            continue;
        }
        EXPECT_FLOAT_EQ(fastLog1p(x), std::log1p(x)) << "x=" << x;
    }
}

TEST(HotpathDifferentialTest, FillMissingMatchesReferenceOnAllLevels)
{
    for (size_t n : {size_t{0}, size_t{3}, size_t{16}, size_t{4097}}) {
        const auto input = adversarialFloats(n, 11 + n);
        std::vector<float> expected(input);
        fillMissingInPlace(expected, -1.5f);
        for (SimdLevel level : availableLevels()) {
            ScopedSimdLevel scoped(level);
            std::vector<float> got(input);
            fillMissingInPlaceFast(got, -1.5f);
            for (size_t i = 0; i < n; ++i) {
                EXPECT_EQ(std::bit_cast<uint32_t>(got[i]),
                          std::bit_cast<uint32_t>(expected[i]))
                    << "level=" << simdLevelName(level) << " i=" << i;
            }
        }
    }
}

TEST(HotpathDifferentialTest, BucketizeMatchesReferenceOnAllLevels)
{
    std::mt19937 rng(23);
    for (size_t num_bounds : {size_t{1}, size_t{2}, size_t{3}, size_t{37},
                              size_t{1024}, size_t{4096}}) {
        std::vector<float> b(num_bounds);
        float acc = -100.0f;
        for (auto& v : b) {
            // Duplicate boundaries are allowed (ties exercise the
            // upper_bound-vs-lower_bound distinction).
            acc += static_cast<float>(rng() % 3);
            v = acc;
        }
        const BucketBoundaries bounds(b);
        const FastBucketizer fast(bounds);
        for (size_t n : {size_t{0}, size_t{1}, size_t{8}, size_t{9},
                         size_t{4096}}) {
            auto values = adversarialFloats(n, 31 + n);
            // Mix in exact boundary hits.
            for (size_t i = 0; i + 2 < n; i += 3)
                values[i] = b[rng() % num_bounds];
            std::vector<int64_t> expected(n);
            bucketizeInto(values, bounds, expected);
            for (SimdLevel level : availableLevels()) {
                ScopedSimdLevel scoped(level);
                std::vector<int64_t> got(n, -1);
                fast.bucketizeInto(values, got);
                EXPECT_EQ(got, expected)
                    << "level=" << simdLevelName(level)
                    << " bounds=" << num_bounds << " n=" << n;
            }
            for (size_t i = 0; i < std::min(n, size_t{64}); ++i)
                EXPECT_EQ(fast.searchBucketId(values[i]), expected[i]);
        }
    }
}

/** Structural checksum over every tensor of a mini-batch. */
uint64_t
batchChecksum(const MiniBatch& mb)
{
    uint64_t crc = crc32c(mb.dense.data(), mb.dense.size() * sizeof(float));
    crc = crc32c(mb.labels.data(), mb.labels.size() * sizeof(float), crc);
    for (const auto& jag : mb.sparse) {
        crc = crc32c(jag.values.data(),
                     jag.values.size() * sizeof(int64_t), crc);
        crc = crc32c(jag.lengths.data(),
                     jag.lengths.size() * sizeof(uint32_t), crc);
    }
    return mix64(crc + mb.batch_size);
}

TEST(HotpathDifferentialTest, ArenaPreprocessMatchesAllocatingPath)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 512;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(3);
    const Preprocessor pre(cfg);

    ScopedSimdLevel scalar(SimdLevel::kScalar);
    const uint64_t want = batchChecksum(pre.preprocess(raw));

    for (SimdLevel level : availableLevels()) {
        ScopedSimdLevel scoped(level);
        BatchArena arena;
        MiniBatch mb;
        // Repeated reuse of the same arena + output shell must keep
        // producing the reference bits (second pass runs on recycled
        // capacity).
        for (int pass = 0; pass < 3; ++pass) {
            pre.preprocessInto(raw, mb, arena);
            EXPECT_EQ(batchChecksum(mb), want)
                << "level=" << simdLevelName(level) << " pass=" << pass;
        }
        EXPECT_EQ(arena.batches(), 3u);
    }
}

TEST(HotpathDifferentialTest, ReaderReuseMatchesFreshReader)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 256;
    RawDataGenerator gen(cfg);
    ColumnarFileWriter writer;

    ColumnarFileReader reused;
    RowBatch batch;
    for (uint64_t pid = 0; pid < 3; ++pid) {
        const auto encoded = writer.write(gen.generatePartition(pid), pid);
        ASSERT_TRUE(reused.open(encoded).ok());
        ASSERT_TRUE(reused.readAllInto(batch).ok());

        ColumnarFileReader fresh;
        ASSERT_TRUE(fresh.open(encoded).ok());
        auto fresh_batch = fresh.readAll();
        ASSERT_TRUE(fresh_batch.ok());

        ASSERT_EQ(batch.numRows(), fresh_batch->numRows());
        ASSERT_EQ(batch.numColumns(), fresh_batch->numColumns());
        for (size_t c = 0; c < batch.numColumns(); ++c) {
            if (batch.schema().feature(c).kind == FeatureKind::kSparse) {
                EXPECT_TRUE(std::ranges::equal(
                    batch.sparse(c).values(),
                    fresh_batch->sparse(c).values()));
                EXPECT_TRUE(std::ranges::equal(
                    batch.sparse(c).offsets(),
                    fresh_batch->sparse(c).offsets()));
            } else {
                // Bitwise compare: raw dense columns carry NaN missing
                // values, which float == would reject.
                EXPECT_TRUE(std::ranges::equal(
                    batch.dense(c).values(),
                    fresh_batch->dense(c).values(),
                    [](float a, float b) {
                        return std::bit_cast<uint32_t>(a) ==
                               std::bit_cast<uint32_t>(b);
                    }));
            }
        }
        EXPECT_EQ(reused.bytesTouched(), fresh.bytesTouched());
    }
}

TEST(ZeroAllocTest, SteadyStatePreprocessLoopDoesNotAllocate)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 512;
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);
    const Preprocessor pre(cfg);

    ColumnarFileReader reader;
    RowBatch raw;
    BatchArena arena;
    MiniBatch mb;
    // Warm-up sizes every buffer (arena slots, decode scratch, output
    // tensors); repeat so amortized growth is done too.
    for (int warm = 0; warm < 3; ++warm) {
        ASSERT_TRUE(reader.open(encoded).ok());
        ASSERT_TRUE(reader.readAllInto(raw).ok());
        pre.preprocessInto(raw, mb, arena);
    }
    const uint64_t want = batchChecksum(mb);
    const size_t slots = arena.slotAllocations();

    bool all_ok = true;
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 8; ++i) {
        all_ok = all_ok && reader.open(encoded).ok();
        all_ok = all_ok && reader.readAllInto(raw).ok();
        pre.preprocessInto(raw, mb, arena);
    }
    g_count_allocs.store(false);

    ASSERT_TRUE(all_ok);
    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "steady-state fetch+decode+transform loop heap-allocated";
    EXPECT_EQ(arena.slotAllocations(), slots);
    EXPECT_EQ(batchChecksum(mb), want);
}

TEST(ZeroAllocTest, SteadyStatePlanExecutorRunIntoDoesNotAllocate)
{
    // The fused bytecode VM behind PlanExecutor (and Preprocessor) must
    // stream values register-to-register: once buffers are sized, a
    // compiled plan's runInto performs zero heap allocations per batch.
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 512;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    const PlanExecutor exec(TransformPlan::standard(cfg), raw.schema());

    MiniBatch mb;
    BatchArena arena;
    for (int warm = 0; warm < 3; ++warm)
        exec.runInto(raw, mb, arena);
    const uint64_t want = batchChecksum(mb);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 8; ++i)
        exec.runInto(raw, mb, arena);
    g_count_allocs.store(false);

    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "fused-VM steady-state runInto heap-allocated";
    EXPECT_EQ(batchChecksum(mb), want);
}

TEST(ZeroAllocTest, SteadyStateDecodeLoopCoversEveryIntEncoding)
{
    // A file whose pages exercise the breadth of the integer encodings
    // (bit-packed dictionaries, RLE lengths, delta offsets, varints):
    // serial decode of all of them must stay allocation-free once the
    // reader's scratch buffers are warm.
    Schema schema;
    schema.add({"label", FeatureKind::kDense});
    schema.add({"few_distinct", FeatureKind::kSparse});
    schema.add({"monotone", FeatureKind::kSparse});
    schema.add({"uniform", FeatureKind::kSparse});
    schema.add({"runs", FeatureKind::kSparse});
    RowBatch batch(schema);
    constexpr size_t kRows = 4096;
    std::mt19937_64 rng(17);
    std::vector<float> labels(kRows);
    for (auto& l : labels)
        l = static_cast<float>(rng() % 2);
    batch.addColumn(DenseColumn(std::move(labels)));
    for (int shape = 0; shape < 4; ++shape) {
        std::vector<int64_t> ids;
        std::vector<uint32_t> offsets{0};
        int64_t acc = 0;
        for (size_t i = 0; i < kRows; ++i) {
            for (size_t j = 0; j < 3; ++j) {
                switch (shape) {
                  case 0:
                    ids.push_back(
                        static_cast<int64_t>(rng() % 11) * 999'983);
                    break;
                  case 1:
                    acc += static_cast<int64_t>(rng() % 50);
                    ids.push_back(acc);
                    break;
                  case 2:
                    ids.push_back(static_cast<int64_t>(rng()));
                    break;
                  default:
                    // Long runs over a multi-bit value range: RLE beats
                    // bit-packing here (width-0 packing only wins for
                    // genuinely constant pages, like the lengths).
                    ids.push_back(
                        static_cast<int64_t>((ids.size() / 113) % 5));
                    break;
                }
            }
            offsets.push_back(static_cast<uint32_t>(ids.size()));
        }
        batch.addColumn(SparseColumn(std::move(ids), std::move(offsets)));
    }
    const auto encoded = ColumnarFileWriter().write(batch, 0);

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(encoded).ok());
    std::vector<bool> seen(7, false);
    for (const auto& col : reader.footer().columns) {
        for (const auto& stream : col.streams) {
            size_t pos = stream.offset;
            for (uint32_t p = 0; p < stream.num_pages; ++p) {
                PageView page;
                ASSERT_TRUE(scanPageFrame(encoded, pos, page).ok());
                seen[static_cast<size_t>(page.encoding)] = true;
            }
        }
    }
    EXPECT_TRUE(seen[static_cast<size_t>(Encoding::kBitPacked)])
        << "few-distinct ids were expected to choose kBitPacked";
    EXPECT_TRUE(seen[static_cast<size_t>(Encoding::kRle)]);
    EXPECT_TRUE(seen[static_cast<size_t>(Encoding::kPlainI64)]);

    RowBatch raw;
    for (int warm = 0; warm < 3; ++warm) {
        ASSERT_TRUE(reader.open(encoded).ok());
        ASSERT_TRUE(reader.readAllInto(raw).ok());
    }
    ASSERT_EQ(raw, batch);

    bool all_ok = true;
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 8; ++i) {
        all_ok = all_ok && reader.open(encoded).ok();
        all_ok = all_ok && reader.readAllInto(raw).ok();
    }
    g_count_allocs.store(false);

    ASSERT_TRUE(all_ok);
    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "steady-state decode loop heap-allocated";
    EXPECT_EQ(raw, batch);
}

TEST(ZeroAllocTest, SteadyStateDecodeOfCompressedPagesDoesNotAllocate)
{
    // LZ-compressed pages route decode through the reader's decompress
    // scratch; once that is warm the loop must stay allocation-free,
    // same as the uncompressed path. RM2's clustered ids give the codec
    // real work — assert that so the test cannot pass vacuously.
    RmConfig cfg = rmConfig(2);
    cfg.batch_size = 512;
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);

    ColumnarFileReader reader;
    ASSERT_TRUE(reader.open(encoded).ok());
    size_t compressed_pages = 0;
    size_t entropy_pages = 0;
    for (const auto& col : reader.footer().columns) {
        for (const auto& stream : col.streams) {
            size_t pos = stream.offset;
            for (uint32_t p = 0; p < stream.num_pages; ++p) {
                PageView page;
                ASSERT_TRUE(scanPageFrame(encoded, pos, page).ok());
                if (page.codec != PageCodec::kNone)
                    ++compressed_pages;
                if (page.codec == PageCodec::kEntropy ||
                    page.codec == PageCodec::kLzEntropy)
                    ++entropy_pages;
            }
        }
    }
    ASSERT_GT(compressed_pages, 0u) << "no page compressed";
    // The default menu is kLzEntropy: entropy-coded pages must be part
    // of the loop (their table build + bitstream decode included) or
    // the zero-alloc claim would not cover the new codec.
    ASSERT_GT(entropy_pages, 0u) << "no page entropy-coded";

    RowBatch raw;
    for (int warm = 0; warm < 3; ++warm) {
        ASSERT_TRUE(reader.open(encoded).ok());
        ASSERT_TRUE(reader.readAllInto(raw).ok());
    }

    bool all_ok = true;
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 8; ++i) {
        all_ok = all_ok && reader.open(encoded).ok();
        all_ok = all_ok && reader.readAllInto(raw).ok();
    }
    g_count_allocs.store(false);

    ASSERT_TRUE(all_ok);
    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "compressed-page decode loop heap-allocated";
}

TEST(ZeroAllocTest, SteadyStateIspEmulatorLoopDoesNotAllocate)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 512;
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);

    IspEmulator emulator(cfg);
    MiniBatch mb;
    for (int warm = 0; warm < 3; ++warm)
        ASSERT_TRUE(emulator.processInto(encoded, mb).ok());
    const uint64_t want = batchChecksum(mb);

    bool all_ok = true;
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 8; ++i)
        all_ok = all_ok && emulator.processInto(encoded, mb).ok();
    g_count_allocs.store(false);

    ASSERT_TRUE(all_ok);
    EXPECT_EQ(g_alloc_count.load(), 0u)
        << "steady-state ISP emulator loop heap-allocated";
    EXPECT_EQ(batchChecksum(mb), want);
}

TEST(ParallelForTest, SkewedWorkStillRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<uint32_t>> hits(kN);
    std::atomic<uint64_t> index_sum{0};
    pool.parallelFor(kN, [&](size_t i) {
        if (i == 0) {
            // One pathologically expensive index: contiguous-split
            // scheduling would serialize a whole range behind it.
            volatile int sink = 0;
            for (int spin = 0; spin < 2000000; ++spin)
                sink = sink + 1;
        }
        hits[i].fetch_add(1, std::memory_order_relaxed);
        index_sum.fetch_add(i, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    EXPECT_EQ(index_sum.load(), uint64_t{kN} * (kN - 1) / 2);
}

TEST(PrefetchPipelineTest, DeliveredBatchesMatchUnstagedPath)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    constexpr size_t kBatches = 12;

    auto runChecksum = [&](bool prefetch) {
        PreprocessManager manager(cfg, store, PreprocessMode::kDisaggCpu,
                                  2, 4, prefetch);
        manager.start(kBatches);
        uint64_t sum = 0;
        size_t count = 0;
        for (;;) {
            auto mb = manager.nextBatch();
            if (mb == nullptr)
                break;
            EXPECT_TRUE(mb->consistent());
            sum ^= batchChecksum(*mb);
            ++count;
            manager.recycle(std::move(mb));
        }
        EXPECT_EQ(count, kBatches);
        EXPECT_EQ(manager.stats().batches_delivered, kBatches);
        return sum;
    };

    // XOR-folded checksums are order-independent, so the staged pipeline
    // must reproduce the unstaged delivery bit for bit.
    EXPECT_EQ(runChecksum(true), runChecksum(false));
}

TEST(PrefetchPipelineTest, FaultRecoverySurvivesStagedPipeline)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 128;
    RawDataGenerator gen(cfg);
    constexpr size_t kBatches = 10;

    FaultSpec spec;
    spec.transient_read_error_prob = 0.2;
    spec.corruption_prob = 0.2;
    const FaultInjector faults(spec);

    auto runChecksum = [&](bool prefetch, RunStats& stats) {
        PartitionStore store(gen);
        store.setFaultInjector(&faults);
        PreprocessManager manager(cfg, store, PreprocessMode::kDisaggCpu,
                                  2, 4, prefetch);
        manager.start(kBatches);
        uint64_t sum = 0;
        size_t count = 0;
        for (;;) {
            auto mb = manager.nextBatch();
            if (mb == nullptr)
                break;
            sum ^= batchChecksum(*mb);
            ++count;
            manager.recycle(std::move(mb));
        }
        EXPECT_EQ(count, kBatches);
        stats = manager.stats();
        return sum;
    };

    RunStats staged, unstaged;
    const uint64_t staged_sum = runChecksum(true, staged);
    const uint64_t unstaged_sum = runChecksum(false, unstaged);
    // Injected faults never change delivered bits — only retry counters.
    EXPECT_EQ(staged_sum, unstaged_sum);
    EXPECT_GT(staged.transient_read_errors, 0u);
    EXPECT_EQ(staged.transient_read_errors, unstaged.transient_read_errors);
    EXPECT_EQ(staged.corrupt_partition_refetches,
              unstaged.corrupt_partition_refetches);
}

}  // namespace
}  // namespace presto
