/**
 * @file
 * Tests for the elastic ISP-device pool scheduler.
 */
#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "core/pool_scheduler.h"
#include "core/provisioner.h"

namespace presto {
namespace {

PoolJob
job(double arrival, double duration, int rm = 1, int gpus = 8)
{
    PoolJob j;
    j.arrival_sec = arrival;
    j.duration_sec = duration;
    j.rm_id = rm;
    j.num_gpus = gpus;
    return j;
}

TEST(PoolSchedulerTest, DevicesMatchProvisioner)
{
    PoolScheduler pool(64);
    for (int rm = 1; rm <= 5; ++rm) {
        Provisioner prov(rmConfig(rm));
        EXPECT_EQ(pool.devicesForJob(job(0, 1, rm, 8)),
                  prov.provisionIsp(8, IspParams::smartSsd()).workers);
    }
}

TEST(PoolSchedulerTest, AmpleCapacityMeansNoWaiting)
{
    PoolScheduler pool(64);
    const PoolResult r =
        pool.run({job(0, 100, 5), job(10, 100, 5), job(20, 100, 1)});
    for (const auto& jr : r.jobs) {
        EXPECT_GT(jr.devices, 0);
        EXPECT_DOUBLE_EQ(jr.waitSec(), 0.0);
    }
    EXPECT_DOUBLE_EQ(r.mean_wait_sec, 0.0);
}

TEST(PoolSchedulerTest, ContentionQueuesFcfs)
{
    // RM5 jobs need ~8 devices each; a pool of 8 serializes them.
    PoolScheduler pool(8);
    const PoolResult r =
        pool.run({job(0, 100, 5), job(1, 100, 5), job(2, 100, 5)});
    EXPECT_DOUBLE_EQ(r.jobs[0].start_sec, 0.0);
    EXPECT_DOUBLE_EQ(r.jobs[1].start_sec, 100.0);
    EXPECT_DOUBLE_EQ(r.jobs[2].start_sec, 200.0);
    EXPECT_DOUBLE_EQ(r.makespan_sec, 300.0);
    EXPECT_GT(r.mean_wait_sec, 0.0);
}

TEST(PoolSchedulerTest, PeakUsageNeverExceedsPool)
{
    PoolScheduler pool(12);
    std::vector<PoolJob> jobs;
    for (int i = 0; i < 10; ++i)
        jobs.push_back(job(i * 5.0, 50.0, (i % 5) + 1));
    const PoolResult r = pool.run(jobs);
    EXPECT_LE(r.peak_devices_in_use, 12);
    EXPECT_GT(r.peak_devices_in_use, 0);
    EXPECT_LE(r.utilization(12), 1.0);
}

TEST(PoolSchedulerTest, OversizedJobIsRejected)
{
    PoolScheduler pool(2);
    const PoolResult r = pool.run({job(0, 100, 5, 64), job(0, 10, 1, 1)});
    EXPECT_EQ(r.jobs[0].devices, 0);  // needs far more than 2 devices
    EXPECT_TRUE(r.jobs[0].rejected);
    EXPECT_NE(r.jobs[0].reject_reason.find("exceeds pool"),
              std::string::npos);
    EXPECT_GT(r.jobs[1].devices, 0);  // small job still runs
    EXPECT_FALSE(r.jobs[1].rejected);
    EXPECT_TRUE(r.jobs[1].reject_reason.empty());
    EXPECT_DOUBLE_EQ(r.jobs[1].waitSec(), 0.0);
}

TEST(PoolSchedulerTest, DeviceHoursAccounting)
{
    PoolScheduler pool(32);
    const PoolResult r = pool.run({job(0, 10, 5)});
    const int devices = pool.devicesForJob(job(0, 10, 5));
    EXPECT_DOUBLE_EQ(r.device_busy_sec, 10.0 * devices);
    EXPECT_DOUBLE_EQ(r.makespan_sec, 10.0);
    EXPECT_NEAR(r.utilization(32),
                10.0 * devices / (10.0 * 32), 1e-12);
}

TEST(PoolSchedulerTest, SmallJobsShareThePoolConcurrently)
{
    // Two RM1 jobs (2 devices each) overlap in a 4-device pool.
    PoolScheduler pool(4);
    const PoolResult r = pool.run({job(0, 100, 1), job(0, 100, 1)});
    EXPECT_DOUBLE_EQ(r.jobs[0].waitSec(), 0.0);
    EXPECT_DOUBLE_EQ(r.jobs[1].waitSec(), 0.0);
    EXPECT_EQ(r.peak_devices_in_use, 4);
    EXPECT_DOUBLE_EQ(r.makespan_sec, 100.0);
}

TEST(PoolSchedulerTest, FcfsHeadOfLineBlocksBackfill)
{
    // devices: RM1 -> 2, RM5 -> 8. Pool 8: job0 (RM1) runs; job1 (RM5)
    // cannot fit alongside and blocks job2 (RM1) behind it even though
    // job2 would fit — strict FCFS, no backfilling.
    PoolScheduler pool(8);
    const PoolResult r = pool.run(
        {job(0, 100, 1), job(1, 100, 5), job(2, 10, 1)});
    EXPECT_DOUBLE_EQ(r.jobs[0].start_sec, 0.0);
    EXPECT_DOUBLE_EQ(r.jobs[1].start_sec, 100.0);
    EXPECT_GE(r.jobs[2].start_sec, r.jobs[1].start_sec);
}

TEST(PoolSchedulerTest, DeterministicAcrossRuns)
{
    PoolScheduler pool(16);
    std::vector<PoolJob> jobs;
    for (int i = 0; i < 20; ++i)
        jobs.push_back(job(i * 3.0, 40.0 + i, (i % 5) + 1));
    const PoolResult a = pool.run(jobs);
    const PoolResult b = pool.run(jobs);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.jobs[i].start_sec, b.jobs[i].start_sec);
        EXPECT_DOUBLE_EQ(a.jobs[i].finish_sec, b.jobs[i].finish_sec);
    }
}

TEST(PoolSchedulerTest, RejectKindsAreTagged)
{
    PoolScheduler pool(2);
    const PoolResult r = pool.run({job(0, 100, 5, 64), job(0, 10, 1, 1)});
    EXPECT_EQ(r.jobs[0].reject_kind, RejectKind::kDemandExceedsPool);
    EXPECT_EQ(r.jobs[1].reject_kind, RejectKind::kNone);
    EXPECT_STREQ(rejectKindName(r.jobs[0].reject_kind),
                 "demand_exceeds_pool");
    EXPECT_STREQ(rejectKindName(RejectKind::kCapacityLost),
                 "capacity_lost");
    EXPECT_STREQ(rejectKindName(RejectKind::kSloBudget), "slo_budget");
    EXPECT_STREQ(rejectKindName(RejectKind::kNone), "none");
}

TEST(PoolSchedulerTest, SloBudgetRejectsUpFront)
{
    // RM5 occupies the whole 8-device pool for 100s; a job arriving
    // at t=1 projects a ~99s wait for capacity.
    PoolScheduler pool(8);
    PoolJob blocked = job(1, 10, 5);
    blocked.max_wait_slo_sec = 50.0;
    PoolJob patient = job(2, 10, 5);
    patient.max_wait_slo_sec = 300.0;
    const PoolResult r = pool.run({job(0, 100, 5), blocked, patient});

    EXPECT_FALSE(r.jobs[0].rejected);
    EXPECT_TRUE(r.jobs[1].rejected);
    EXPECT_EQ(r.jobs[1].reject_kind, RejectKind::kSloBudget);
    EXPECT_NE(r.jobs[1].reject_reason.find("SLO budget"),
              std::string::npos);
    EXPECT_NEAR(r.jobs[1].projected_wait_sec, 99.0, 1e-9);

    // Same projection, bigger budget: admitted and served after job 0.
    EXPECT_FALSE(r.jobs[2].rejected);
    EXPECT_DOUBLE_EQ(r.jobs[2].start_sec, 100.0);

    // A declared budget that the projection honors costs nothing.
    PoolJob easy = job(0, 10, 5);
    easy.max_wait_slo_sec = 1.0;
    const PoolResult idle = pool.run({easy});
    EXPECT_FALSE(idle.jobs[0].rejected);
    EXPECT_DOUBLE_EQ(idle.jobs[0].projected_wait_sec, 0.0);
}

TEST(PoolSchedulerTest, ReplacementRequestsAreCounted)
{
    // One RM5 job holds all 8 devices; two busy-device failures each
    // queue a replacement request that can never be granted before the
    // job ends.
    PoolScheduler pool(8);
    FaultSpec spec;
    spec.fail_stops = {{0, 10.0}, {1, 20.0}};
    const FaultInjector faults(spec);
    const PoolResult r = pool.run({job(0, 100, 5)}, faults);

    EXPECT_EQ(r.devices_failed, 2);
    EXPECT_EQ(r.replacements_requested, 2);
    EXPECT_EQ(r.replacements_granted, 0);
    EXPECT_EQ(r.jobs[0].devices_lost, 2);

    // With a spare device idle, the first failure is absorbed silently
    // and no replacement is requested for it.
    PoolScheduler roomy(9);
    FaultSpec one;
    one.fail_stops = {{0, 10.0}};
    const PoolResult absorbed = roomy.run({job(0, 100, 5)},
                                          FaultInjector(one));
    EXPECT_EQ(absorbed.devices_failed, 1);
    EXPECT_EQ(absorbed.replacements_requested, 0);
}

TEST(PoolSchedulerTest, StarvedJobTaggedCapacityLost)
{
    // The RM5 job runs on all 8 devices and loses one permanently; the
    // follower needs 8 devices but only 7 survive the trace.
    PoolScheduler pool(8);
    FaultSpec spec;
    spec.fail_stops = {{0, 10.0}};
    const FaultInjector faults(spec);
    const PoolResult r =
        pool.run({job(0, 100, 5), job(5, 10, 5)}, faults);

    EXPECT_FALSE(r.jobs[0].rejected);
    EXPECT_TRUE(r.jobs[1].rejected);
    EXPECT_EQ(r.jobs[1].reject_kind, RejectKind::kCapacityLost);
    EXPECT_NE(r.jobs[1].reject_reason.find("capacity lost"),
              std::string::npos);
}

TEST(PoolSchedulerDeathTest, BadInputsPanic)
{
    EXPECT_DEATH(PoolScheduler(0), "at least one device");
    PoolScheduler pool(4);
    EXPECT_DEATH(pool.run({job(0, 0, 1)}), "positive");
}

}  // namespace
}  // namespace presto
