file(REMOVE_RECURSE
  "CMakeFiles/bench_pool.dir/bench_pool.cc.o"
  "CMakeFiles/bench_pool.dir/bench_pool.cc.o.d"
  "bench_pool"
  "bench_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
