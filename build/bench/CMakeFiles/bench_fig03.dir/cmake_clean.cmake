file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03.dir/bench_fig03.cc.o"
  "CMakeFiles/bench_fig03.dir/bench_fig03.cc.o.d"
  "bench_fig03"
  "bench_fig03.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
