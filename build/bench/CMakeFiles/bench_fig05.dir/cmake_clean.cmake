file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05.dir/bench_fig05.cc.o"
  "CMakeFiles/bench_fig05.dir/bench_fig05.cc.o.d"
  "bench_fig05"
  "bench_fig05.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
