file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06.dir/bench_fig06.cc.o"
  "CMakeFiles/bench_fig06.dir/bench_fig06.cc.o.d"
  "bench_fig06"
  "bench_fig06.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
