
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ops_kernels.cc" "bench/CMakeFiles/bench_ops_kernels.dir/bench_ops_kernels.cc.o" "gcc" "bench/CMakeFiles/bench_ops_kernels.dir/bench_ops_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/presto_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/presto_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/presto_models.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/presto_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/presto_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/presto_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/presto_tabular.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
