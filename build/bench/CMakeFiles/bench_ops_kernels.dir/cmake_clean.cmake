file(REMOVE_RECURSE
  "CMakeFiles/bench_ops_kernels.dir/bench_ops_kernels.cc.o"
  "CMakeFiles/bench_ops_kernels.dir/bench_ops_kernels.cc.o.d"
  "bench_ops_kernels"
  "bench_ops_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ops_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
