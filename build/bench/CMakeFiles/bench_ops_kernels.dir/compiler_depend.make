# Empty compiler generated dependencies file for bench_ops_kernels.
# This may be replaced when dependencies are built.
