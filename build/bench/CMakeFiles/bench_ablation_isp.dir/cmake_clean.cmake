file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_isp.dir/bench_ablation_isp.cc.o"
  "CMakeFiles/bench_ablation_isp.dir/bench_ablation_isp.cc.o.d"
  "bench_ablation_isp"
  "bench_ablation_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
