# Empty compiler generated dependencies file for bench_ablation_isp.
# This may be replaced when dependencies are built.
