file(REMOVE_RECURSE
  "CMakeFiles/presto_cli.dir/presto_cli.cc.o"
  "CMakeFiles/presto_cli.dir/presto_cli.cc.o.d"
  "presto_cli"
  "presto_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
