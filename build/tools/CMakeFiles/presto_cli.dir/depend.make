# Empty dependencies file for presto_cli.
# This may be replaced when dependencies are built.
