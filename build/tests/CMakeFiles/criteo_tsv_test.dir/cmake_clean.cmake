file(REMOVE_RECURSE
  "CMakeFiles/criteo_tsv_test.dir/criteo_tsv_test.cc.o"
  "CMakeFiles/criteo_tsv_test.dir/criteo_tsv_test.cc.o.d"
  "criteo_tsv_test"
  "criteo_tsv_test.pdb"
  "criteo_tsv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criteo_tsv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
