# Empty compiler generated dependencies file for criteo_tsv_test.
# This may be replaced when dependencies are built.
