# Empty compiler generated dependencies file for tabular_test.
# This may be replaced when dependencies are built.
