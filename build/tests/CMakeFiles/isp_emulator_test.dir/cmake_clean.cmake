file(REMOVE_RECURSE
  "CMakeFiles/isp_emulator_test.dir/isp_emulator_test.cc.o"
  "CMakeFiles/isp_emulator_test.dir/isp_emulator_test.cc.o.d"
  "isp_emulator_test"
  "isp_emulator_test.pdb"
  "isp_emulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_emulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
