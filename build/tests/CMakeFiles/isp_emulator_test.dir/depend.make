# Empty dependencies file for isp_emulator_test.
# This may be replaced when dependencies are built.
