# Empty dependencies file for rowfile_test.
# This may be replaced when dependencies are built.
