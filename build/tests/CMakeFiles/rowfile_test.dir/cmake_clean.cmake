file(REMOVE_RECURSE
  "CMakeFiles/rowfile_test.dir/rowfile_test.cc.o"
  "CMakeFiles/rowfile_test.dir/rowfile_test.cc.o.d"
  "rowfile_test"
  "rowfile_test.pdb"
  "rowfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rowfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
