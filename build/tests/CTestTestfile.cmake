# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tabular_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/columnar_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/cachesim_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rowfile_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/dlrm_test[1]_include.cmake")
include("/root/repo/build/tests/criteo_tsv_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
include("/root/repo/build/tests/isp_emulator_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
