# Empty compiler generated dependencies file for columnar_inspect.
# This may be replaced when dependencies are built.
