file(REMOVE_RECURSE
  "CMakeFiles/columnar_inspect.dir/columnar_inspect.cpp.o"
  "CMakeFiles/columnar_inspect.dir/columnar_inspect.cpp.o.d"
  "columnar_inspect"
  "columnar_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/columnar_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
