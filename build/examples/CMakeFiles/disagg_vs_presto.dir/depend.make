# Empty dependencies file for disagg_vs_presto.
# This may be replaced when dependencies are built.
