file(REMOVE_RECURSE
  "CMakeFiles/disagg_vs_presto.dir/disagg_vs_presto.cpp.o"
  "CMakeFiles/disagg_vs_presto.dir/disagg_vs_presto.cpp.o.d"
  "disagg_vs_presto"
  "disagg_vs_presto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disagg_vs_presto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
