file(REMOVE_RECURSE
  "CMakeFiles/feature_engineering.dir/feature_engineering.cpp.o"
  "CMakeFiles/feature_engineering.dir/feature_engineering.cpp.o.d"
  "feature_engineering"
  "feature_engineering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
