# Empty compiler generated dependencies file for train_dlrm.
# This may be replaced when dependencies are built.
