file(REMOVE_RECURSE
  "CMakeFiles/train_dlrm.dir/train_dlrm.cpp.o"
  "CMakeFiles/train_dlrm.dir/train_dlrm.cpp.o.d"
  "train_dlrm"
  "train_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
