
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/criteo_tsv.cc" "src/datagen/CMakeFiles/presto_datagen.dir/criteo_tsv.cc.o" "gcc" "src/datagen/CMakeFiles/presto_datagen.dir/criteo_tsv.cc.o.d"
  "/root/repo/src/datagen/distributions.cc" "src/datagen/CMakeFiles/presto_datagen.dir/distributions.cc.o" "gcc" "src/datagen/CMakeFiles/presto_datagen.dir/distributions.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "src/datagen/CMakeFiles/presto_datagen.dir/generator.cc.o" "gcc" "src/datagen/CMakeFiles/presto_datagen.dir/generator.cc.o.d"
  "/root/repo/src/datagen/rm_config.cc" "src/datagen/CMakeFiles/presto_datagen.dir/rm_config.cc.o" "gcc" "src/datagen/CMakeFiles/presto_datagen.dir/rm_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/presto_tabular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
