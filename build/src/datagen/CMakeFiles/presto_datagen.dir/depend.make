# Empty dependencies file for presto_datagen.
# This may be replaced when dependencies are built.
