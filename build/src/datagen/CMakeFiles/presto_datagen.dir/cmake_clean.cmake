file(REMOVE_RECURSE
  "CMakeFiles/presto_datagen.dir/criteo_tsv.cc.o"
  "CMakeFiles/presto_datagen.dir/criteo_tsv.cc.o.d"
  "CMakeFiles/presto_datagen.dir/distributions.cc.o"
  "CMakeFiles/presto_datagen.dir/distributions.cc.o.d"
  "CMakeFiles/presto_datagen.dir/generator.cc.o"
  "CMakeFiles/presto_datagen.dir/generator.cc.o.d"
  "CMakeFiles/presto_datagen.dir/rm_config.cc.o"
  "CMakeFiles/presto_datagen.dir/rm_config.cc.o.d"
  "libpresto_datagen.a"
  "libpresto_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
