file(REMOVE_RECURSE
  "libpresto_datagen.a"
)
