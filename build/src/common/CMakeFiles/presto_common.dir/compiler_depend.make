# Empty compiler generated dependencies file for presto_common.
# This may be replaced when dependencies are built.
