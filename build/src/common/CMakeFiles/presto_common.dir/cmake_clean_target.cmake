file(REMOVE_RECURSE
  "libpresto_common.a"
)
