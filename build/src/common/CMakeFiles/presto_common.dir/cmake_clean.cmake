file(REMOVE_RECURSE
  "CMakeFiles/presto_common.dir/crc32.cc.o"
  "CMakeFiles/presto_common.dir/crc32.cc.o.d"
  "CMakeFiles/presto_common.dir/logging.cc.o"
  "CMakeFiles/presto_common.dir/logging.cc.o.d"
  "CMakeFiles/presto_common.dir/stats.cc.o"
  "CMakeFiles/presto_common.dir/stats.cc.o.d"
  "CMakeFiles/presto_common.dir/status.cc.o"
  "CMakeFiles/presto_common.dir/status.cc.o.d"
  "CMakeFiles/presto_common.dir/table_printer.cc.o"
  "CMakeFiles/presto_common.dir/table_printer.cc.o.d"
  "CMakeFiles/presto_common.dir/thread_pool.cc.o"
  "CMakeFiles/presto_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/presto_common.dir/units.cc.o"
  "CMakeFiles/presto_common.dir/units.cc.o.d"
  "libpresto_common.a"
  "libpresto_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
