# Empty compiler generated dependencies file for presto_columnar.
# This may be replaced when dependencies are built.
