file(REMOVE_RECURSE
  "libpresto_columnar.a"
)
