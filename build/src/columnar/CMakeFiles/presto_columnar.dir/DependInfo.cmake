
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/columnar_file.cc" "src/columnar/CMakeFiles/presto_columnar.dir/columnar_file.cc.o" "gcc" "src/columnar/CMakeFiles/presto_columnar.dir/columnar_file.cc.o.d"
  "/root/repo/src/columnar/dataset.cc" "src/columnar/CMakeFiles/presto_columnar.dir/dataset.cc.o" "gcc" "src/columnar/CMakeFiles/presto_columnar.dir/dataset.cc.o.d"
  "/root/repo/src/columnar/encoding.cc" "src/columnar/CMakeFiles/presto_columnar.dir/encoding.cc.o" "gcc" "src/columnar/CMakeFiles/presto_columnar.dir/encoding.cc.o.d"
  "/root/repo/src/columnar/page.cc" "src/columnar/CMakeFiles/presto_columnar.dir/page.cc.o" "gcc" "src/columnar/CMakeFiles/presto_columnar.dir/page.cc.o.d"
  "/root/repo/src/columnar/row_file.cc" "src/columnar/CMakeFiles/presto_columnar.dir/row_file.cc.o" "gcc" "src/columnar/CMakeFiles/presto_columnar.dir/row_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/presto_tabular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
