file(REMOVE_RECURSE
  "CMakeFiles/presto_columnar.dir/columnar_file.cc.o"
  "CMakeFiles/presto_columnar.dir/columnar_file.cc.o.d"
  "CMakeFiles/presto_columnar.dir/dataset.cc.o"
  "CMakeFiles/presto_columnar.dir/dataset.cc.o.d"
  "CMakeFiles/presto_columnar.dir/encoding.cc.o"
  "CMakeFiles/presto_columnar.dir/encoding.cc.o.d"
  "CMakeFiles/presto_columnar.dir/page.cc.o"
  "CMakeFiles/presto_columnar.dir/page.cc.o.d"
  "CMakeFiles/presto_columnar.dir/row_file.cc.o"
  "CMakeFiles/presto_columnar.dir/row_file.cc.o.d"
  "libpresto_columnar.a"
  "libpresto_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
