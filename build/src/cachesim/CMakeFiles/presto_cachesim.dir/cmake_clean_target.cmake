file(REMOVE_RECURSE
  "libpresto_cachesim.a"
)
