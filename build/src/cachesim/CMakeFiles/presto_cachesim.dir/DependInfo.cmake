
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/cache.cc" "src/cachesim/CMakeFiles/presto_cachesim.dir/cache.cc.o" "gcc" "src/cachesim/CMakeFiles/presto_cachesim.dir/cache.cc.o.d"
  "/root/repo/src/cachesim/op_traces.cc" "src/cachesim/CMakeFiles/presto_cachesim.dir/op_traces.cc.o" "gcc" "src/cachesim/CMakeFiles/presto_cachesim.dir/op_traces.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/presto_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/presto_tabular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
