# Empty dependencies file for presto_cachesim.
# This may be replaced when dependencies are built.
