file(REMOVE_RECURSE
  "CMakeFiles/presto_cachesim.dir/cache.cc.o"
  "CMakeFiles/presto_cachesim.dir/cache.cc.o.d"
  "CMakeFiles/presto_cachesim.dir/op_traces.cc.o"
  "CMakeFiles/presto_cachesim.dir/op_traces.cc.o.d"
  "libpresto_cachesim.a"
  "libpresto_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
