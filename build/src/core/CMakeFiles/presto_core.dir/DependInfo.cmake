
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/data_loader.cc" "src/core/CMakeFiles/presto_core.dir/data_loader.cc.o" "gcc" "src/core/CMakeFiles/presto_core.dir/data_loader.cc.o.d"
  "/root/repo/src/core/fleet.cc" "src/core/CMakeFiles/presto_core.dir/fleet.cc.o" "gcc" "src/core/CMakeFiles/presto_core.dir/fleet.cc.o.d"
  "/root/repo/src/core/isp_emulator.cc" "src/core/CMakeFiles/presto_core.dir/isp_emulator.cc.o" "gcc" "src/core/CMakeFiles/presto_core.dir/isp_emulator.cc.o.d"
  "/root/repo/src/core/managers.cc" "src/core/CMakeFiles/presto_core.dir/managers.cc.o" "gcc" "src/core/CMakeFiles/presto_core.dir/managers.cc.o.d"
  "/root/repo/src/core/partition_store.cc" "src/core/CMakeFiles/presto_core.dir/partition_store.cc.o" "gcc" "src/core/CMakeFiles/presto_core.dir/partition_store.cc.o.d"
  "/root/repo/src/core/pool_scheduler.cc" "src/core/CMakeFiles/presto_core.dir/pool_scheduler.cc.o" "gcc" "src/core/CMakeFiles/presto_core.dir/pool_scheduler.cc.o.d"
  "/root/repo/src/core/provisioner.cc" "src/core/CMakeFiles/presto_core.dir/provisioner.cc.o" "gcc" "src/core/CMakeFiles/presto_core.dir/provisioner.cc.o.d"
  "/root/repo/src/core/training_pipeline.cc" "src/core/CMakeFiles/presto_core.dir/training_pipeline.cc.o" "gcc" "src/core/CMakeFiles/presto_core.dir/training_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/presto_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/presto_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/presto_models.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/presto_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/presto_tabular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
