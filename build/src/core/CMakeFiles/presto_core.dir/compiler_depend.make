# Empty compiler generated dependencies file for presto_core.
# This may be replaced when dependencies are built.
