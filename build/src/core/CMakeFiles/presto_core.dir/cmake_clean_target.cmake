file(REMOVE_RECURSE
  "libpresto_core.a"
)
