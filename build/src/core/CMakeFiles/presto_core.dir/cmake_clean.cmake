file(REMOVE_RECURSE
  "CMakeFiles/presto_core.dir/data_loader.cc.o"
  "CMakeFiles/presto_core.dir/data_loader.cc.o.d"
  "CMakeFiles/presto_core.dir/fleet.cc.o"
  "CMakeFiles/presto_core.dir/fleet.cc.o.d"
  "CMakeFiles/presto_core.dir/isp_emulator.cc.o"
  "CMakeFiles/presto_core.dir/isp_emulator.cc.o.d"
  "CMakeFiles/presto_core.dir/managers.cc.o"
  "CMakeFiles/presto_core.dir/managers.cc.o.d"
  "CMakeFiles/presto_core.dir/partition_store.cc.o"
  "CMakeFiles/presto_core.dir/partition_store.cc.o.d"
  "CMakeFiles/presto_core.dir/pool_scheduler.cc.o"
  "CMakeFiles/presto_core.dir/pool_scheduler.cc.o.d"
  "CMakeFiles/presto_core.dir/provisioner.cc.o"
  "CMakeFiles/presto_core.dir/provisioner.cc.o.d"
  "CMakeFiles/presto_core.dir/training_pipeline.cc.o"
  "CMakeFiles/presto_core.dir/training_pipeline.cc.o.d"
  "libpresto_core.a"
  "libpresto_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
