# Empty dependencies file for presto_dlrm.
# This may be replaced when dependencies are built.
