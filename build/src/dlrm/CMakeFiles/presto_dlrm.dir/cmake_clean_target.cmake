file(REMOVE_RECURSE
  "libpresto_dlrm.a"
)
