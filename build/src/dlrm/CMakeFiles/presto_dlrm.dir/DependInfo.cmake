
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dlrm/dlrm.cc" "src/dlrm/CMakeFiles/presto_dlrm.dir/dlrm.cc.o" "gcc" "src/dlrm/CMakeFiles/presto_dlrm.dir/dlrm.cc.o.d"
  "/root/repo/src/dlrm/layers.cc" "src/dlrm/CMakeFiles/presto_dlrm.dir/layers.cc.o" "gcc" "src/dlrm/CMakeFiles/presto_dlrm.dir/layers.cc.o.d"
  "/root/repo/src/dlrm/metrics.cc" "src/dlrm/CMakeFiles/presto_dlrm.dir/metrics.cc.o" "gcc" "src/dlrm/CMakeFiles/presto_dlrm.dir/metrics.cc.o.d"
  "/root/repo/src/dlrm/tensor.cc" "src/dlrm/CMakeFiles/presto_dlrm.dir/tensor.cc.o" "gcc" "src/dlrm/CMakeFiles/presto_dlrm.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/presto_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/presto_tabular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
