file(REMOVE_RECURSE
  "CMakeFiles/presto_dlrm.dir/dlrm.cc.o"
  "CMakeFiles/presto_dlrm.dir/dlrm.cc.o.d"
  "CMakeFiles/presto_dlrm.dir/layers.cc.o"
  "CMakeFiles/presto_dlrm.dir/layers.cc.o.d"
  "CMakeFiles/presto_dlrm.dir/metrics.cc.o"
  "CMakeFiles/presto_dlrm.dir/metrics.cc.o.d"
  "CMakeFiles/presto_dlrm.dir/tensor.cc.o"
  "CMakeFiles/presto_dlrm.dir/tensor.cc.o.d"
  "libpresto_dlrm.a"
  "libpresto_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
