file(REMOVE_RECURSE
  "libpresto_models.a"
)
