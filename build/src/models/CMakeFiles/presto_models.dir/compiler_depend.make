# Empty compiler generated dependencies file for presto_models.
# This may be replaced when dependencies are built.
