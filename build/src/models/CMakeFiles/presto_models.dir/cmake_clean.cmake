file(REMOVE_RECURSE
  "CMakeFiles/presto_models.dir/cost_model.cc.o"
  "CMakeFiles/presto_models.dir/cost_model.cc.o.d"
  "CMakeFiles/presto_models.dir/cpu_model.cc.o"
  "CMakeFiles/presto_models.dir/cpu_model.cc.o.d"
  "CMakeFiles/presto_models.dir/data_size.cc.o"
  "CMakeFiles/presto_models.dir/data_size.cc.o.d"
  "CMakeFiles/presto_models.dir/fpga_resources.cc.o"
  "CMakeFiles/presto_models.dir/fpga_resources.cc.o.d"
  "CMakeFiles/presto_models.dir/gpu_model.cc.o"
  "CMakeFiles/presto_models.dir/gpu_model.cc.o.d"
  "CMakeFiles/presto_models.dir/isp_model.cc.o"
  "CMakeFiles/presto_models.dir/isp_model.cc.o.d"
  "CMakeFiles/presto_models.dir/network_model.cc.o"
  "CMakeFiles/presto_models.dir/network_model.cc.o.d"
  "CMakeFiles/presto_models.dir/ssd_model.cc.o"
  "CMakeFiles/presto_models.dir/ssd_model.cc.o.d"
  "libpresto_models.a"
  "libpresto_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
