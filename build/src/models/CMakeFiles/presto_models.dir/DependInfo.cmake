
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/cost_model.cc" "src/models/CMakeFiles/presto_models.dir/cost_model.cc.o" "gcc" "src/models/CMakeFiles/presto_models.dir/cost_model.cc.o.d"
  "/root/repo/src/models/cpu_model.cc" "src/models/CMakeFiles/presto_models.dir/cpu_model.cc.o" "gcc" "src/models/CMakeFiles/presto_models.dir/cpu_model.cc.o.d"
  "/root/repo/src/models/data_size.cc" "src/models/CMakeFiles/presto_models.dir/data_size.cc.o" "gcc" "src/models/CMakeFiles/presto_models.dir/data_size.cc.o.d"
  "/root/repo/src/models/fpga_resources.cc" "src/models/CMakeFiles/presto_models.dir/fpga_resources.cc.o" "gcc" "src/models/CMakeFiles/presto_models.dir/fpga_resources.cc.o.d"
  "/root/repo/src/models/gpu_model.cc" "src/models/CMakeFiles/presto_models.dir/gpu_model.cc.o" "gcc" "src/models/CMakeFiles/presto_models.dir/gpu_model.cc.o.d"
  "/root/repo/src/models/isp_model.cc" "src/models/CMakeFiles/presto_models.dir/isp_model.cc.o" "gcc" "src/models/CMakeFiles/presto_models.dir/isp_model.cc.o.d"
  "/root/repo/src/models/network_model.cc" "src/models/CMakeFiles/presto_models.dir/network_model.cc.o" "gcc" "src/models/CMakeFiles/presto_models.dir/network_model.cc.o.d"
  "/root/repo/src/models/ssd_model.cc" "src/models/CMakeFiles/presto_models.dir/ssd_model.cc.o" "gcc" "src/models/CMakeFiles/presto_models.dir/ssd_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/presto_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/presto_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/presto_tabular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
