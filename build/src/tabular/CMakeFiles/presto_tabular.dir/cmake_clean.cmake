file(REMOVE_RECURSE
  "CMakeFiles/presto_tabular.dir/column.cc.o"
  "CMakeFiles/presto_tabular.dir/column.cc.o.d"
  "CMakeFiles/presto_tabular.dir/minibatch.cc.o"
  "CMakeFiles/presto_tabular.dir/minibatch.cc.o.d"
  "CMakeFiles/presto_tabular.dir/row_batch.cc.o"
  "CMakeFiles/presto_tabular.dir/row_batch.cc.o.d"
  "CMakeFiles/presto_tabular.dir/schema.cc.o"
  "CMakeFiles/presto_tabular.dir/schema.cc.o.d"
  "libpresto_tabular.a"
  "libpresto_tabular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_tabular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
