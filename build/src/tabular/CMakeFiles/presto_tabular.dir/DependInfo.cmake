
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tabular/column.cc" "src/tabular/CMakeFiles/presto_tabular.dir/column.cc.o" "gcc" "src/tabular/CMakeFiles/presto_tabular.dir/column.cc.o.d"
  "/root/repo/src/tabular/minibatch.cc" "src/tabular/CMakeFiles/presto_tabular.dir/minibatch.cc.o" "gcc" "src/tabular/CMakeFiles/presto_tabular.dir/minibatch.cc.o.d"
  "/root/repo/src/tabular/row_batch.cc" "src/tabular/CMakeFiles/presto_tabular.dir/row_batch.cc.o" "gcc" "src/tabular/CMakeFiles/presto_tabular.dir/row_batch.cc.o.d"
  "/root/repo/src/tabular/schema.cc" "src/tabular/CMakeFiles/presto_tabular.dir/schema.cc.o" "gcc" "src/tabular/CMakeFiles/presto_tabular.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
