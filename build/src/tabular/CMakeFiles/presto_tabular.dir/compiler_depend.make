# Empty compiler generated dependencies file for presto_tabular.
# This may be replaced when dependencies are built.
