file(REMOVE_RECURSE
  "libpresto_tabular.a"
)
