
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/fast_ops.cc" "src/ops/CMakeFiles/presto_ops.dir/fast_ops.cc.o" "gcc" "src/ops/CMakeFiles/presto_ops.dir/fast_ops.cc.o.d"
  "/root/repo/src/ops/ops.cc" "src/ops/CMakeFiles/presto_ops.dir/ops.cc.o" "gcc" "src/ops/CMakeFiles/presto_ops.dir/ops.cc.o.d"
  "/root/repo/src/ops/plan.cc" "src/ops/CMakeFiles/presto_ops.dir/plan.cc.o" "gcc" "src/ops/CMakeFiles/presto_ops.dir/plan.cc.o.d"
  "/root/repo/src/ops/preprocessor.cc" "src/ops/CMakeFiles/presto_ops.dir/preprocessor.cc.o" "gcc" "src/ops/CMakeFiles/presto_ops.dir/preprocessor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/presto_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/presto_tabular.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/presto_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
