# Empty dependencies file for presto_ops.
# This may be replaced when dependencies are built.
