file(REMOVE_RECURSE
  "CMakeFiles/presto_ops.dir/fast_ops.cc.o"
  "CMakeFiles/presto_ops.dir/fast_ops.cc.o.d"
  "CMakeFiles/presto_ops.dir/ops.cc.o"
  "CMakeFiles/presto_ops.dir/ops.cc.o.d"
  "CMakeFiles/presto_ops.dir/plan.cc.o"
  "CMakeFiles/presto_ops.dir/plan.cc.o.d"
  "CMakeFiles/presto_ops.dir/preprocessor.cc.o"
  "CMakeFiles/presto_ops.dir/preprocessor.cc.o.d"
  "libpresto_ops.a"
  "libpresto_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presto_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
