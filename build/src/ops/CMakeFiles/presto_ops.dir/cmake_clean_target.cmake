file(REMOVE_RECURSE
  "libpresto_ops.a"
)
