/**
 * @file
 * Ablation: PreSto accelerator design-space sweep (RM5). Scales each
 * unit of the Figure 10 microarchitecture independently to show where
 * the next LUT is best spent — decode is the bottleneck, which is why
 * Table II gives the Decoder the largest slice of the fabric.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/isp_model.h"

using namespace presto;

namespace {

void
addVariant(TablePrinter& table, const std::string& name,
           const IspParams& params, const RmConfig& cfg, double base_tput)
{
    IspDeviceModel device(params, cfg);
    const LatencyBreakdown b = device.batchLatency();
    table.addRow({name, formatTime(b.total()),
                  formatDouble(device.throughput(), 1),
                  formatDouble(device.throughput() / base_tput, 2) + "x",
                  formatTime(device.bottleneckStageSeconds())});
}

}  // namespace

int
main()
{
    printSection("Ablation: SmartSSD accelerator design-space sweep "
                 "(RM5)");

    const RmConfig& cfg = rmConfig(5);
    const IspParams base = IspParams::smartSsd();
    const double base_tput = IspDeviceModel(base, cfg).throughput();

    TablePrinter table({"Variant", "Batch latency", "Throughput (b/s)",
                        "vs base", "Bottleneck stage"});

    addVariant(table, "base (Table II build)", base, cfg, base_tput);

    for (double k : {0.5, 2.0, 4.0}) {
        IspParams p = base;
        p.decode_values_per_sec *= k;
        addVariant(table, "decode x" + formatDouble(k, 1), p, cfg,
                   base_tput);
    }
    for (double k : {0.5, 2.0}) {
        IspParams p = base;
        p.bucketize_pes = std::max(1, static_cast<int>(p.bucketize_pes * k));
        p.hash_pes = std::max(1, static_cast<int>(p.hash_pes * k));
        p.log_pes = std::max(1, static_cast<int>(p.log_pes * k));
        addVariant(table, "gen/norm PEs x" + formatDouble(k, 1), p, cfg,
                   base_tput);
    }
    for (int c : {1, 4}) {
        IspParams p = base;
        p.batch_concurrency = c;
        addVariant(table, "batch streams = " + std::to_string(c), p, cfg,
                   base_tput);
    }
    {
        IspParams p = base;
        p.deliver_bytes_per_sec *= 2.0;
        addVariant(table, "P2P bandwidth x2.0", p, cfg, base_tput);
    }
    table.print();

    std::printf("\nTakeaway: halving gen/norm PEs barely moves throughput "
                "while decode scaling moves it directly -- decoding is the "
                "serialization-bound stage (hence Extract ~= 40%% of "
                "PreSto's latency in Figure 12).\n");
    return 0;
}
