/**
 * @file
 * Figure 14: ISP units (PreSto) vs CPU cores (Disagg) required to sustain
 * an 8xA100 training node, per workload.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "core/provisioner.h"
#include "models/calibration.h"

using namespace presto;

int
main()
{
    printSection("Figure 14: ISP units vs CPU cores needed to feed an "
                 "8xA100 node");

    TablePrinter table({"Model", "TrainDemand (batch/s)", "ISP units",
                        "ISP power (W)", "CPU cores", "CPU power (W)"});
    int max_units = 0;
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        const Provision cpus = prov.provisionCpu(cal::kGpusPerTrainingNode);
        const Provision isps =
            prov.provisionIsp(cal::kGpusPerTrainingNode,
                              IspParams::smartSsd());
        max_units = std::max(max_units, isps.workers);
        table.addRow({cfg.name,
                      formatDouble(cpus.demand_batches_per_sec, 1),
                      std::to_string(isps.workers),
                      formatDouble(isps.deployment.power_watts, 0),
                      std::to_string(cpus.workers),
                      formatDouble(cpus.deployment.power_watts, 0)});
    }
    table.print();

    std::printf("\nMax ISP units across workloads: %d (paper: at most 9 "
                "units = 225 W worst-case vs 367 cores = 12 nodes)\n",
                max_units);
    return 0;
}
