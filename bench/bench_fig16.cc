/**
 * @file
 * Figure 16: preprocessing performance and performance/Watt across four
 * accelerated design points: a disaggregated A100 (NVTabular), a
 * disaggregated U280, PreSto on a discrete U280, and PreSto on a
 * SmartSSD.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/gpu_model.h"
#include "models/isp_model.h"

using namespace presto;

int
main()
{
    printSection("Figure 16: PreSto vs alternative accelerated "
                 "preprocessing (performance normalized to PreSto "
                 "(SmartSSD) per workload)");

    TablePrinter table({"Model", "A100", "U280", "PreSto (U280)",
                        "PreSto (SmartSSD)", "A100 perf/W", "U280 perf/W",
                        "PreSto(U280) perf/W", "PreSto(SmartSSD) perf/W"});

    double a100_sum = 0, perfw_u280_ratio_sum = 0;
    for (const auto& cfg : allRmConfigs()) {
        IspDeviceModel ssd(IspParams::smartSsd(), cfg);
        IspDeviceModel du280(IspParams::disaggU280(), cfg);
        IspDeviceModel pu280(IspParams::prestoU280(), cfg);
        GpuPreprocModel a100(cfg);

        // Performance = single-worker end-to-end preprocessing speed.
        const double perf_ssd = 1.0 / ssd.batchLatency().total();
        const double perf_du = 1.0 / du280.batchLatency().total();
        const double perf_pu = 1.0 / pu280.batchLatency().total();
        const double perf_a100 = 1.0 / a100.batchLatency().total();

        const double pw_ssd = perf_ssd / ssd.params().watts;
        const double pw_du = perf_du / du280.params().watts;
        const double pw_pu = perf_pu / pu280.params().watts;
        const double pw_a100 = perf_a100 / a100.watts();

        a100_sum += perf_ssd / perf_a100;
        perfw_u280_ratio_sum += pw_ssd / pw_pu;

        table.addRow({cfg.name,
                      formatDouble(perf_a100 / perf_ssd, 2),
                      formatDouble(perf_du / perf_ssd, 2),
                      formatDouble(perf_pu / perf_ssd, 2),
                      "1.00",
                      formatDouble(pw_a100 / pw_ssd, 3),
                      formatDouble(pw_du / pw_ssd, 3),
                      formatDouble(pw_pu / pw_ssd, 3),
                      "1.000"});
    }
    table.print();

    std::printf("\nPreSto (SmartSSD) vs A100: %.2fx average speedup "
                "(paper: 2.5x)\n", a100_sum / 5);
    std::printf("PreSto (SmartSSD) vs PreSto (U280) energy-efficiency: "
                "%.2fx average (paper: 2.9x)\n", perfw_u280_ratio_sum / 5);
    std::printf("Device powers: SmartSSD %.0f W, U280 %.0f W, A100 %.0f W "
                "(measured active, not TDP).\n",
                IspParams::smartSsd().watts, IspParams::prestoU280().watts,
                GpuPreprocModel(rmConfig(1)).watts());
    return 0;
}
