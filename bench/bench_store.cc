/**
 * @file
 * Tracked perf baseline of the persistent segment store's cold-read
 * path, emitted as JSON (schema in docs/PERF.md).
 *
 * Compares three ways of delivering the same committed partition:
 *
 *   memory   - AsyncPartitionReader::read() over the in-memory encoded
 *              span (the pre-PR path; no storage involved);
 *   cold     - SegmentStore::readSegment(): journal-recovered plans,
 *              tail pread, then every page frame pread through the
 *              IoRing's device workers;
 *   blocking - SegmentStore::readSegmentBlocking(): whole-file load +
 *              CRC + decode (the non-pipelined reference).
 *
 * Every path is differentially checked against the generator's batch
 * before timing, so a throughput number can never be reported for a
 * wrong reader. The store itself is built (and recovered) in a scratch
 * directory under the system temp root.
 *
 * Usage: bench_store [--quick]   (--quick shrinks the partitions for
 * the ctest "perf" smoke label.)
 */
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "io/async_reader.h"
#include "io/io_ring.h"
#include "store/segment_store.h"

using namespace presto;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }

    RmConfig cfg = rmConfig(1);
    cfg.batch_size = quick ? 16384 : 131072;
    const size_t kPartitions = quick ? 2 : 4;
    const size_t reps = quick ? 2 : 5;
    RawDataGenerator gen(cfg);

    char dir_template[] = "/tmp/bench_store.XXXXXX";
    const char* dir_c = ::mkdtemp(dir_template);
    if (dir_c == nullptr) {
        std::fprintf(stderr, "cannot create scratch directory\n");
        return 1;
    }
    const std::string dir = dir_c;

    // Build the store, then re-open it so the timed reads run against a
    // journal-recovered manifest — the state a real restart would see.
    uint64_t total_bytes = 0;
    {
        SegmentStoreOptions opt;
        opt.directory = dir;
        auto store = SegmentStore::open(opt);
        if (!store.ok()) {
            std::fprintf(stderr, "store open failed: %s\n",
                         store.status().toString().c_str());
            return 1;
        }
        for (uint64_t pid = 0; pid < kPartitions; ++pid) {
            auto id = (*store)->appendPartition(gen.generatePartition(pid),
                                                pid);
            if (!id.ok()) {
                std::fprintf(stderr, "append failed: %s\n",
                             id.status().toString().c_str());
                return 1;
            }
        }
        for (const SegmentInfo& info : (*store)->listSegments())
            total_bytes += info.meta.byte_size;
    }
    SegmentStoreOptions opt;
    opt.directory = dir;
    auto store = SegmentStore::open(opt);
    if (!store.ok()) {
        std::fprintf(stderr, "store re-open failed: %s\n",
                     store.status().toString().c_str());
        return 1;
    }

    // Differential gate for every path and partition.
    std::vector<std::vector<uint8_t>> encoded(kPartitions);
    for (uint64_t pid = 0; pid < kPartitions; ++pid) {
        const RowBatch expect = gen.generatePartition(pid);
        auto info = (*store)->segmentForPartition(pid);
        if (!info.ok()) {
            std::fprintf(stderr, "partition %llu lost: %s\n",
                         static_cast<unsigned long long>(pid),
                         info.status().toString().c_str());
            return 1;
        }
        auto bytes = loadFromFile((*store)->segmentPath(info->meta));
        if (!bytes.ok())
            return 1;
        encoded[pid] = std::move(*bytes);
        IoRing ring;
        AsyncPartitionReader reader(ring);
        RowBatch memory, cold, blocking;
        if (!reader.read(encoded[pid], pid, memory).ok() ||
            !(*store)->readSegment(info->meta.segment_id, reader, cold)
                 .ok() ||
            !(*store)
                 ->readSegmentBlocking(info->meta.segment_id, blocking)
                 .ok() ||
            !(memory == expect) || !(cold == expect) ||
            !(blocking == expect)) {
            std::fprintf(stderr,
                         "differential check failed on partition %llu\n",
                         static_cast<unsigned long long>(pid));
            return 1;
        }
    }

    // Best-of-reps wall time for one pass over every partition.
    double memory_wall = 1e100;
    double cold_wall = 1e100;
    double blocking_wall = 1e100;
    for (size_t r = 0; r < reps; ++r) {
        RowBatch out;
        double start = now();
        for (uint64_t pid = 0; pid < kPartitions; ++pid) {
            IoRing ring;
            AsyncPartitionReader reader(ring);
            if (!reader.read(encoded[pid], pid, out).ok())
                return 1;
        }
        memory_wall = std::min(memory_wall, now() - start);

        start = now();
        for (uint64_t pid = 0; pid < kPartitions; ++pid) {
            auto info = (*store)->segmentForPartition(pid);
            IoRing ring;
            AsyncPartitionReader reader(ring);
            if (!info.ok() ||
                !(*store)
                     ->readSegment(info->meta.segment_id, reader, out)
                     .ok())
                return 1;
        }
        cold_wall = std::min(cold_wall, now() - start);

        start = now();
        for (uint64_t pid = 0; pid < kPartitions; ++pid) {
            auto info = (*store)->segmentForPartition(pid);
            if (!info.ok() ||
                !(*store)
                     ->readSegmentBlocking(info->meta.segment_id, out)
                     .ok())
                return 1;
        }
        blocking_wall = std::min(blocking_wall, now() - start);
    }

    const double mib = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
    std::printf("{\n"
                "  \"bench\": \"store\",\n"
                "  \"quick\": %s,\n"
                "  \"partitions\": %zu,\n"
                "  \"rows_per_partition\": %zu,\n"
                "  \"segment_bytes_total\": %llu,\n",
                quick ? "true" : "false", kPartitions,
                static_cast<size_t>(cfg.batch_size),
                static_cast<unsigned long long>(total_bytes));
    std::printf("  \"memory_resident\": {\"wall_sec\": %.6e, "
                "\"mib_per_sec\": %.1f},\n",
                memory_wall, mib / memory_wall);
    std::printf("  \"cold_pread_ring\": {\"wall_sec\": %.6e, "
                "\"mib_per_sec\": %.1f},\n",
                cold_wall, mib / cold_wall);
    std::printf("  \"cold_blocking\": {\"wall_sec\": %.6e, "
                "\"mib_per_sec\": %.1f},\n",
                blocking_wall, mib / blocking_wall);
    std::printf("  \"cold_vs_memory_ratio\": %.3f,\n"
                "  \"differential\": \"ok\"\n}\n",
                cold_wall / memory_wall);

    // Scratch cleanup (best-effort).
    ::system(("rm -rf " + dir).c_str());
    return 0;
}
