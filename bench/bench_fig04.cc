/**
 * @file
 * Figure 4: number of disaggregated CPU cores required for preprocessing
 * to fully utilize a training node with 8 A100 GPUs, per workload.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "core/provisioner.h"
#include "models/calibration.h"

using namespace presto;

int
main()
{
    printSection("Figure 4: CPU cores required to saturate an 8xA100 "
                 "training node");

    TablePrinter table({"Model", "TrainDemand (batch/s)",
                        "PerCoreThroughput (batch/s)", "CoresRequired",
                        "CpuNodes"});
    for (const auto& cfg : allRmConfigs()) {
        Provisioner prov(cfg);
        const Provision p = prov.provisionCpu(cal::kGpusPerTrainingNode);
        const int nodes =
            (p.workers + cal::kCpuCoresPerNode - 1) / cal::kCpuCoresPerNode;
        table.addRow({cfg.name, formatDouble(p.demand_batches_per_sec, 1),
                      formatDouble(p.per_worker_throughput, 3),
                      std::to_string(p.workers), std::to_string(nodes)});
    }
    table.print();

    std::printf("\nPaper reference: several hundred cores for the synthetic "
                "production workloads, up to 367 cores (12 nodes) for RM5.\n");
    return 0;
}
