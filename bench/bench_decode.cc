/**
 * @file
 * Tracked perf baseline of the vectorized Extract path, emitted as JSON
 * (committed as BENCH_decode.json; schema in docs/PERF.md).
 *
 * Measures, on this host, single-thread decode throughput of every
 * integer page encoding at every SIMD dispatch level against the
 * byte-wise reference decoders, CRC32C bytes/s of the table vs the
 * SSE4.2 implementation, page-parallel whole-file decode over a
 * ThreadPool, the LZ page codec (kernel compress/decompress rates plus
 * the file-level stored ratio and decode cost of codec on vs off), and
 * the end-to-end RM1 Extract+Transform rows/s with the
 * fast paths off vs on. Every timed kernel is differentially checked
 * against its reference first; any mismatch exits nonzero, so a perf
 * number can never be reported for a wrong decoder.
 *
 * Usage: bench_decode [--quick]   (--quick shrinks sizes/reps for the
 * ctest "perf" smoke label; numbers are then noisy but the differential
 * checks still run.)
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "columnar/columnar_file.h"
#include "columnar/encoding.h"
#include "columnar/entropy.h"
#include "common/batch_arena.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/generator.h"
#include "ops/preprocessor.h"
#include "ops/simd.h"

using namespace presto;

namespace {

struct BenchConfig {
    size_t values;       ///< elements per decode timing buffer
    size_t crc_bytes;    ///< bytes per CRC timing buffer
    size_t reps;         ///< timed repetitions (best-of)
    size_t e2e_batches;  ///< end-to-end pipeline iterations
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps seconds for one timed closure. */
template <typename F>
double
bestSeconds(size_t reps, F&& body)
{
    double best = 1e300;
    for (size_t r = 0; r < reps; ++r) {
        const double t0 = now();
        body();
        const double dt = now() - t0;
        if (dt < best)
            best = dt;
    }
    return best;
}

[[noreturn]] void
mismatch(const char* what, const char* variant)
{
    std::fprintf(stderr, "FATAL: %s output differs from reference (%s)\n",
                 what, variant);
    std::exit(1);
}

std::vector<SimdLevel>
availableLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::kScalar};
    if (detectedSimdLevel() >= SimdLevel::kAvx2)
        levels.push_back(SimdLevel::kAvx2);
    if (detectedSimdLevel() >= SimdLevel::kAvx512)
        levels.push_back(SimdLevel::kAvx512);
    return levels;
}

/** Encoding-appropriate data so each codec is timed on its home turf. */
std::vector<int64_t>
valuesFor(Encoding encoding, size_t n)
{
    Rng rng(7);
    std::vector<int64_t> v(n);
    int64_t acc = 0;
    for (size_t i = 0; i < n; ++i) {
        switch (encoding) {
          case Encoding::kPlainI64:
            v[i] = static_cast<int64_t>(rng.next());
            break;
          case Encoding::kVarint:
            // Zipf-popular categorical ids: mostly short varints with a
            // heavy tail of long ones.
            v[i] = static_cast<int64_t>(
                rng.uniformInt(uint64_t{4}) != 0
                    ? rng.uniformInt(uint64_t{1} << 14)
                    : rng.uniformInt(uint64_t{1} << 40));
            break;
          case Encoding::kDeltaVarint:
            acc += static_cast<int64_t>(rng.uniformInt(uint64_t{64}));
            v[i] = acc;
            break;
          case Encoding::kRle:
            v[i] = static_cast<int64_t>((i / 89) % 7);
            break;
          case Encoding::kDictionary:
          case Encoding::kBitPacked:
            // Few-distinct ids (an embedding-table page after hashing).
            v[i] = static_cast<int64_t>(rng.uniformInt(uint64_t{977})) *
                   999'983;
            break;
          case Encoding::kPlainF32:
            break;
        }
    }
    return v;
}

std::vector<uint8_t>
encodeAs(Encoding encoding, std::span<const int64_t> values)
{
    switch (encoding) {
      case Encoding::kPlainI64: return enc::encodePlainI64(values);
      case Encoding::kVarint: return enc::encodeVarint(values);
      case Encoding::kDeltaVarint: return enc::encodeDeltaVarint(values);
      case Encoding::kRle: return enc::encodeRle(values);
      case Encoding::kDictionary: return enc::encodeDictionary(values);
      case Encoding::kBitPacked: return enc::encodeBitPacked(values);
      case Encoding::kPlainF32: break;
    }
    std::fprintf(stderr, "FATAL: not an int encoding\n");
    std::exit(1);
}

void
runCrc(const BenchConfig& bc)
{
    Rng rng(11);
    std::vector<uint8_t> buf(bc.crc_bytes);
    for (auto& b : buf)
        b = static_cast<uint8_t>(rng.next());

    const uint32_t want = crc32cTable(buf.data(), buf.size());
    if (crc32cHardwareAvailable()) {
        setCrc32cHardwareEnabled(true);
        if (crc32c(buf.data(), buf.size()) != want)
            mismatch("crc32c", "sse42");
    }

    std::printf("  \"crc32c\": {\n"
                "    \"bytes\": %zu,\n"
                "    \"hardware_available\": %s,\n",
                buf.size(), crc32cHardwareAvailable() ? "true" : "false");
    volatile uint32_t sink = 0;
    const double table_secs = bestSeconds(bc.reps, [&] {
        sink = crc32cTable(buf.data(), buf.size());
    });
    const double gb = static_cast<double>(buf.size()) / 1e9;
    std::printf("    \"table\": {\"seconds\": %.6e, \"gb_per_sec\": "
                "%.4f},\n",
                table_secs, gb / table_secs);
    if (crc32cHardwareAvailable()) {
        const double hw_secs = bestSeconds(bc.reps, [&] {
            sink = crc32c(buf.data(), buf.size());
        });
        std::printf("    \"sse42\": {\"seconds\": %.6e, \"gb_per_sec\": "
                    "%.4f, \"speedup_vs_table\": %.3f}\n",
                    hw_secs, gb / hw_secs, table_secs / hw_secs);
    } else {
        std::printf("    \"sse42\": null\n");
    }
    std::printf("  },\n");
    (void)sink;
}

void
runDecodeKernels(const BenchConfig& bc)
{
    const auto levels = availableLevels();
    const std::vector<Encoding> encodings{
        Encoding::kPlainI64,   Encoding::kVarint,
        Encoding::kDeltaVarint, Encoding::kRle,
        Encoding::kDictionary,  Encoding::kBitPacked};

    std::printf("  \"decode\": [\n");
    for (size_t e = 0; e < encodings.size(); ++e) {
        const Encoding encoding = encodings[e];
        const auto values = valuesFor(encoding, bc.values);
        const auto payload = encodeAs(encoding, values);
        const size_t n = values.size();

        std::vector<int64_t> ref, ref_dict;
        if (!enc::decodeI64Reference(encoding, payload, n, ref, ref_dict)
                 .ok() ||
            ref != values)
            mismatch(encodingName(encoding), "reference round-trip");

        const double ref_secs = bestSeconds(bc.reps, [&] {
            if (!enc::decodeI64Reference(encoding, payload, n, ref,
                                         ref_dict)
                     .ok())
                mismatch(encodingName(encoding), "reference");
        });

        std::printf("    {\n"
                    "      \"encoding\": \"%s\",\n"
                    "      \"values\": %zu,\n"
                    "      \"payload_bytes\": %zu,\n"
                    "      \"reference\": {\"seconds\": %.6e, "
                    "\"values_per_sec\": %.4e},\n"
                    "      \"dispatched\": [\n",
                    encodingName(encoding), n, payload.size(), ref_secs,
                    static_cast<double>(n) / ref_secs);

        std::vector<int64_t> out(n), dict;
        for (size_t i = 0; i < levels.size(); ++i) {
            setSimdLevel(levels[i]);
            std::fill(out.begin(), out.end(), int64_t{-1});
            if (!enc::decodeI64Into(encoding, payload, n, out.data(), dict)
                     .ok() ||
                out != ref)
                mismatch(encodingName(encoding),
                         simdLevelName(levels[i]));
            const double secs = bestSeconds(bc.reps, [&] {
                if (!enc::decodeI64Into(encoding, payload, n, out.data(),
                                        dict)
                         .ok())
                    mismatch(encodingName(encoding),
                             simdLevelName(levels[i]));
            });
            std::printf("        {\"level\": \"%s\", \"seconds\": %.6e, "
                        "\"values_per_sec\": %.4e, "
                        "\"speedup_vs_reference\": %.3f}%s\n",
                        simdLevelName(levels[i]), secs,
                        static_cast<double>(n) / secs, ref_secs / secs,
                        i + 1 < levels.size() ? "," : "");
        }
        std::printf("      ]\n    }%s\n",
                    e + 1 < encodings.size() ? "," : "");
    }
    std::printf("  ],\n");
    setSimdLevel(detectedSimdLevel());
}

/** Whole-file decode: serial vs page-parallel readAllInto. */
void
runFileDecode(const BenchConfig& bc)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = static_cast<int>(
        std::min<size_t>(4 * bc.values, 262144));
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);

    ColumnarFileReader reader;
    RowBatch serial_batch, parallel_batch;
    if (!reader.open(encoded).ok() ||
        !reader.readAllInto(serial_batch).ok())
        mismatch("readAllInto", "serial");
    const double serial_secs = bestSeconds(bc.reps, [&] {
        if (!reader.open(encoded).ok() ||
            !reader.readAllInto(serial_batch).ok())
            mismatch("readAllInto", "serial");
    });

    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    ThreadPool pool(static_cast<int>(hw));
    ColumnarFileReader preader;
    preader.setThreadPool(&pool);
    if (!preader.open(encoded).ok() ||
        !preader.readAllInto(parallel_batch).ok() ||
        !(parallel_batch == serial_batch))
        mismatch("readAllInto", "page-parallel");
    const double parallel_secs = bestSeconds(bc.reps, [&] {
        if (!preader.open(encoded).ok() ||
            !preader.readAllInto(parallel_batch).ok())
            mismatch("readAllInto", "page-parallel");
    });

    const double rows = static_cast<double>(serial_batch.numRows());
    std::printf("  \"file_decode\": {\n"
                "    \"rows\": %zu,\n"
                "    \"encoded_bytes\": %zu,\n"
                "    \"serial\": {\"seconds\": %.6e, \"rows_per_sec\": "
                "%.4e},\n"
                "    \"page_parallel\": {\"threads\": %u, \"seconds\": "
                "%.6e, \"rows_per_sec\": %.4e, \"speedup_vs_serial\": "
                "%.3f}\n"
                "  },\n",
                serial_batch.numRows(), encoded.size(), serial_secs,
                rows / serial_secs, hw, parallel_secs,
                rows / parallel_secs, serial_secs / parallel_secs);
}

/**
 * LZ page codec: kernel-level compress/decompress rates on
 * representative page payloads, and the file-level effect of the codec
 * (stored ratio and serial-decode cost) on a compressible partition.
 * The decompress rate and stored ratio rows feed
 * cal::kMeasuredLzDecompressBytesPerSec / kMeasuredLzStoredRatio.
 */
void
runCompressedPages(const BenchConfig& bc)
{
    std::printf("  \"compressed_pages\": {\n");

    // --- codec kernels on page-shaped payloads ---------------------------
    struct Corpus {
        const char* name;
        std::vector<uint8_t> raw;
    };
    const auto clustered = valuesFor(Encoding::kVarint, bc.values);
    Rng rng(23);
    std::vector<uint8_t> random_bytes(bc.values);
    for (auto& b : random_bytes)
        b = static_cast<uint8_t>(rng.next());
    const Corpus corpora[] = {
        {"varint_clustered_ids", enc::encodeVarint(clustered)},
        {"plain_i64_clustered_ids", enc::encodePlainI64(clustered)},
        {"random_bytes", std::move(random_bytes)},
    };

    std::printf("    \"codec\": [\n");
    for (size_t c = 0; c < std::size(corpora); ++c) {
        const auto& raw = corpora[c].raw;
        const auto packed = enc::lzCompress(raw);
        std::vector<uint8_t> back(raw.size());
        if (!enc::lzDecompress(packed, back).ok() || back != raw)
            mismatch("lz codec", corpora[c].name);

        std::vector<uint8_t> scratch;
        const double comp_secs = bestSeconds(bc.reps, [&] {
            enc::lzCompress(raw, scratch);
        });
        const double decomp_secs = bestSeconds(bc.reps, [&] {
            if (!enc::lzDecompress(packed, back).ok())
                mismatch("lz codec", corpora[c].name);
        });
        const double gb = static_cast<double>(raw.size()) / 1e9;
        std::printf("      {\"corpus\": \"%s\", \"raw_bytes\": %zu, "
                    "\"compressed_bytes\": %zu, \"ratio\": %.3f,\n"
                    "       \"compress\": {\"seconds\": %.6e, "
                    "\"raw_gb_per_sec\": %.4f},\n"
                    "       \"decompress\": {\"seconds\": %.6e, "
                    "\"raw_gb_per_sec\": %.4f}}%s\n",
                    corpora[c].name, raw.size(), packed.size(),
                    static_cast<double>(raw.size()) /
                        static_cast<double>(packed.size()),
                    comp_secs, gb / comp_secs, decomp_secs,
                    gb / decomp_secs,
                    c + 1 < std::size(corpora) ? "," : "");
    }
    std::printf("    ],\n");

    // --- file-level codec on/off on a compressible partition -------------
    // RM2 rows are ~9 KB encoded, so this stays an order of magnitude
    // smaller than the RM1 file above at the same row count.
    RmConfig cfg = rmConfig(2);
    cfg.batch_size = static_cast<int>(
        std::min<size_t>(bc.values, 65536));
    RawDataGenerator gen(cfg);
    const RowBatch batch = gen.generatePartition(0);
    WriterOptions off;
    off.codec = PageCodec::kNone;
    const auto with_lz = ColumnarFileWriter().write(batch, 0);
    const auto without = ColumnarFileWriter(off).write(batch, 0);

    ColumnarFileReader lz_reader, plain_reader;
    RowBatch a, b;
    if (!lz_reader.open(with_lz).ok() || !lz_reader.readAllInto(a).ok() ||
        !plain_reader.open(without).ok() ||
        !plain_reader.readAllInto(b).ok() || !(a == b))
        mismatch("file codec", "lz vs none differential");

    const double lz_secs = bestSeconds(bc.reps, [&] {
        if (!lz_reader.open(with_lz).ok() ||
            !lz_reader.readAllInto(a).ok())
            mismatch("file codec", "lz decode");
    });
    const double plain_secs = bestSeconds(bc.reps, [&] {
        if (!plain_reader.open(without).ok() ||
            !plain_reader.readAllInto(b).ok())
            mismatch("file codec", "plain decode");
    });

    const double rows = static_cast<double>(batch.numRows());
    std::printf("    \"file\": {\n"
                "      \"workload\": \"RM2\",\n"
                "      \"rows\": %zu,\n"
                "      \"bytes_codec_on\": %zu,\n"
                "      \"bytes_codec_off\": %zu,\n"
                "      \"stored_ratio\": %.3f,\n"
                "      \"codec_on\": {\"seconds\": %.6e, "
                "\"rows_per_sec\": %.4e},\n"
                "      \"codec_off\": {\"seconds\": %.6e, "
                "\"rows_per_sec\": %.4e},\n"
                "      \"decode_slowdown\": %.3f\n"
                "    }\n"
                "  },\n",
                batch.numRows(), with_lz.size(), without.size(),
                static_cast<double>(with_lz.size()) /
                    static_cast<double>(without.size()),
                lz_secs, rows / lz_secs, plain_secs, rows / plain_secs,
                lz_secs / plain_secs);
}

[[noreturn]] void
gateFail(const char* gate, double got, double bound)
{
    std::fprintf(stderr,
                 "FATAL: perf gate %s failed: got %.4f vs bound %.4f\n",
                 gate, got, bound);
    std::exit(1);
}

/**
 * Entropy page codec: canonical-Huffman kernel rates on page-shaped
 * payloads, and the file-level effect of widening the codec menu from
 * LZ-only to {plain, LZ, entropy, LZ+entropy} on RM1. The decompress
 * rate and stored-ratio rows feed
 * cal::kMeasuredHuffDecompressBytesPerSec / kMeasuredEntropyStoredRatio.
 *
 * Self-enforcing gates: the full menu must store strictly fewer bytes
 * than LZ-only (always, including --quick — the writer only picks a
 * codec when it is strictly smaller, so this catches menu-selection
 * regressions even on noisy runs). In full mode two absolute gates are
 * also enforced: RM1 stored ratio < 0.815, and Huffman decode >= 1 GB/s
 * on the best (most skewed) corpus — the kind of page the
 * strictly-smallest menu rule actually entropy-codes; near-
 * incompressible payloads fall back to LZ or plain frames and never
 * reach this decoder.
 */
void
runEntropyPages(const BenchConfig& bc, bool quick)
{
    std::printf("  \"entropy_pages\": {\n");

    // --- kernel rates on page-shaped payloads ----------------------------
    struct Corpus {
        const char* name;
        std::vector<uint8_t> raw;
    };
    const auto clustered = valuesFor(Encoding::kVarint, bc.values);
    // Dense-float page: clustered exponents, near-uniform mantissa tail.
    Rng frng(31);
    std::vector<uint8_t> dense_f32(bc.values * sizeof(float));
    for (size_t i = 0; i < bc.values; ++i) {
        const float f = static_cast<float>(frng.uniform(0.0, 8.0));
        std::memcpy(dense_f32.data() + i * sizeof(float), &f, sizeof(f));
    }
    const Corpus corpora[] = {
        {"varint_clustered_ids", enc::encodeVarint(clustered)},
        {"plain_i64_clustered_ids", enc::encodePlainI64(clustered)},
        {"dense_f32_uniform", std::move(dense_f32)},
    };

    double best_decode_gbps = 0.0;
    std::printf("    \"codec\": [\n");
    for (size_t c = 0; c < std::size(corpora); ++c) {
        const auto& raw = corpora[c].raw;
        const auto packed = enc::huffCompress(raw);
        std::vector<uint8_t> back(raw.size());
        if (!enc::huffDecompress(packed, back).ok() || back != raw)
            mismatch("huff codec", corpora[c].name);

        std::vector<uint8_t> scratch;
        const double comp_secs = bestSeconds(bc.reps, [&] {
            enc::huffCompress(raw, scratch);
        });
        const double decomp_secs = bestSeconds(bc.reps, [&] {
            if (!enc::huffDecompress(packed, back).ok())
                mismatch("huff codec", corpora[c].name);
        });
        const double gb = static_cast<double>(raw.size()) / 1e9;
        best_decode_gbps = std::max(best_decode_gbps, gb / decomp_secs);
        std::printf("      {\"corpus\": \"%s\", \"raw_bytes\": %zu, "
                    "\"compressed_bytes\": %zu, \"ratio\": %.3f,\n"
                    "       \"compress\": {\"seconds\": %.6e, "
                    "\"raw_gb_per_sec\": %.4f},\n"
                    "       \"decompress\": {\"seconds\": %.6e, "
                    "\"raw_gb_per_sec\": %.4f}}%s\n",
                    corpora[c].name, raw.size(), packed.size(),
                    static_cast<double>(raw.size()) /
                        static_cast<double>(packed.size()),
                    comp_secs, gb / comp_secs, decomp_secs,
                    gb / decomp_secs,
                    c + 1 < std::size(corpora) ? "," : "");
    }
    std::printf("    ],\n");

    // --- file-level menu widening on RM1 ---------------------------------
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = static_cast<int>(
        std::min<size_t>(bc.values, 65536));
    RawDataGenerator gen(cfg);
    const RowBatch batch = gen.generatePartition(0);
    WriterOptions off, lz_only, full;
    off.codec = PageCodec::kNone;
    lz_only.codec = PageCodec::kLz;
    full.codec = PageCodec::kLzEntropy;
    const auto without = ColumnarFileWriter(off).write(batch, 0);
    const auto with_lz = ColumnarFileWriter(lz_only).write(batch, 0);
    const auto with_full = ColumnarFileWriter(full).write(batch, 0);

    ColumnarFileReader full_reader, lz_reader;
    RowBatch a, b;
    if (!full_reader.open(with_full).ok() ||
        !full_reader.readAllInto(a).ok() ||
        !lz_reader.open(with_lz).ok() || !lz_reader.readAllInto(b).ok() ||
        !(a == b))
        mismatch("file codec", "full menu vs lz differential");

    const double full_secs = bestSeconds(bc.reps, [&] {
        if (!full_reader.open(with_full).ok() ||
            !full_reader.readAllInto(a).ok())
            mismatch("file codec", "full menu decode");
    });
    const double lz_secs = bestSeconds(bc.reps, [&] {
        if (!lz_reader.open(with_lz).ok() ||
            !lz_reader.readAllInto(b).ok())
            mismatch("file codec", "lz decode");
    });

    const double rows = static_cast<double>(batch.numRows());
    const double ratio_full = static_cast<double>(with_full.size()) /
                              static_cast<double>(without.size());
    const double ratio_lz = static_cast<double>(with_lz.size()) /
                            static_cast<double>(without.size());
    std::printf("    \"file\": {\n"
                "      \"workload\": \"RM1\",\n"
                "      \"rows\": %zu,\n"
                "      \"bytes_codec_off\": %zu,\n"
                "      \"bytes_lz_only\": %zu,\n"
                "      \"bytes_full_menu\": %zu,\n"
                "      \"stored_ratio_lz\": %.3f,\n"
                "      \"stored_ratio_full_menu\": %.3f,\n"
                "      \"lz_only\": {\"seconds\": %.6e, "
                "\"rows_per_sec\": %.4e},\n"
                "      \"full_menu\": {\"seconds\": %.6e, "
                "\"rows_per_sec\": %.4e, \"decode_slowdown_vs_lz\": "
                "%.3f}\n"
                "    },\n"
                "    \"gates\": {\"full_menu_lt_lz_bytes\": true, "
                "\"stored_ratio_bound\": 0.815, "
                "\"huff_decode_gb_per_sec_min\": 1.0, "
                "\"absolute_gates_enforced\": %s}\n"
                "  },\n",
                batch.numRows(), without.size(), with_lz.size(),
                with_full.size(), ratio_lz, ratio_full, lz_secs,
                rows / lz_secs, full_secs, rows / full_secs,
                full_secs / lz_secs, quick ? "false" : "true");

    // Relative gate: always on. The menu picks the strictly-smallest
    // frame per page, so the full menu can never store more than
    // LZ-only; "equal" would mean entropy never won a single page.
    if (!(with_full.size() < with_lz.size()))
        gateFail("full_menu_bytes < lz_only_bytes",
                 static_cast<double>(with_full.size()),
                 static_cast<double>(with_lz.size()));
    if (!quick) {
        if (!(ratio_full < 0.815))
            gateFail("rm1_stored_ratio_full_menu < 0.815", ratio_full,
                     0.815);
        if (!(best_decode_gbps >= 1.0))
            gateFail("huff_decode_gb_per_sec >= 1.0", best_decode_gbps,
                     1.0);
    }
}

/**
 * End-to-end RM1 Extract+Transform (open + readAllInto + preprocessInto),
 * with the Extract fast paths pinned off (reference decoders + table
 * CRC) vs on (dispatched decoders + SSE4.2 CRC). Transform runs at the
 * best SIMD level in both configurations, so the delta isolates Extract.
 */
void
runEndToEnd(const BenchConfig& bc)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 4096;
    RawDataGenerator gen(cfg);
    const auto encoded =
        ColumnarFileWriter().write(gen.generatePartition(0), 0);
    const Preprocessor pre(cfg);
    const size_t rows = static_cast<size_t>(cfg.batch_size);

    setSimdLevel(detectedSimdLevel());
    auto runPipeline = [&](bool fast_extract, uint64_t* checksum) {
        enc::setFastDecodeEnabled(fast_extract);
        setCrc32cHardwareEnabled(fast_extract &&
                                 crc32cHardwareAvailable());
        ColumnarFileReader reader;
        RowBatch raw;
        BatchArena arena;
        MiniBatch mb;
        for (int warm = 0; warm < 2; ++warm) {  // size every buffer
            if (!reader.open(encoded).ok() ||
                !reader.readAllInto(raw).ok())
                mismatch("e2e", "decode");
            pre.preprocessInto(raw, mb, arena);
        }
        const double secs = bestSeconds(bc.reps, [&] {
            for (size_t b = 0; b < bc.e2e_batches; ++b) {
                if (!reader.open(encoded).ok() ||
                    !reader.readAllInto(raw).ok())
                    mismatch("e2e", "decode");
                pre.preprocessInto(raw, mb, arena);
            }
        });
        uint64_t crc = crc32cTable(
            mb.dense.data(), mb.dense.size() * sizeof(float));
        for (const auto& jag : mb.sparse)
            crc = crc32cTable(jag.values.data(),
                              jag.values.size() * sizeof(int64_t),
                              static_cast<uint32_t>(crc));
        *checksum = crc;
        enc::setFastDecodeEnabled(true);
        setCrc32cHardwareEnabled(crc32cHardwareAvailable());
        return secs;
    };

    uint64_t ref_crc = 0, fast_crc = 0;
    const double ref_secs = runPipeline(false, &ref_crc);
    const double fast_secs = runPipeline(true, &fast_crc);
    if (ref_crc != fast_crc)
        mismatch("e2e", "fast extract checksum");

    const double total = static_cast<double>(rows * bc.e2e_batches);
    std::printf("  \"end_to_end_rm1\": {\n"
                "    \"rows_per_batch\": %zu,\n"
                "    \"batches_per_rep\": %zu,\n"
                "    \"reference_extract\": {\"seconds\": %.6e, "
                "\"rows_per_sec\": %.4e},\n"
                "    \"fast_extract\": {\"seconds\": %.6e, "
                "\"rows_per_sec\": %.4e, \"speedup\": %.3f}\n"
                "  }\n",
                rows, bc.e2e_batches, ref_secs, total / ref_secs,
                fast_secs, total / fast_secs, ref_secs / fast_secs);
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }
    const BenchConfig bc = quick
                               ? BenchConfig{1 << 13, 1 << 16, 3, 2}
                               : BenchConfig{1 << 16, 1 << 24, 9, 8};

    std::printf("{\n"
                "  \"bench\": \"decode\",\n"
                "  \"quick\": %s,\n"
                "  \"detected_simd\": \"%s\",\n"
                "  \"crc32c_hardware\": %s,\n",
                quick ? "true" : "false",
                simdLevelName(detectedSimdLevel()),
                crc32cHardwareAvailable() ? "true" : "false");
    runCrc(bc);
    runDecodeKernels(bc);
    runFileDecode(bc);
    runCompressedPages(bc);
    runEntropyPages(bc, quick);
    runEndToEnd(bc);
    std::printf("}\n");
    return 0;
}
