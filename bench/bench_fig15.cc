/**
 * @file
 * Figure 15: (a) energy-efficiency and (b) cost-efficiency of PreSto
 * vs Disagg, using the Section V-C metric over provisioned deployments.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "core/provisioner.h"
#include "models/calibration.h"
#include "models/cost_model.h"

using namespace presto;

int
main()
{
    const IspParams ssd = IspParams::smartSsd();

    printSection("Figure 15(a): energy-efficiency (normalized to Disagg)");
    {
        TablePrinter table({"Model", "Disagg power (W)", "PreSto power (W)",
                            "Energy-efficiency gain"});
        double sum = 0, max = 0;
        for (const auto& cfg : allRmConfigs()) {
            Provisioner prov(cfg);
            const Provision c = prov.provisionCpu(cal::kGpusPerTrainingNode);
            const Provision i =
                prov.provisionIsp(cal::kGpusPerTrainingNode, ssd);
            const double demand = c.demand_batches_per_sec;
            const double gain = energyEfficiency(i.deployment, demand) /
                                energyEfficiency(c.deployment, demand);
            sum += gain;
            max = std::max(max, gain);
            table.addRow({cfg.name,
                          formatDouble(c.deployment.power_watts, 0),
                          formatDouble(i.deployment.power_watts, 0),
                          formatDouble(gain, 1) + "x"});
        }
        table.print();
        std::printf("Average %.1fx, max %.1fx (paper: 11.3x avg, 15.1x "
                    "max)\n", sum / 5, max);
    }

    printSection("Figure 15(b): cost-efficiency (normalized to Disagg)");
    {
        TablePrinter table({"Model", "Disagg CapEx+OpEx ($)",
                            "PreSto CapEx+OpEx ($)",
                            "Cost-efficiency gain"});
        double sum = 0, max = 0;
        for (const auto& cfg : allRmConfigs()) {
            Provisioner prov(cfg);
            const Provision c = prov.provisionCpu(cal::kGpusPerTrainingNode);
            const Provision i =
                prov.provisionIsp(cal::kGpusPerTrainingNode, ssd);
            const double demand = c.demand_batches_per_sec;
            const double gain = costEfficiency(i.deployment, demand) /
                                costEfficiency(c.deployment, demand);
            sum += gain;
            max = std::max(max, gain);
            table.addRow({cfg.name,
                          formatDouble(c.deployment.totalCostDollars(), 0),
                          formatDouble(i.deployment.totalCostDollars(), 0),
                          formatDouble(gain, 2) + "x"});
        }
        table.print();
        std::printf("Average %.2fx, max %.2fx (paper: 4.3x avg, 5.6x max)\n",
                    sum / 5, max);
    }
    return 0;
}
