/**
 * @file
 * Figure 6: CPU utilization, memory-bandwidth utilization, and LLC hit
 * rate during Bucketize / SigridHash / Log for RM1 and RM5, regenerated
 * with the trace-driven cache simulator.
 */
#include <string>

#include "cachesim/op_traces.h"
#include "common/table_printer.h"
#include "models/calibration.h"
#include "models/cpu_model.h"

using namespace presto;

namespace {

struct OpRow {
    std::string name;
    OpTraceResult trace;
    double op_seconds;
};

void
report(TablePrinter& table, const std::string& model, const OpRow& row)
{
    // Figure 6 profiles a fully loaded preprocessing node: all 32 cores
    // run workers concurrently, so node DRAM traffic is 32x one worker's.
    const double dram_rate = static_cast<double>(row.trace.dram_bytes) /
                             row.op_seconds * cal::kCpuCoresPerNode;
    const double membw_util =
        dram_rate / cal::kCpuMemBandwidthBytesPerSec * 100.0;
    const double stall = static_cast<double>(row.trace.stats.misses) *
                         cal::kLlcMissStallSec;
    const double cpu_util = (row.op_seconds - stall) / row.op_seconds * 100.0;
    table.addRow({model, row.name,
                  formatDouble(cpu_util, 1) + "%",
                  formatDouble(membw_util, 2) + "%",
                  formatDouble(row.trace.stats.hitRate() * 100.0, 1) + "%"});
}

}  // namespace

int
main()
{
    printSection("Figure 6: CPU / memory-bandwidth utilization and LLC hit "
                 "rate of the key operators (RM1 vs RM5)");

    TablePrinter table({"Model", "Op", "CPU util", "MemBW util",
                        "LLC hit rate"});

    for (int rm : {1, 5}) {
        const RmConfig& cfg = rmConfig(rm);
        CpuWorkerModel cpu(cfg);
        const LatencyBreakdown lat = cpu.batchLatency();

        OpTraceRunner runner;
        OpRow bucketize{"Bucketize", runner.runBucketize(cfg),
                        lat.bucketize};
        runner.reset();
        OpRow hash{"SigridHash", runner.runSigridHash(cfg), lat.sigrid_hash};
        runner.reset();
        OpRow log{"Log", runner.runLog(cfg), lat.log};

        report(table, cfg.name, bucketize);
        report(table, cfg.name, hash);
        report(table, cfg.name, log);
        if (rm == 1)
            table.addSeparator();
    }
    table.print();

    std::printf("\nPaper reference: all three ops are compute-bound -- high "
                "CPU utilization, memory bandwidth below 15%% of the "
                "281.6 GB/s peak, Bucketize LLC hit rate ~85%%.\n");
    return 0;
}
