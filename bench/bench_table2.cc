/**
 * @file
 * Table II: FPGA resource utilization of PreSto's preprocessing
 * accelerator (Decode / Bucketize / SigridHash / Log units at 223 MHz).
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/fpga_resources.h"

using namespace presto;

int
main()
{
    printSection("Table II: FPGA resource utilization of the PreSto "
                 "accelerator");
    std::printf("Synthesized clock: %.0f MHz\n",
                prestoAcceleratorClockHz() / kMHz);

    TablePrinter table({"Unit", "LUT", "REG", "BRAM", "URAM", "DSP"});
    for (const auto& unit : prestoAcceleratorUtilization()) {
        if (unit.name == "Total")
            table.addSeparator();
        table.addRow({unit.name,
                      formatDouble(unit.percent.lut, 2) + "%",
                      formatDouble(unit.percent.reg, 2) + "%",
                      formatDouble(unit.percent.bram, 2) + "%",
                      formatDouble(unit.percent.uram, 2) + "%",
                      formatDouble(unit.percent.dsp, 2) + "%"});
    }
    table.print();

    std::printf("\nPaper reference: Decode 18.84/8.49/25.08/0/0, Bucketize "
                "7.88/4.28/6.19/27.59/0,\nSigridHash 23.11/12.47/11.89/0/"
                "19.19, Log 4.18/2.79/4.89/0/10.62,\nTotal 54.02/28.03/"
                "48.05/27.59/29.81 (%% of LUT/REG/BRAM/URAM/DSP).\n");
    return 0;
}
