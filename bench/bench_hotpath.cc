/**
 * @file
 * Tracked perf baseline of the Transform hot path, emitted as JSON
 * (committed as BENCH_hotpath.json; schema in docs/PERF.md).
 *
 * Measures, on this host, single-thread rows/s and scalar-ops/s of each
 * dispatched kernel (SigridHash, Bucketize, Log, FillMissing) at every
 * SIMD level the CPU supports, against the seed's scalar reference
 * implementations — plus the end-to-end Transform pipeline with and
 * without the BatchArena-backed zero-allocation path. Every kernel run
 * is differentially checked against the reference before it is timed;
 * any mismatch exits nonzero, so a perf number can never be reported
 * for a wrong kernel.
 *
 * Usage: bench_hotpath [--quick]   (--quick shrinks sizes/reps for the
 * ctest "perf" smoke label; numbers are then noisy but the differential
 * checks still run.)
 */
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/batch_arena.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "ops/fast_ops.h"
#include "ops/ops.h"
#include "ops/preprocessor.h"
#include "ops/simd.h"

using namespace presto;

namespace {

struct BenchConfig {
    size_t kernel_values;  ///< elements per kernel timing buffer
    size_t reps;           ///< timed repetitions (best-of)
    size_t e2e_batches;    ///< end-to-end preprocess iterations
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps seconds for one timed closure. */
template <typename F>
double
bestSeconds(size_t reps, F&& body)
{
    double best = 1e300;
    for (size_t r = 0; r < reps; ++r) {
        const double t0 = now();
        body();
        const double dt = now() - t0;
        if (dt < best)
            best = dt;
    }
    return best;
}

std::vector<float>
denseValues(size_t n)
{
    Rng rng(42);
    std::vector<float> v(n);
    for (size_t i = 0; i < n; ++i) {
        v[i] = static_cast<float>(rng.logNormal(2.0, 1.5));
        if (i % 97 == 0)
            v[i] = std::nanf("");  // missing values exercise FillMissing
    }
    return v;
}

std::vector<int64_t>
sparseIds(size_t n)
{
    Rng rng(43);
    std::vector<int64_t> v(n);
    for (auto& x : v)
        x = static_cast<int64_t>(rng.next() >> 1);
    return v;
}

[[noreturn]] void
mismatch(const char* kernel, SimdLevel level)
{
    std::fprintf(stderr,
                 "FATAL: %s output at level %s differs from reference\n",
                 kernel, simdLevelName(level));
    std::exit(1);
}

std::vector<SimdLevel>
availableLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::kScalar};
    if (detectedSimdLevel() >= SimdLevel::kAvx2)
        levels.push_back(SimdLevel::kAvx2);
    if (detectedSimdLevel() >= SimdLevel::kAvx512)
        levels.push_back(SimdLevel::kAvx512);
    return levels;
}

/** One kernel measurement: seed-reference baseline + per-level results. */
void
emitKernel(const char* name, double ref_seconds, size_t values_per_rep,
           double ops_per_value,
           const std::vector<std::pair<SimdLevel, double>>& level_seconds,
           bool trailing_comma)
{
    const double n = static_cast<double>(values_per_rep);
    std::printf("    {\n"
                "      \"kernel\": \"%s\",\n"
                "      \"values_per_rep\": %zu,\n"
                "      \"reference\": {\"seconds\": %.6e, "
                "\"values_per_sec\": %.4e, \"scalar_ops_per_sec\": %.4e},\n"
                "      \"dispatched\": [\n",
                name, values_per_rep, ref_seconds, n / ref_seconds,
                n * ops_per_value / ref_seconds);
    for (size_t i = 0; i < level_seconds.size(); ++i) {
        const auto& [level, secs] = level_seconds[i];
        std::printf("        {\"level\": \"%s\", \"seconds\": %.6e, "
                    "\"values_per_sec\": %.4e, "
                    "\"scalar_ops_per_sec\": %.4e, "
                    "\"speedup_vs_reference\": %.3f}%s\n",
                    simdLevelName(level), secs, n / secs,
                    n * ops_per_value / secs, ref_seconds / secs,
                    i + 1 < level_seconds.size() ? "," : "");
    }
    std::printf("      ]\n    }%s\n", trailing_comma ? "," : "");
}

uint64_t
miniBatchChecksum(const MiniBatch& mb)
{
    uint64_t crc = crc32c(mb.dense.data(), mb.dense.size() * sizeof(float));
    crc = crc32c(mb.labels.data(), mb.labels.size() * sizeof(float), crc);
    for (const auto& jag : mb.sparse) {
        crc = crc32c(jag.values.data(),
                     jag.values.size() * sizeof(int64_t), crc);
        crc = crc32c(jag.lengths.data(),
                     jag.lengths.size() * sizeof(uint32_t), crc);
    }
    return mix64(crc + mb.batch_size);
}

void
runKernels(const BenchConfig& bc)
{
    const auto levels = availableLevels();
    const size_t n = bc.kernel_values;
    const auto dense = denseValues(n);
    const auto ids = sparseIds(n);
    const auto bounds = BucketBoundaries::makeLogSpaced(4096, 0.02f,
                                                        3000.0f);
    constexpr uint64_t kSeed = 0x5eed;
    constexpr int64_t kTable = 500000;
    // Scalar-op weights: multiplies+shifts+xors of one sigridHash (~12),
    // halves-search steps of one 4096-boundary bisection (12+1), and 1
    // for the single-op kernels.
    const double hash_ops = 12.0;
    const double bucket_ops =
        std::log2(static_cast<double>(bounds.size())) + 1.0;

    std::printf("  \"kernels\": [\n");

    // --- SigridHash ------------------------------------------------------
    {
        std::vector<int64_t> ref = ids;
        sigridHashInPlace(ref, kSeed, kTable);
        std::vector<int64_t> buf(n);
        std::vector<std::pair<SimdLevel, double>> per_level;
        for (SimdLevel level : levels) {
            setSimdLevel(level);
            sigridHashInto(ids, buf, kSeed, kTable);
            if (std::memcmp(buf.data(), ref.data(),
                            n * sizeof(int64_t)) != 0)
                mismatch("sigrid_hash", level);
            per_level.emplace_back(level, bestSeconds(bc.reps, [&] {
                sigridHashInto(ids, buf, kSeed, kTable);
            }));
        }
        const double ref_secs = bestSeconds(bc.reps, [&] {
            std::memcpy(buf.data(), ids.data(), n * sizeof(int64_t));
            sigridHashInPlace(buf, kSeed, kTable);
        });
        emitKernel("sigrid_hash", ref_secs, n, hash_ops, per_level, true);
    }

    // --- Bucketize -------------------------------------------------------
    {
        std::vector<int64_t> ref(n);
        bucketizeInto(dense, bounds, ref);
        const FastBucketizer fast(bounds);
        std::vector<int64_t> buf(n);
        std::vector<std::pair<SimdLevel, double>> per_level;
        for (SimdLevel level : levels) {
            setSimdLevel(level);
            fast.bucketizeInto(dense, buf);
            if (std::memcmp(buf.data(), ref.data(),
                            n * sizeof(int64_t)) != 0)
                mismatch("bucketize", level);
            per_level.emplace_back(level, bestSeconds(bc.reps, [&] {
                fast.bucketizeInto(dense, buf);
            }));
        }
        const double ref_secs = bestSeconds(
            bc.reps, [&] { bucketizeInto(dense, bounds, buf); });
        emitKernel("bucketize", ref_secs, n, bucket_ops, per_level, true);
    }

    // --- Log normalization ----------------------------------------------
    {
        std::vector<float> ref = dense;
        fillMissingInPlace(ref, 0.0f);  // log runs after FillMissing
        const std::vector<float> input = ref;
        logTransformInPlace(ref);
        std::vector<float> buf(n);
        std::vector<std::pair<SimdLevel, double>> per_level;
        for (SimdLevel level : levels) {
            setSimdLevel(level);
            buf = input;
            logTransformInPlaceFast(buf);
            if (std::memcmp(buf.data(), ref.data(), n * sizeof(float)) !=
                0)
                mismatch("log", level);
            per_level.emplace_back(level, bestSeconds(bc.reps, [&] {
                std::memcpy(buf.data(), input.data(), n * sizeof(float));
                logTransformInPlaceFast(buf);
            }));
        }
        const double ref_secs = bestSeconds(bc.reps, [&] {
            std::memcpy(buf.data(), input.data(), n * sizeof(float));
            logTransformInPlace(buf);
        });
        emitKernel("log", ref_secs, n, 1.0, per_level, true);
    }

    // --- FillMissing -----------------------------------------------------
    {
        std::vector<float> ref = dense;
        fillMissingInPlace(ref, 0.0f);
        std::vector<float> buf(n);
        std::vector<std::pair<SimdLevel, double>> per_level;
        for (SimdLevel level : levels) {
            setSimdLevel(level);
            buf = dense;
            fillMissingInPlaceFast(buf, 0.0f);
            if (std::memcmp(buf.data(), ref.data(), n * sizeof(float)) !=
                0)
                mismatch("fill_missing", level);
            per_level.emplace_back(level, bestSeconds(bc.reps, [&] {
                std::memcpy(buf.data(), dense.data(), n * sizeof(float));
                fillMissingInPlaceFast(buf, 0.0f);
            }));
        }
        const double ref_secs = bestSeconds(bc.reps, [&] {
            std::memcpy(buf.data(), dense.data(), n * sizeof(float));
            fillMissingInPlace(buf, 0.0f);
        });
        emitKernel("fill_missing", ref_secs, n, 1.0, per_level, false);
    }

    std::printf("  ],\n");
}

void
runEndToEnd(const BenchConfig& bc)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 4096;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    const Preprocessor pre(cfg);
    const size_t rows = raw.numRows();

    // Reference: the allocating preprocess() at scalar level (the seed
    // path ran scalar kernels and allocated each MiniBatch fresh).
    setSimdLevel(SimdLevel::kScalar);
    const uint64_t want = miniBatchChecksum(pre.preprocess(raw));
    const double ref_secs = bestSeconds(bc.reps, [&] {
        for (size_t i = 0; i < bc.e2e_batches; ++i) {
            MiniBatch mb = pre.preprocess(raw);
            if (miniBatchChecksum(mb) != want)
                mismatch("preprocess", activeSimdLevel());
        }
    });

    std::printf("  \"end_to_end\": {\n"
                "    \"workload\": \"%s\",\n"
                "    \"batch_size\": %zu,\n"
                "    \"batches_per_rep\": %zu,\n"
                "    \"reference_scalar_alloc\": {\"seconds\": %.6e, "
                "\"rows_per_sec\": %.4e},\n"
                "    \"arena\": [\n",
                cfg.name.c_str(), rows, bc.e2e_batches, ref_secs,
                static_cast<double>(rows * bc.e2e_batches) / ref_secs);

    const auto levels = availableLevels();
    for (size_t i = 0; i < levels.size(); ++i) {
        setSimdLevel(levels[i]);
        BatchArena arena;
        MiniBatch mb;
        pre.preprocessInto(raw, mb, arena);  // warm the arena + shell
        if (miniBatchChecksum(mb) != want)
            mismatch("preprocessInto", levels[i]);
        const size_t slots_after_warmup = arena.slotAllocations();
        const double secs = bestSeconds(bc.reps, [&] {
            for (size_t b = 0; b < bc.e2e_batches; ++b)
                pre.preprocessInto(raw, mb, arena);
        });
        if (miniBatchChecksum(mb) != want)
            mismatch("preprocessInto", levels[i]);
        // Steady state must not have grown the arena.
        if (arena.slotAllocations() != slots_after_warmup) {
            std::fprintf(stderr,
                         "FATAL: arena grew after warmup (%zu -> %zu)\n",
                         slots_after_warmup, arena.slotAllocations());
            std::exit(1);
        }
        std::printf("      {\"level\": \"%s\", \"seconds\": %.6e, "
                    "\"rows_per_sec\": %.4e, "
                    "\"speedup_vs_reference\": %.3f, "
                    "\"arena_slots\": %zu, \"arena_batches\": %zu, "
                    "\"arena_bytes_reserved\": %zu}%s\n",
                    simdLevelName(levels[i]), secs,
                    static_cast<double>(rows * bc.e2e_batches) / secs,
                    ref_secs / secs, arena.slotAllocations(),
                    arena.batches(), arena.bytesReserved(),
                    i + 1 < levels.size() ? "," : "");
    }
    std::printf("    ]\n  }\n");
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }
    const BenchConfig bc = quick ? BenchConfig{1 << 14, 3, 2}
                                 : BenchConfig{1 << 20, 9, 8};

    std::printf("{\n"
                "  \"bench\": \"hotpath\",\n"
                "  \"quick\": %s,\n"
                "  \"detected_simd\": \"%s\",\n",
                quick ? "true" : "false",
                simdLevelName(detectedSimdLevel()));
    runKernels(bc);
    runEndToEnd(bc);
    std::printf("}\n");
    return 0;
}
