/**
 * @file
 * Figure 12: single-worker mini-batch latency breakdown of Disagg vs
 * PreSto (normalized to Disagg per model) and PreSto's end-to-end
 * speedup.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/cpu_model.h"
#include "models/isp_model.h"

using namespace presto;

namespace {

void
addBreakdownRow(TablePrinter& table, const std::string& label,
                const LatencyBreakdown& b, double norm)
{
    table.addRow({label,
                  formatDouble(b.extract_read / norm, 3),
                  formatDouble(b.extract_decode / norm, 3),
                  formatDouble(b.bucketize / norm, 3),
                  formatDouble(b.sigrid_hash / norm, 3),
                  formatDouble(b.log / norm, 3),
                  formatDouble(b.other / norm, 3),
                  formatDouble(b.total() / norm, 3),
                  formatTime(b.total())});
}

}  // namespace

int
main()
{
    printSection("Figure 12: Disagg vs PreSto latency breakdown and "
                 "end-to-end preprocessing speedup");

    TablePrinter table({"System", "Extract(Read)", "Extract(Decode)",
                        "Bucketize", "SigridHash", "Log", "Others", "Total",
                        "Latency"});
    // Compressed-PSF what-if: LZ pages shrink delivery and add a
    // decompress term on both sides (constants from BENCH_decode.json).
    const PageCompressionModel lz{cal::kMeasuredLzStoredRatio,
                                  cal::kMeasuredLzDecompressBytesPerSec};
    // Entropy what-if: the full codec menu (LZ + Huffman) stores fewer
    // bytes but chains a serial Huffman stage before the LZ stage.
    const PageCompressionModel entropy{
        cal::kMeasuredEntropyStoredRatio,
        cal::kMeasuredLzDecompressBytesPerSec,
        cal::kMeasuredHuffDecodeBytesPerSec};

    double speedup_sum = 0, speedup_max = 0;
    double measured_speedup_sum = 0;
    double compressed_speedup_sum = 0;
    double entropy_speedup_sum = 0;
    double extract_share_sum = 0;
    for (const auto& cfg : allRmConfigs()) {
        const LatencyBreakdown disagg =
            CpuWorkerModel(cfg).batchLatency();
        // Same worker with Extract(Decode) re-anchored to this host's
        // measured vectorized decoders (BENCH_decode.json).
        const LatencyBreakdown measured =
            CpuWorkerModel(cfg, cal::kMeasuredSimdDecodeSecPerValue)
                .batchLatency();
        const LatencyBreakdown disagg_lz =
            CpuWorkerModel(cfg, cal::kCpuDecodeSecPerValue, lz)
                .batchLatency();
        const LatencyBreakdown presto =
            IspDeviceModel(IspParams::smartSsd(), cfg).batchLatency();
        const LatencyBreakdown presto_lz =
            IspDeviceModel(IspParams::smartSsdCompressed(), cfg)
                .batchLatency();
        const LatencyBreakdown disagg_entropy =
            CpuWorkerModel(cfg, cal::kCpuDecodeSecPerValue, entropy)
                .batchLatency();
        const LatencyBreakdown presto_entropy =
            IspDeviceModel(IspParams::smartSsdEntropy(), cfg)
                .batchLatency();
        const double norm = disagg.total();
        addBreakdownRow(table, cfg.name + " Disagg", disagg, norm);
        addBreakdownRow(table, cfg.name + " Disagg(m.dec)", measured,
                        norm);
        addBreakdownRow(table, cfg.name + " PreSto", presto, norm);
        table.addSeparator();

        const double speedup = disagg.total() / presto.total();
        speedup_sum += speedup;
        speedup_max = std::max(speedup_max, speedup);
        measured_speedup_sum += measured.total() / presto.total();
        compressed_speedup_sum += disagg_lz.total() / presto_lz.total();
        entropy_speedup_sum +=
            disagg_entropy.total() / presto_entropy.total();
        extract_share_sum += presto.extractShare();
    }
    table.print();

    std::printf("\nEnd-to-end speedup: average %.1fx, max %.1fx "
                "(paper: 9.6x avg, 11.6x max)\n",
                speedup_sum / 5, speedup_max);
    std::printf("With measured SIMD decode on the CPU worker "
                "(%.1f ns/value vs %.1f ns calibrated): average %.1fx\n",
                cal::kMeasuredSimdDecodeSecPerValue * 1e9,
                cal::kCpuDecodeSecPerValue * 1e9,
                measured_speedup_sum / 5);
    std::printf("With LZ-compressed PSF pages on both sides (stored "
                "ratio %.2f, decompress %.1f/%.1f GB/s cpu/isp): "
                "average %.1fx\n",
                cal::kMeasuredLzStoredRatio,
                cal::kMeasuredLzDecompressBytesPerSec / 1e9,
                cal::kIspDecompressBytesPerSec / 1e9,
                compressed_speedup_sum / 5);
    std::printf("With full-menu entropy PSF pages on both sides (stored "
                "ratio %.2f, huffman %.1f/%.1f GB/s cpu/isp): "
                "average %.1fx\n",
                cal::kMeasuredEntropyStoredRatio,
                cal::kMeasuredHuffDecodeBytesPerSec / 1e9,
                cal::kIspEntropyDecodeBytesPerSec / 1e9,
                entropy_speedup_sum / 5);
    std::printf("PreSto Extract share of its own latency: %.1f%% average "
                "(paper: 40.8%%)\n",
                extract_share_sum / 5 * 100.0);
    return 0;
}
