/**
 * @file
 * google-benchmark microbenchmarks of the real (functional) kernels on
 * this host: the preprocessing operators, columnar encode/decode, and
 * the full Transform pipeline. These measure the library itself (not the
 * calibrated device models).
 */
#include <benchmark/benchmark.h>

#include "columnar/columnar_file.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "ops/fast_ops.h"
#include "ops/ops.h"
#include "ops/preprocessor.h"

using namespace presto;

namespace {

std::vector<float>
denseValues(size_t n)
{
    Rng rng(42);
    std::vector<float> v(n);
    for (auto& x : v)
        x = static_cast<float>(rng.logNormal(2.0, 1.5));
    return v;
}

std::vector<int64_t>
sparseIds(size_t n)
{
    Rng rng(43);
    std::vector<int64_t> v(n);
    for (auto& x : v)
        x = static_cast<int64_t>(rng.next() >> 1);
    return v;
}

void
BM_Bucketize(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const size_t m = static_cast<size_t>(state.range(1));
    const auto values = denseValues(n);
    const auto bounds =
        BucketBoundaries::makeLogSpaced(m, 0.02f, 3000.0f);
    std::vector<int64_t> out(n);
    for (auto _ : state) {
        bucketizeInto(values, bounds, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_Bucketize)
    ->Args({8192, 1024})
    ->Args({8192, 4096})
    ->Args({65536, 4096});

void
BM_BucketizeEytzinger(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const size_t m = static_cast<size_t>(state.range(1));
    const auto values = denseValues(n);
    const auto bounds =
        BucketBoundaries::makeLogSpaced(m, 0.02f, 3000.0f);
    const EytzingerBucketizer fast(bounds);
    std::vector<int64_t> out(n);
    for (auto _ : state) {
        fast.bucketizeInto(values, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_BucketizeEytzinger)
    ->Args({8192, 1024})
    ->Args({8192, 4096})
    ->Args({65536, 4096});

void
BM_SigridHashUnrolled(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    auto ids = sparseIds(n);
    for (auto _ : state) {
        auto copy = ids;
        sigridHashInPlaceUnrolled(copy, 0x5eed, 500000);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SigridHashUnrolled)->Arg(65536)->Arg(1 << 20);

void
BM_SigridHash(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    auto ids = sparseIds(n);
    for (auto _ : state) {
        auto copy = ids;
        sigridHashInPlace(copy, 0x5eed, 500000);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SigridHash)->Arg(8192)->Arg(65536)->Arg(1 << 20);

void
BM_LogTransform(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    auto values = denseValues(n);
    for (auto _ : state) {
        auto copy = values;
        logTransformInPlace(copy);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_LogTransform)->Arg(8192)->Arg(65536)->Arg(1 << 20);

void
BM_ColumnarWrite(benchmark::State& state)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = static_cast<size_t>(state.range(0));
    RawDataGenerator gen(cfg);
    const RowBatch batch = gen.generatePartition(0);
    ColumnarFileWriter writer;
    size_t bytes = 0;
    for (auto _ : state) {
        auto out = writer.write(batch, 0);
        bytes = out.size();
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_ColumnarWrite)->Arg(1024)->Arg(8192);

void
BM_ColumnarReadAll(benchmark::State& state)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = static_cast<size_t>(state.range(0));
    RawDataGenerator gen(cfg);
    const auto bytes = ColumnarFileWriter().write(gen.generatePartition(0),
                                                  0);
    for (auto _ : state) {
        ColumnarFileReader reader;
        auto st = reader.open(bytes);
        auto batch = reader.readAll();
        benchmark::DoNotOptimize(batch.ok());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_ColumnarReadAll)->Arg(1024)->Arg(8192);

void
BM_TransformPipeline(benchmark::State& state)
{
    RmConfig cfg = rmConfig(static_cast<int>(state.range(0)));
    cfg.batch_size = 1024;  // keep single-host iteration times sane
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    Preprocessor pre(cfg);
    for (auto _ : state) {
        MiniBatch mb = pre.preprocess(raw);
        benchmark::DoNotOptimize(mb.dense.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * cfg.batch_size));
}
BENCHMARK(BM_TransformPipeline)->Arg(1)->Arg(2)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
