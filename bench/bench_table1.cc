/**
 * @file
 * Table I: RecSys training dataset configurations and target model
 * architectures (RM1 public / RM2-5 synthetic production-scale).
 */
#include <string>

#include "common/table_printer.h"
#include "common/units.h"
#include "datagen/rm_config.h"

using namespace presto;

namespace {

std::string
mlpString(const std::vector<size_t>& layers)
{
    std::string s;
    for (size_t i = 0; i < layers.size(); ++i) {
        if (i > 0)
            s += "-";
        s += std::to_string(layers[i]);
    }
    return s;
}

}  // namespace

int
main()
{
    printSection("Table I: RecSys dataset configuration and model "
                 "architecture");

    TablePrinter table({"Model", "Type", "#Dense", "#Sparse",
                        "AvgSparseLen", "#Generated", "BucketSize",
                        "BottomMLP", "TopMLP", "#Tables", "AvgEmbeddings"});
    for (const auto& cfg : allRmConfigs()) {
        table.addRow({cfg.name, cfg.name == "RM1" ? "Public" : "Synthetic",
                      std::to_string(cfg.num_dense),
                      std::to_string(cfg.num_sparse),
                      cfg.fixed_sparse_length
                          ? formatDouble(cfg.avg_sparse_length, 0) + " (fixed)"
                          : formatDouble(cfg.avg_sparse_length, 0),
                      std::to_string(cfg.num_generated),
                      std::to_string(cfg.bucket_size),
                      mlpString(cfg.bottom_mlp), mlpString(cfg.top_mlp),
                      std::to_string(cfg.num_tables),
                      std::to_string(cfg.avg_embeddings)});
    }
    table.print();
    return 0;
}
