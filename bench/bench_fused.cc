/**
 * @file
 * Tracked perf comparison of the fused op-chain bytecode VM against the
 * unfused one-pass-per-operator reference executor, emitted as JSON
 * (committed as BENCH_fused.json; schema in docs/PERF.md).
 *
 * Measures, on this host, representative operator chains (dense float
 * chains, sparse hash chains, the generated Bucketize bridge) fused vs
 * unfused at the best dispatched SIMD level, plus the end-to-end RM1
 * standard plan at every level. Every configuration is differentially
 * checked — fused output must be bit-identical to the unfused
 * reference — before it is timed; a mismatch exits nonzero.
 *
 * The end-to-end section also reports fused output values/second, the
 * provenance of cal::kMeasuredFusedValuesPerSec (models/calibration.h).
 *
 * In full mode the bench enforces its own reason to exist: the fused
 * end-to-end path must beat the unfused reference by >= 1.3x at the
 * best SIMD level, or the run exits nonzero.
 *
 * Usage: bench_fused [--quick]   (--quick shrinks sizes/reps for the
 * ctest "perf" smoke label; differential checks still run, the speedup
 * gate is not enforced.)
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/batch_arena.h"
#include "datagen/generator.h"
#include "ops/opvm.h"
#include "ops/plan.h"
#include "ops/preprocessor.h"
#include "ops/simd.h"

using namespace presto;

namespace {

struct BenchConfig {
    size_t chain_rows;   ///< rows per chain-timing batch
    size_t reps;         ///< timed repetitions (best-of)
    size_t e2e_batches;  ///< end-to-end iterations per rep
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

template <typename F>
double
bestSeconds(size_t reps, F&& body)
{
    double best = 1e300;
    for (size_t r = 0; r < reps; ++r) {
        const double t0 = now();
        body();
        const double dt = now() - t0;
        if (dt < best)
            best = dt;
    }
    return best;
}

/** Bitwise mini-batch equality (floats by pattern, NaN-safe). */
bool
sameBits(const MiniBatch& a, const MiniBatch& b)
{
    if (a.batch_size != b.batch_size || a.num_dense != b.num_dense ||
        a.dense.size() != b.dense.size() ||
        a.labels.size() != b.labels.size() ||
        a.sparse.size() != b.sparse.size())
        return false;
    if (std::memcmp(a.dense.data(), b.dense.data(),
                    a.dense.size() * sizeof(float)) != 0)
        return false;
    if (std::memcmp(a.labels.data(), b.labels.data(),
                    a.labels.size() * sizeof(float)) != 0)
        return false;
    for (size_t s = 0; s < a.sparse.size(); ++s) {
        if (a.sparse[s].values != b.sparse[s].values ||
            a.sparse[s].lengths != b.sparse[s].lengths)
            return false;
    }
    return true;
}

[[noreturn]] void
mismatch(const std::string& what)
{
    std::fprintf(stderr,
                 "FATAL: fused output differs from the unfused reference "
                 "(%s, level %s)\n",
                 what.c_str(), simdLevelName(activeSimdLevel()));
    std::exit(1);
}

std::vector<SimdLevel>
availableLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::kScalar};
    if (detectedSimdLevel() >= SimdLevel::kAvx2)
        levels.push_back(SimdLevel::kAvx2);
    if (detectedSimdLevel() >= SimdLevel::kAvx512)
        levels.push_back(SimdLevel::kAvx512);
    return levels;
}

/** Sink so timed loops cannot be dead-code-eliminated. */
volatile uint64_t g_sink = 0;

RowBatch
chainBatch(size_t rows)
{
    // One dense feature + one 4-id-per-row sparse feature, realistic
    // value material (log-normal dense with missing slots, 63-bit ids).
    Rng rng(7);
    RowBatch batch(Schema::makeRecSys(1, 1));
    std::vector<float> labels(rows);
    for (auto& v : labels)
        v = static_cast<float>(rng.next() % 2);
    batch.addColumn(DenseColumn(std::move(labels)));
    std::vector<float> dense(rows);
    for (size_t i = 0; i < rows; ++i) {
        dense[i] = static_cast<float>(rng.logNormal(2.0, 1.5));
        if (i % 97 == 0)
            dense[i] = std::nanf("");
    }
    batch.addColumn(DenseColumn(std::move(dense)));
    std::vector<uint32_t> offsets(rows + 1);
    for (size_t r = 0; r <= rows; ++r)
        offsets[r] = static_cast<uint32_t>(4 * r);
    std::vector<int64_t> ids(offsets.back());
    for (auto& id : ids)
        id = static_cast<int64_t>(rng.next() >> 1);
    batch.addColumn(SparseColumn(std::move(ids), std::move(offsets)));
    return batch;
}

/** One single-output chain, fused vs unfused at the current level. */
void
benchChain(const char* name, const PlanOutput& output,
           const RowBatch& raw, const BenchConfig& bc, double values,
           bool trailing_comma)
{
    TransformPlan plan;
    plan.add(output);
    const PlanExecutor exec(plan, raw.schema());

    const MiniBatch ref = exec.runUnfused(raw);
    MiniBatch mb;
    BatchArena arena;
    exec.runInto(raw, mb, arena);
    if (!sameBits(ref, mb))
        mismatch(name);

    const double fused_secs = bestSeconds(bc.reps, [&] {
        exec.runInto(raw, mb, arena);
        g_sink += mb.batch_size;
    });
    const double unfused_secs = bestSeconds(bc.reps, [&] {
        const MiniBatch u = exec.runUnfused(raw);
        g_sink += u.batch_size;
    });

    std::printf("    {\"chain\": \"%s\", \"values_per_rep\": %.0f, "
                "\"unfused\": {\"seconds\": %.6e, \"values_per_sec\": "
                "%.4e}, "
                "\"fused\": {\"seconds\": %.6e, \"values_per_sec\": "
                "%.4e}, "
                "\"speedup\": %.3f}%s\n",
                name, values, unfused_secs, values / unfused_secs,
                fused_secs, values / fused_secs,
                unfused_secs / fused_secs, trailing_comma ? "," : "");
}

void
runChains(const BenchConfig& bc)
{
    setSimdLevel(detectedSimdLevel());
    const RowBatch raw = chainBatch(bc.chain_rows);
    const auto rows = static_cast<double>(bc.chain_rows);

    std::printf("  \"chains\": [\n");
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = "d";
        out.source_feature = "dense_0";
        out.dense_ops = {DenseOp::fillMissing(0.0f), DenseOp::log()};
        benchChain("dense_fill_log", out, raw, bc, rows, true);
    }
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kDense;
        out.output_name = "d";
        out.source_feature = "dense_0";
        out.dense_ops = {DenseOp::clamp(0.0f, 3000.0f),
                         DenseOp::fillMissing(1.0f), DenseOp::log(),
                         DenseOp::clamp(0.0f, 8.0f)};
        benchChain("dense_clamp_fill_log_clamp", out, raw, bc, rows,
                   true);
    }
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kSparse;
        out.output_name = "s";
        out.source_feature = "sparse_0";
        out.sparse_ops = {SparseOp::sigridHash(0x5eed, 500000)};
        benchChain("sparse_hash", out, raw, bc, 4.0 * rows, true);
    }
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kSparse;
        out.output_name = "s";
        out.source_feature = "sparse_0";
        out.sparse_ops = {SparseOp::sigridHash(1, 500000),
                          SparseOp::sigridHash(2, 100000),
                          SparseOp::sigridHash(3, 65536)};
        benchChain("sparse_hash_x3", out, raw, bc, 4.0 * rows, true);
    }
    {
        PlanOutput out;
        out.kind = PlanOutput::Kind::kGenerated;
        out.output_name = "g";
        out.source_feature = "dense_0";
        out.dense_ops = {DenseOp::fillMissing(0.0f)};
        out.bucket_boundaries = 1024;
        out.sparse_ops = {SparseOp::sigridHash(0x5eed, 500000)};
        benchChain("generated_fill_bucketize_hash", out, raw, bc, rows,
                   false);
    }
    std::printf("  ],\n");
}

/** @return the best-level end-to-end fused/unfused speedup. */
double
runEndToEnd(const BenchConfig& bc, double* fused_values_per_sec)
{
    RmConfig cfg = rmConfig(1);
    cfg.batch_size = 4096;
    RawDataGenerator gen(cfg);
    const RowBatch raw = gen.generatePartition(0);
    const PlanExecutor exec(TransformPlan::standard(cfg), raw.schema());
    const size_t rows = raw.numRows();
    const double output_values =
        TransformWork::measure(cfg, raw).output_values;

    std::printf("  \"end_to_end\": {\n"
                "    \"workload\": \"%s\",\n"
                "    \"batch_size\": %zu,\n"
                "    \"batches_per_rep\": %zu,\n"
                "    \"output_values_per_batch\": %.0f,\n"
                "    \"levels\": [\n",
                cfg.name.c_str(), rows, bc.e2e_batches, output_values);

    double best_speedup = 0.0;
    const auto levels = availableLevels();
    for (size_t i = 0; i < levels.size(); ++i) {
        setSimdLevel(levels[i]);
        const MiniBatch ref = exec.runUnfused(raw);
        MiniBatch mb;
        BatchArena arena;
        exec.runInto(raw, mb, arena);
        if (!sameBits(ref, mb))
            mismatch("end_to_end " + cfg.name);

        const double fused_secs = bestSeconds(bc.reps, [&] {
            for (size_t b = 0; b < bc.e2e_batches; ++b) {
                exec.runInto(raw, mb, arena);
                g_sink += mb.batch_size;
            }
        });
        const double unfused_secs = bestSeconds(bc.reps, [&] {
            for (size_t b = 0; b < bc.e2e_batches; ++b) {
                const MiniBatch u = exec.runUnfused(raw);
                g_sink += u.batch_size;
            }
        });
        const double batches = static_cast<double>(bc.e2e_batches);
        const double speedup = unfused_secs / fused_secs;
        const double values_per_sec =
            output_values * batches / fused_secs;
        if (speedup > best_speedup) {
            best_speedup = speedup;
            *fused_values_per_sec = values_per_sec;
        }
        std::printf(
            "      {\"level\": \"%s\", "
            "\"unfused\": {\"seconds\": %.6e, \"rows_per_sec\": %.4e}, "
            "\"fused\": {\"seconds\": %.6e, \"rows_per_sec\": %.4e, "
            "\"output_values_per_sec\": %.4e}, "
            "\"speedup\": %.3f}%s\n",
            simdLevelName(levels[i]), unfused_secs,
            static_cast<double>(rows) * batches / unfused_secs,
            fused_secs, static_cast<double>(rows) * batches / fused_secs,
            values_per_sec, speedup, i + 1 < levels.size() ? "," : "");
    }
    std::printf("    ]\n  },\n");
    return best_speedup;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }
    const BenchConfig bc = quick ? BenchConfig{1 << 12, 3, 2}
                                 : BenchConfig{1 << 20, 9, 8};
    constexpr double kRequiredSpeedup = 1.3;

    std::printf("{\n"
                "  \"bench\": \"fused\",\n"
                "  \"quick\": %s,\n"
                "  \"detected_simd\": \"%s\",\n",
                quick ? "true" : "false",
                simdLevelName(detectedSimdLevel()));
    runChains(bc);
    double fused_values_per_sec = 0.0;
    const double speedup = runEndToEnd(bc, &fused_values_per_sec);
    std::printf("  \"gate\": {\"required_speedup\": %.2f, "
                "\"measured_speedup\": %.3f, \"enforced\": %s}\n"
                "}\n",
                kRequiredSpeedup, speedup, quick ? "false" : "true");
    if (!quick && speedup < kRequiredSpeedup) {
        std::fprintf(stderr,
                     "FATAL: fused end-to-end speedup %.3fx is below the "
                     "%.2fx gate\n",
                     speedup, kRequiredSpeedup);
        return 1;
    }
    return 0;
}
