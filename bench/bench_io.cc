/**
 * @file
 * Tracked perf baseline of the async storage I/O engine, emitted as
 * JSON (committed as BENCH_io.json; schema in docs/PERF.md).
 *
 * Measures, with real emulated storage latency (IoRing workers sleep
 * each request's modeled SSD service time), how much of the storage
 * latency the page-granular prefetch window hides: a queue-depth sweep
 * of AsyncPartitionReader against the serial queue_depth=1 schedule,
 * plus a multi-partition section where several readers share one ring
 * and one decode ThreadPool. The async batch is differentially checked
 * against ColumnarFileReader::readAllInto() first; any mismatch exits
 * nonzero, so a perf number can never be reported for a wrong reader.
 *
 * Usage: bench_io [--quick]   (--quick shrinks the partition and skips
 * the latency-hiding assertion for the ctest "perf" smoke label.)
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cachesim/op_traces.h"
#include "columnar/columnar_file.h"
#include "common/thread_pool.h"
#include "core/partition_store.h"
#include "datagen/generator.h"
#include "io/async_reader.h"
#include "io/io_ring.h"

using namespace presto;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct SweepPoint {
    size_t queue_depth = 0;
    double wall_sec = 0;
    double storage_sec = 0;   ///< modeled storage time of the read
    double hidden_fraction = 0;  ///< of blocking storage time hidden
};

/** One emulated-latency read; returns wall seconds. */
double
timedRead(IoRing& ring, size_t queue_depth,
          std::span<const uint8_t> encoded, RowBatch& out,
          AsyncReadStats& rs)
{
    AsyncReadOptions opt;
    opt.queue_depth = queue_depth;
    AsyncPartitionReader reader(ring, opt);
    const double start = now();
    const Status st = reader.read(encoded, 0, out);
    const double wall = now() - start;
    if (!st.ok()) {
        std::fprintf(stderr, "async read failed: %s\n",
                     st.toString().c_str());
        std::exit(1);
    }
    rs = reader.lastReadStats();
    return wall;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }

    RmConfig cfg = rmConfig(1);
    cfg.batch_size = quick ? 16384 : 262144;
    RawDataGenerator gen(cfg);
    PartitionStore store(gen);
    const auto& encoded = store.partition(0);

    // Differential gate: the async path must be bit-identical to the
    // blocking reader before any timing is reported.
    ColumnarFileReader blocking;
    RowBatch expect;
    if (!blocking.open(encoded).ok() ||
        !blocking.readAllInto(expect).ok()) {
        std::fprintf(stderr, "blocking read failed\n");
        return 1;
    }
    size_t pages = 0;
    {
        IoRing ring;  // simulation mode: no sleeps for the check
        AsyncPartitionReader reader(ring);
        RowBatch got;
        if (!reader.read(encoded, 0, got).ok() || !(got == expect)) {
            std::fprintf(stderr,
                         "differential check failed: async != blocking\n");
            return 1;
        }
        pages = reader.lastReadStats().pages;
    }

    // Queue-depth sweep under emulated latency. queue_depth=1 is the
    // blocking schedule: one page's storage wait, then its decode, in
    // strict alternation — the baseline every deeper window must beat.
    const size_t depths[] = {1, 2, 4, 8, 16};
    const size_t reps = quick ? 1 : 3;
    std::vector<SweepPoint> sweep;
    IoRingStats deepest_stats{};
    for (const size_t depth : depths) {
        SweepPoint p;
        p.queue_depth = depth;
        p.wall_sec = 1e100;
        for (size_t r = 0; r < reps; ++r) {
            IoRingOptions opt;
            opt.emulate_latency = true;
            IoRing ring(opt);
            RowBatch got;
            AsyncReadStats rs;
            const double wall = timedRead(ring, depth, encoded, got, rs);
            if (wall < p.wall_sec) {
                p.wall_sec = wall;
                p.storage_sec = rs.modeled_storage_sec;
            }
            if (depth == 16)
                deepest_stats = ring.statsSnapshot();
        }
        sweep.push_back(p);
    }
    const double blocking_wall = sweep[0].wall_sec;
    const double blocking_storage = sweep[0].storage_sec;
    for (auto& p : sweep) {
        p.hidden_fraction =
            (blocking_wall - p.wall_sec) / blocking_storage;
    }

    // Multi-partition: 4 readers on their own threads share one ring
    // and one decode pool, so pages of different partitions keep the
    // device channels and the decoder busy at once.
    const size_t kPartitions = 4;
    std::vector<RowBatch> parts(kPartitions);
    for (uint64_t pid = 0; pid < kPartitions; ++pid)
        (void)store.partition(pid);  // materialize outside the timing
    double serial_wall = 0;
    {
        IoRingOptions opt;
        opt.emulate_latency = true;
        IoRing ring(opt);
        const double start = now();
        for (uint64_t pid = 0; pid < kPartitions; ++pid) {
            AsyncReadOptions ropt;
            ropt.queue_depth = 1;
            AsyncPartitionReader reader(ring, ropt);
            if (!reader.read(store.partition(pid), pid, parts[pid])
                     .ok()) {
                std::fprintf(stderr, "serial read failed\n");
                return 1;
            }
        }
        serial_wall = now() - start;
    }
    double shared_wall = 0;
    {
        IoRingOptions opt;
        opt.emulate_latency = true;
        IoRing ring(opt);
        ThreadPool pool(2);
        std::vector<std::thread> threads;
        bool failed = false;
        const double start = now();
        for (uint64_t pid = 0; pid < kPartitions; ++pid) {
            threads.emplace_back([&, pid] {
                AsyncReadOptions ropt;
                ropt.queue_depth = 8;
                AsyncPartitionReader reader(ring, ropt);
                reader.setDecodePool(&pool);
                RowBatch got;
                if (!reader.read(store.partition(pid), pid, got).ok() ||
                    !(got == parts[pid]))
                    failed = true;
            });
        }
        for (auto& t : threads)
            t.join();
        shared_wall = now() - start;
        if (failed) {
            std::fprintf(stderr, "multi-partition read failed\n");
            return 1;
        }
    }

    // Frequency-aware placement: a cold read at queue depth 4 of the
    // heat-annotated full-codec-menu (entropy) file under kHeat
    // placement, against the LZ-only file under kAddress striping (a
    // conventional address-interleaved SSD mapping). The entropy menu
    // shrinks the bytes each channel must move and heat placement
    // guarantees consecutive hot-stream pages land on distinct
    // channels, so the two effects compound on the cold path.
    //
    // latency_scale makes the cold read device-bound: at scale 1 on a
    // one-core host the walls are dominated by page decode (which the
    // queue-depth sweep above already measures), not by the channel
    // schedule this section compares. Scaling the modeled flash service
    // time up by 8x puts the storage term back in charge — the regime a
    // cold first-epoch read from dense QLC flash actually lives in —
    // while decode still overlaps underneath it.
    constexpr double kColdReadLatencyScale = 8.0;
    double heat_wall = 1e100, addr_wall = 1e100;
    uint64_t heat_bytes = 0, addr_bytes = 0;
    {
        const RowBatch batch = gen.generatePartition(0);
        WriterOptions lz_opts;
        lz_opts.codec = PageCodec::kLz;
        WriterOptions heat_opts;  // default codec: full menu
        heat_opts.column_heat = columnAccessHeat(cfg);
        const auto lz_file = ColumnarFileWriter(lz_opts).write(batch, 0);
        const auto heat_file =
            ColumnarFileWriter(heat_opts).write(batch, 0);

        auto timedPlacement = [&](std::span<const uint8_t> file,
                                  ChannelPlacement placement,
                                  uint64_t* bytes) {
            double best = 1e100;
            for (size_t r = 0; r < reps; ++r) {
                IoRingOptions opt;
                opt.emulate_latency = true;
                opt.latency_scale = kColdReadLatencyScale;
                IoRing ring(opt);
                AsyncReadOptions ropt;
                ropt.queue_depth = 4;
                ropt.placement = placement;
                AsyncPartitionReader reader(ring, ropt);
                RowBatch got;
                const double start = now();
                const Status st = reader.read(file, 0, got);
                const double wall = now() - start;
                if (!st.ok() || !(got == expect)) {
                    std::fprintf(
                        stderr,
                        "placement read failed or differs (%d)\n",
                        static_cast<int>(placement));
                    std::exit(1);
                }
                best = std::min(best, wall);
                *bytes = reader.lastReadStats().bytes_read;
            }
            return best;
        };
        addr_wall =
            timedPlacement(lz_file, ChannelPlacement::kAddress,
                           &addr_bytes);
        heat_wall = timedPlacement(heat_file, ChannelPlacement::kHeat,
                                   &heat_bytes);
    }

    std::printf("{\n"
                "  \"bench\": \"io\",\n"
                "  \"quick\": %s,\n"
                "  \"partition\": {\"rows\": %zu, \"bytes\": %zu, "
                "\"pages\": %zu},\n",
                quick ? "true" : "false",
                static_cast<size_t>(cfg.batch_size), encoded.size(),
                pages);
    std::printf("  \"queue_depth_sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
        const SweepPoint& p = sweep[i];
        std::printf("    {\"queue_depth\": %zu, \"wall_sec\": %.6e, "
                    "\"storage_sec\": %.6e, \"hidden_fraction\": %.3f}%s\n",
                    p.queue_depth, p.wall_sec, p.storage_sec,
                    p.hidden_fraction, i + 1 < sweep.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"ring_stats_qd16\": {\"submitted\": %llu, "
                "\"completed\": %llu, \"max_in_flight\": %llu, "
                "\"mean_queue_depth\": %.2f, "
                "\"latency_mean_sec\": %.6e, \"latency_p50_sec\": %.6e, "
                "\"latency_p95_sec\": %.6e, \"latency_p99_sec\": %.6e},\n",
                static_cast<unsigned long long>(deepest_stats.submitted),
                static_cast<unsigned long long>(deepest_stats.completed),
                static_cast<unsigned long long>(
                    deepest_stats.max_in_flight),
                deepest_stats.queue_depth.mean(),
                deepest_stats.latency.mean(),
                deepest_stats.latencyQuantile(0.50),
                deepest_stats.latencyQuantile(0.95),
                deepest_stats.latencyQuantile(0.99));
    std::printf("  \"multi_partition\": {\"partitions\": %zu, "
                "\"serial_qd1_wall_sec\": %.6e, "
                "\"shared_ring_pool_wall_sec\": %.6e, "
                "\"speedup\": %.2f},\n",
                kPartitions, serial_wall, shared_wall,
                serial_wall / shared_wall);
    std::printf("  \"placement_qd4\": {\n"
                "    \"latency_scale\": %.1f,\n"
                "    \"address_striped_lz\": {\"wall_sec\": %.6e, "
                "\"bytes_read\": %llu},\n"
                "    \"heat_striped_entropy\": {\"wall_sec\": %.6e, "
                "\"bytes_read\": %llu, \"speedup_vs_address\": %.3f}\n"
                "  },\n",
                kColdReadLatencyScale, addr_wall,
                static_cast<unsigned long long>(addr_bytes),
                heat_wall, static_cast<unsigned long long>(heat_bytes),
                addr_wall / heat_wall);
    std::printf("  \"differential\": \"ok\"\n}\n");

    // Acceptance gates (full mode): a window of >= 4 pages must hide at
    // least half of the blocking schedule's modeled storage time, and
    // the heat-striped entropy file must read no slower cold than the
    // address-striped LZ-only baseline at the same queue depth.
    if (!quick) {
        for (const SweepPoint& p : sweep) {
            if (p.queue_depth >= 4 && p.hidden_fraction < 0.5) {
                std::fprintf(stderr,
                             "queue depth %zu hid only %.0f%% of storage "
                             "latency (need >= 50%%)\n",
                             p.queue_depth, p.hidden_fraction * 100.0);
                return 1;
            }
        }
        if (heat_wall > addr_wall) {
            std::fprintf(stderr,
                         "heat-striped entropy cold read (%.3e s) slower "
                         "than address-striped LZ baseline (%.3e s)\n",
                         heat_wall, addr_wall);
            return 1;
        }
    }
    return 0;
}
