/**
 * @file
 * Fleet-scale scenario: many concurrent training jobs (the Section VI-A
 * argument that datacenter fleets time-share the network). Aggregates
 * provisioning, power, TCO, and preprocessing network traffic for a
 * representative job mix under Disagg vs PreSto.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "core/fleet.h"

using namespace presto;

int
main()
{
    printSection("Fleet scenario: 20 concurrent training jobs");

    // A representative mix: a few public-scale jobs, mostly
    // production-scale ones, each on an 8-GPU node (two larger jobs on
    // 16 GPUs).
    std::vector<JobSpec> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back({1, 8});
    for (int rm : {2, 3, 4}) {
        for (int i = 0; i < 4; ++i)
            jobs.push_back({rm, 8});
    }
    jobs.push_back({5, 8});
    jobs.push_back({5, 8});
    jobs.push_back({5, 16});
    jobs.push_back({5, 16});

    FleetModel fleet(std::move(jobs));

    TablePrinter table({"System", "Workers", "Power", "3yr TCO",
                        "Raw-in traffic", "Tensors-out traffic",
                        "Total network"});
    for (FleetSystem system :
         {FleetSystem::kDisaggCpu, FleetSystem::kPrestoSmartSsd}) {
        const FleetSummary s = fleet.evaluate(system);
        table.addRow({s.system, std::to_string(s.total_workers),
                      formatDouble(s.total_power_watts / 1000.0, 1) + " kW",
                      "$" + formatDouble(s.total_cost_dollars, 0),
                      formatBandwidth(s.raw_in_bytes_per_sec),
                      formatBandwidth(s.tensors_out_bytes_per_sec),
                      formatBandwidth(s.networkBytesPerSec())});
    }
    table.print();

    std::printf("\nPreSto removes the storage->preprocessing hop for every "
                "job: %.1fx less preprocessing traffic offered to the "
                "datacenter network (cf. the 2.9x per-batch RPC reduction "
                "of Figure 13).\n",
                fleet.networkReliefFactor());
    return 0;
}
