/**
 * @file
 * Figure 17: sensitivity of the Bucketize / SigridHash / Log latency to
 * the number of features, for Disagg and PreSto. The 1x point is the
 * RM5 configuration; feature counts scale from 0.25x to 4x.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/cpu_model.h"
#include "models/isp_model.h"

using namespace presto;

namespace {

RmConfig
scaleFeatures(const RmConfig& base, double k)
{
    RmConfig cfg = base;
    cfg.name = base.name + " x" + formatDouble(k, 2);
    cfg.num_dense = static_cast<size_t>(base.num_dense * k);
    cfg.num_sparse = static_cast<size_t>(base.num_sparse * k);
    cfg.num_generated = static_cast<size_t>(base.num_generated * k);
    return cfg;
}

}  // namespace

int
main()
{
    printSection("Figure 17: feature-count sensitivity of the key "
                 "operators (1x = RM5; latencies normalized to PreSto 1x "
                 "per op)");

    const RmConfig& rm5 = rmConfig(5);
    const IspDeviceModel base_isp(IspParams::smartSsd(), rm5);
    const LatencyBreakdown base = base_isp.batchLatency();

    TablePrinter table({"Scale", "Disagg Bucketize", "PreSto Bucketize",
                        "Disagg SigridHash", "PreSto SigridHash",
                        "Disagg Log", "PreSto Log", "GenNorm speedup"});

    for (double k : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const RmConfig cfg = scaleFeatures(rm5, k);
        const LatencyBreakdown d = CpuWorkerModel(cfg).batchLatency();
        const LatencyBreakdown p =
            IspDeviceModel(IspParams::smartSsd(), cfg).batchLatency();
        const double gen_norm_speedup =
            (d.bucketize + d.sigrid_hash + d.log) /
            (p.bucketize + p.sigrid_hash + p.log);
        table.addRow({formatDouble(k, 2) + "x",
                      formatDouble(d.bucketize / base.bucketize, 1),
                      formatDouble(p.bucketize / base.bucketize, 1),
                      formatDouble(d.sigrid_hash / base.sigrid_hash, 1),
                      formatDouble(p.sigrid_hash / base.sigrid_hash, 1),
                      formatDouble(d.log / base.log, 1),
                      formatDouble(p.log / base.log, 1),
                      formatDouble(gen_norm_speedup, 1) + "x"});
    }
    table.print();

    std::printf("\nPaper reference: Disagg latency grows ~proportionally "
                "with the feature count while PreSto keeps large, stable "
                "speedups by exploiting inter-/intra-feature "
                "parallelism.\n");
    return 0;
}
