/**
 * @file
 * Ablation: columnar (PSF) vs row-oriented (RSF) storage for the Extract
 * stage — the design choice Section II-B motivates. Measures, on real
 * encoded files, the bytes a reader must touch when a model consumes
 * only a subset of the logged features.
 */
#include <string>
#include <vector>

#include "columnar/columnar_file.h"
#include "columnar/row_file.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "datagen/generator.h"

using namespace presto;

namespace {

/** Feature names for a model that uses a fraction of the logged data. */
std::vector<std::string>
projection(const RmConfig& cfg, double fraction)
{
    std::vector<std::string> names = {"label"};
    const auto dense = static_cast<size_t>(cfg.num_dense * fraction);
    const auto sparse = static_cast<size_t>(cfg.num_sparse * fraction);
    for (size_t i = 0; i < dense; ++i)
        names.push_back("dense_" + std::to_string(i));
    for (size_t i = 0; i < sparse; ++i)
        names.push_back("sparse_" + std::to_string(i));
    return names;
}

}  // namespace

int
main()
{
    printSection("Ablation: columnar vs row-oriented storage (Extract "
                 "overfetch)");

    TablePrinter table({"Model", "Projection", "Columnar file",
                        "Row file", "Columnar touched", "Row touched",
                        "Overfetch factor"});

    for (int rm : {1, 2, 5}) {
        RmConfig cfg = rmConfig(rm);
        cfg.batch_size = 1024;  // real files, fast to build
        RawDataGenerator gen(cfg);
        const RowBatch batch = gen.generatePartition(0);
        const auto psf = ColumnarFileWriter().write(batch, 0);
        const auto rsf = RowFileWriter().write(batch, 0);

        for (double fraction : {0.25, 0.5, 1.0}) {
            const auto names = projection(cfg, fraction);

            ColumnarFileReader col_reader;
            PRESTO_CHECK(col_reader.open(psf).ok(), "psf open failed");
            auto col = col_reader.readColumns(names);
            PRESTO_CHECK(col.ok(), "psf read failed");

            RowFileReader row_reader;
            PRESTO_CHECK(row_reader.open(rsf).ok(), "rsf open failed");
            auto row = row_reader.readColumns(names);
            PRESTO_CHECK(row.ok(), "rsf read failed");

            const double factor =
                static_cast<double>(row_reader.bytesTouched()) /
                static_cast<double>(col_reader.bytesTouched());
            table.addRow(
                {cfg.name, formatDouble(fraction * 100, 0) + "% feats",
                 formatBytes(static_cast<double>(psf.size())),
                 formatBytes(static_cast<double>(rsf.size())),
                 formatBytes(static_cast<double>(
                     col_reader.bytesTouched())),
                 formatBytes(static_cast<double>(
                     row_reader.bytesTouched())),
                 formatDouble(factor, 1) + "x"});
        }
        table.addSeparator();
    }
    table.print();

    std::printf("\nRow-oriented Extract must scan every record regardless "
                "of the projection; columnar Extract touches only the "
                "requested feature chunks (Section II-B).\n");
    return 0;
}
