/**
 * @file
 * Figure 5: single-worker mini-batch preprocessing latency, broken into
 * Extract(Read) / Extract(Decode) / Bucketize / SigridHash / Log /
 * Others, normalized to RM1's total.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/cpu_model.h"

using namespace presto;

int
main()
{
    printSection("Figure 5: CPU-centric preprocessing latency breakdown "
                 "(single worker, normalized to RM1)");

    const double rm1_total =
        CpuWorkerModel(rmConfig(1)).batchLatency().total();

    TablePrinter table({"Model", "Extract(Read)", "Extract(Decode)",
                        "Bucketize", "SigridHash", "Log", "Others", "Total",
                        "GenNorm share", "Latency"});
    double share_sum = 0;
    for (const auto& cfg : allRmConfigs()) {
        CpuWorkerModel cpu(cfg);
        const LatencyBreakdown b = cpu.batchLatency();
        share_sum += b.transformShare();
        table.addRow({cfg.name,
                      formatDouble(b.extract_read / rm1_total, 2),
                      formatDouble(b.extract_decode / rm1_total, 2),
                      formatDouble(b.bucketize / rm1_total, 2),
                      formatDouble(b.sigrid_hash / rm1_total, 2),
                      formatDouble(b.log / rm1_total, 2),
                      formatDouble(b.other / rm1_total, 2),
                      formatDouble(b.total() / rm1_total, 2),
                      formatDouble(b.transformShare() * 100.0, 1) + "%",
                      formatTime(b.total())});
    }
    table.print();

    std::printf("\nAverage feature generation+normalization share: %.1f%%\n",
                share_sum / numRmConfigs() * 100.0);
    std::printf("Paper reference: RM5 is ~14x RM1; Bucketize+SigridHash+Log "
                "average 79%% of preprocessing time.\n");
    return 0;
}
