/**
 * @file
 * Ablation: train-manager input-queue depth (Figure 9's input queue).
 * Sweeps the bounded queue capacity and the provisioned ISP unit count
 * around the T/P rule to show (a) shallow queues already decouple
 * producers from the GPU and (b) under-provisioning by one unit costs
 * utilization linearly.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "core/provisioner.h"
#include "core/training_pipeline.h"

using namespace presto;

int
main()
{
    printSection("Ablation: input-queue depth and ISP provisioning "
                 "(RM5, 8 GPUs)");

    const RmConfig& cfg = rmConfig(5);
    Provisioner prov(cfg);
    const Provision isp = prov.provisionIsp(8, IspParams::smartSsd());

    {
        TablePrinter table({"Queue capacity", "GPU util", "Train b/s",
                            "Stalled producers (max)"});
        for (size_t capacity : {1, 2, 4, 8, 32, 128}) {
            PipelineOptions opts;
            opts.backend = PreprocBackend::kIsp;
            opts.isp_params = IspParams::smartSsd();
            opts.num_workers = isp.workers;
            opts.num_gpus = 8;
            opts.queue_capacity = capacity;
            opts.batches_to_train = 2048;
            const PipelineResult r = TrainingPipeline(cfg, opts).run();
            table.addRow({std::to_string(capacity),
                          formatDouble(r.gpu_utilization * 100, 1) + "%",
                          formatDouble(r.train_throughput, 1),
                          std::to_string(r.max_stalled_producers)});
        }
        table.print();
    }

    {
        printSection("Provisioning sensitivity around T/P = " +
                     std::to_string(isp.workers) + " units");
        TablePrinter table({"ISP units", "GPU util", "Train b/s",
                            "Demand b/s"});
        for (int delta : {-2, -1, 0, 1, 2}) {
            const int units = std::max(1, isp.workers + delta);
            PipelineOptions opts;
            opts.backend = PreprocBackend::kIsp;
            opts.isp_params = IspParams::smartSsd();
            opts.num_workers = units;
            opts.num_gpus = 8;
            opts.batches_to_train = 2048;
            const PipelineResult r = TrainingPipeline(cfg, opts).run();
            table.addRow({std::to_string(units),
                          formatDouble(r.gpu_utilization * 100, 1) + "%",
                          formatDouble(r.train_throughput, 1),
                          formatDouble(r.gpu_max_throughput, 1)});
        }
        table.print();
    }
    return 0;
}
