/**
 * @file
 * Fault-tolerance degradation curves, emitted as JSON.
 *
 * Sweeps an injected failure rate and reports, for RM1 on both the
 * disaggregated-CPU baseline and the PreSto ISP backend:
 *   - end-to-end training throughput of the degraded pipeline,
 *   - GPU utilization (the dip is the cost of lost preprocessing),
 *   - retry/backoff activity from rate-scaled transient read errors,
 * plus failure-aware pool-scheduler metrics (re-provisioning latency
 * and capacity-loss device-seconds) for a SmartSSD pool losing the
 * same fraction of its devices. Everything is deterministic: the same
 * binary prints the same bytes on every run.
 */
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pool_scheduler.h"
#include "core/provisioner.h"
#include "core/training_pipeline.h"

using namespace presto;

namespace {

constexpr int kNumGpus = 8;
constexpr size_t kBatches = 4096;
constexpr double kRates[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

/** Fault spec for one sweep point: kill a fraction of the workers
 *  (staggered across the first half of the healthy runtime) and scale
 *  transient read errors with the same rate. */
FaultSpec
specForRate(double rate, int workers, double healthy_seconds)
{
    FaultSpec spec;
    const int to_fail =
        static_cast<int>(std::floor(rate * workers + 0.5));
    for (int i = 0; i < to_fail; ++i) {
        const double when = healthy_seconds * 0.5 *
                            (static_cast<double>(i) + 1.0) /
                            (static_cast<double>(to_fail) + 1.0);
        spec.fail_stops.push_back({i, when});
    }
    spec.transient_read_error_prob = 0.2 * rate;
    return spec;
}

void
emitPipelineCurve(const RmConfig& cfg, PreprocBackend backend,
                  const char* name, int workers, bool trailing_comma)
{
    PipelineOptions opt;
    opt.backend = backend;
    opt.isp_params = IspParams::smartSsd();
    opt.num_workers = workers;
    opt.num_gpus = kNumGpus;
    opt.batches_to_train = kBatches;
    // Workers run the staged Extract/Transform prefetch pipeline; fault
    // handling (retries, backoff, re-fetches, fail-stops) is unchanged.
    opt.prefetch_overlap = true;
    const PipelineResult healthy = TrainingPipeline(cfg, opt).run();

    std::printf("    {\n"
                "      \"backend\": \"%s\",\n"
                "      \"provisioned_workers\": %d,\n"
                "      \"prefetch_overlap\": true,\n"
                "      \"curve\": [\n",
                name, workers);
    for (size_t i = 0; i < std::size(kRates); ++i) {
        const double rate = kRates[i];
        opt.faults = specForRate(rate, workers, healthy.sim_seconds);
        const PipelineResult r = TrainingPipeline(cfg, opt).run();
        const auto& d = r.degradation;
        std::printf(
            "        {\"failure_rate\": %.2f, "
            "\"workers_failed\": %zu, "
            "\"surviving_workers\": %d, "
            "\"batches_trained\": %zu, "
            "\"train_throughput_batches_per_sec\": %.4f, "
            "\"gpu_utilization\": %.4f, "
            "\"gpu_idle_seconds\": %.4f, "
            "\"transient_read_errors\": %llu, "
            "\"retry_backoff_seconds\": %.4f, "
            "\"starved\": %s}%s\n",
            rate, d.workers_failed, d.surviving_workers,
            r.batches_trained, r.train_throughput, r.gpu_utilization,
            d.gpu_idle_seconds,
            static_cast<unsigned long long>(d.transient_read_errors),
            d.retry_backoff_seconds, d.starved ? "true" : "false",
            i + 1 < std::size(kRates) ? "," : "");
    }
    std::printf("      ]\n    }%s\n", trailing_comma ? "," : "");
}

void
emitPoolCurve()
{
    // RM5 jobs (8 SmartSSDs each) tile the 16-device pool exactly: the
    // free pool runs at zero while jobs queue, so every lost device
    // hits a running job's allocation and must wait for re-provisioned
    // capacity instead of being absorbed by idle slack.
    const int pool_size = 16;
    PoolScheduler pool(pool_size);
    std::vector<PoolJob> jobs;
    for (int i = 0; i < 12; ++i) {
        PoolJob job;
        job.arrival_sec = i * 300.0;
        job.duration_sec = 3600.0;
        job.rm_id = 5;
        job.num_gpus = 8;
        jobs.push_back(job);
    }

    std::printf("  \"pool\": {\n"
                "    \"pool_size\": %d,\n"
                "    \"jobs\": %zu,\n"
                "    \"curve\": [\n",
                pool_size, jobs.size());
    for (size_t i = 0; i < std::size(kRates); ++i) {
        const double rate = kRates[i];
        FaultSpec spec;
        const int to_fail =
            static_cast<int>(std::floor(rate * pool_size + 0.5));
        // Spread failures across the busy middle of the trace so they
        // hit allocated devices, not idle slack.
        for (int f = 0; f < to_fail; ++f)
            spec.fail_stops.push_back({f, 2000.0 + 1000.0 * f});
        const FaultInjector faults(spec);
        const PoolResult r = pool.run(jobs, faults);
        // Split rejects by machine-readable kind so the curves
        // distinguish admission-time rejects from fault evictions.
        int rejected = 0;
        int rejected_demand = 0;
        int rejected_capacity_lost = 0;
        int rejected_slo = 0;
        for (const auto& jr : r.jobs) {
            if (!jr.rejected)
                continue;
            ++rejected;
            switch (jr.reject_kind) {
            case RejectKind::kDemandExceedsPool:
                ++rejected_demand;
                break;
            case RejectKind::kCapacityLost:
                ++rejected_capacity_lost;
                break;
            case RejectKind::kSloBudget:
                ++rejected_slo;
                break;
            case RejectKind::kNone:
                break;
            }
        }
        std::printf(
            "      {\"failure_rate\": %.2f, "
            "\"devices_failed\": %d, "
            "\"replacements_requested\": %d, "
            "\"replacements_granted\": %d, "
            "\"mean_reprovision_latency_sec\": %.4f, "
            "\"capacity_loss_device_sec\": %.4f, "
            "\"rejected_jobs\": %d, "
            "\"rejects_by_reason\": {\"%s\": %d, \"%s\": %d, \"%s\": %d}, "
            "\"mean_wait_sec\": %.4f}%s\n",
            rate, r.devices_failed, r.replacements_requested,
            r.replacements_granted, r.mean_reprovision_latency_sec,
            r.capacity_loss_device_sec, rejected,
            rejectKindName(RejectKind::kDemandExceedsPool), rejected_demand,
            rejectKindName(RejectKind::kCapacityLost), rejected_capacity_lost,
            rejectKindName(RejectKind::kSloBudget), rejected_slo,
            r.mean_wait_sec,
            i + 1 < std::size(kRates) ? "," : "");
    }
    std::printf("    ]\n  }\n");
}

}  // namespace

int
main()
{
    const RmConfig cfg = rmConfig(1);
    Provisioner prov(cfg);
    const int cpu_workers = prov.provisionCpu(kNumGpus).workers;
    const int isp_workers =
        prov.provisionIsp(kNumGpus, IspParams::smartSsd()).workers;

    std::printf("{\n"
                "  \"workload\": \"%s\",\n"
                "  \"num_gpus\": %d,\n"
                "  \"batches\": %zu,\n"
                "  \"backends\": [\n",
                cfg.name.c_str(), kNumGpus, kBatches);
    emitPipelineCurve(cfg, PreprocBackend::kDisaggCpu, "disagg_cpu",
                      cpu_workers, /*trailing_comma=*/true);
    emitPipelineCurve(cfg, PreprocBackend::kIsp, "isp", isp_workers,
                      /*trailing_comma=*/false);
    std::printf("  ],\n");
    emitPoolCurve();
    std::printf("}\n");
    return 0;
}
