/**
 * @file
 * Motivation study (Sections I-II): offline vs online preprocessing
 * storage cost. Offline preprocessing materializes train-ready tensors
 * per *model variant*; online preprocessing stores the raw features
 * once and transforms on-the-fly. With hundreds of model variants under
 * development, offline storage becomes intractable — the shift that
 * motivates online preprocessing and, in turn, PreSto.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/data_size.h"

using namespace presto;

int
main()
{
    printSection("Motivation: storage for offline vs online preprocessing "
                 "(1000 partitions of RM5)");

    const RmConfig& cfg = rmConfig(5);
    const double partitions = 1000.0;
    const double raw = rawEncodedBytes(cfg) * partitions;
    const double per_variant = miniBatchBytes(cfg) * partitions;

    TablePrinter table({"Model variants in development", "Online (raw once)",
                        "Offline (tensors per variant)", "Amplification"});
    for (double variants : {1.0, 10.0, 100.0, 1000.0}) {
        const double offline = per_variant * variants;
        table.addRow({formatDouble(variants, 0), formatBytes(raw),
                      formatBytes(offline),
                      formatDouble(offline / raw, 1) + "x"});
    }
    table.print();

    std::printf("\nOnline preprocessing stores the raw columnar features "
                "once (%s for this corpus) regardless of how many RecSys "
                "variants ML engineers iterate on; offline preprocessing "
                "re-materializes %s per variant and cannot adapt when the "
                "feature set changes (Section II-A).\n",
                formatBytes(raw).c_str(), formatBytes(per_variant).c_str());
    return 0;
}
