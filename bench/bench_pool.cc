/**
 * @file
 * Elastic pool scenario: a day of training-job arrivals against a
 * storage cluster's SmartSSD pool, showing PreSto keeps the baseline's
 * elastic on-demand allocation (Section II-D) at device granularity.
 */
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/pool_scheduler.h"

using namespace presto;

namespace {

std::vector<PoolJob>
makeDayTrace()
{
    // 36 jobs over 24h: mixed workloads, bursty morning arrivals.
    Rng rng(0xda71);
    std::vector<PoolJob> jobs;
    for (int i = 0; i < 36; ++i) {
        PoolJob job;
        const double burst = i < 18 ? 0.25 : 1.0;  // morning burst
        job.arrival_sec = i * burst * 2400.0 +
                          rng.uniform(0.0, 1200.0);
        job.duration_sec = rng.uniform(0.5, 6.0) * kHour;
        job.rm_id = static_cast<int>(rng.uniformInt(uint64_t{5})) + 1;
        job.num_gpus = rng.bernoulli(0.25) ? 16 : 8;
        jobs.push_back(job);
    }
    return jobs;
}

}  // namespace

int
main()
{
    printSection("Elastic SmartSSD pool: 36 training jobs over one day");

    const auto jobs = makeDayTrace();

    TablePrinter table({"Pool size", "Peak in use", "Utilization",
                        "Mean wait", "Makespan", "Device-hours"});
    for (int pool_size : {32, 48, 64, 96, 128}) {
        PoolScheduler pool(pool_size);
        const PoolResult r = pool.run(jobs);
        table.addRow({std::to_string(pool_size),
                      std::to_string(r.peak_devices_in_use),
                      formatDouble(r.utilization(pool_size) * 100, 1) + "%",
                      formatTime(r.mean_wait_sec),
                      formatTime(r.makespan_sec),
                      formatDouble(r.device_busy_sec / kHour, 0)});
    }
    table.print();

    std::printf("\nEach job is allocated ceil(T/P) SmartSSDs on arrival and "
                "returns them on completion; a modest pool absorbs the "
                "day's demand with near-zero queueing, replacing thousands "
                "of pooled CPU cores.\n");
    return 0;
}
