/**
 * @file
 * Ablation: training batch-size sensitivity. The paper evaluates at
 * batch 8192; this sweep shows how per-batch latency and the
 * Disagg-vs-PreSto comparison move with the mini-batch (partition)
 * size.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/cpu_model.h"
#include "models/isp_model.h"

using namespace presto;

int
main()
{
    printSection("Ablation: mini-batch size sensitivity (RM5)");

    TablePrinter table({"Batch size", "Disagg latency", "PreSto latency",
                        "Speedup", "PreSto throughput (b/s)",
                        "Samples/s (PreSto)"});

    for (size_t batch : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
        RmConfig cfg = rmConfig(5);
        cfg.batch_size = batch;
        CpuWorkerModel cpu(cfg);
        IspDeviceModel ssd(IspParams::smartSsd(), cfg);
        const double disagg = cpu.batchLatency().total();
        const double presto = ssd.batchLatency().total();
        table.addRow({std::to_string(batch), formatTime(disagg),
                      formatTime(presto),
                      formatDouble(disagg / presto, 1) + "x",
                      formatDouble(ssd.throughput(), 1),
                      formatRate(ssd.throughput() *
                                     static_cast<double>(batch),
                                 "samples")});
    }
    table.print();

    std::printf("\nSmall batches are overhead-dominated (fixed per-batch "
                "costs on both sides); the speedup stabilizes once "
                "per-value work dominates -- the paper's 8192 sits on the "
                "flat part of the curve.\n");
    return 0;
}
