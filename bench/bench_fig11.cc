/**
 * @file
 * Figure 11: preprocessing throughput of PreSto (one SmartSSD) vs
 * Disagg(N) CPU cores, normalized to Disagg(1), per workload.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/cpu_model.h"
#include "models/isp_model.h"

using namespace presto;

int
main()
{
    printSection("Figure 11: PreSto (single SmartSSD) vs Disagg(N) "
                 "preprocessing throughput (normalized to Disagg(1))");

    const int kCoreCounts[] = {1, 2, 4, 8, 16, 32, 64};

    std::vector<std::string> headers = {"Model"};
    for (int n : kCoreCounts)
        headers.push_back("Disagg(" + std::to_string(n) + ")");
    headers.push_back("PreSto");
    headers.push_back("Disagg(64)/PreSto");
    TablePrinter table(std::move(headers));

    // Compressed-PSF variant: both sides read LZ-compressed pages
    // (fewer delivery bytes, extra decompress term; constants from
    // BENCH_decode.json).
    const PageCompressionModel lz{cal::kMeasuredLzStoredRatio,
                                  cal::kMeasuredLzDecompressBytesPerSec};
    // Entropy-menu variant: the full per-page codec menu (LZ + Huffman)
    // stores fewer bytes but adds a serial Huffman stage to the decode.
    const PageCompressionModel entropy{
        cal::kMeasuredEntropyStoredRatio,
        cal::kMeasuredLzDecompressBytesPerSec,
        cal::kMeasuredHuffDecodeBytesPerSec};

    double ratio_sum = 0;
    double measured_ratio_sum = 0;
    double compressed_ratio_sum = 0;
    double entropy_ratio_sum = 0;
    for (const auto& cfg : allRmConfigs()) {
        CpuWorkerModel cpu(cfg);
        // Measured-decode variant: the CPU worker with Extract(Decode)
        // re-anchored to this host's vectorized decoders
        // (BENCH_decode.json via cal::kMeasuredSimdDecodeSecPerValue).
        CpuWorkerModel cpu_measured(cfg,
                                    cal::kMeasuredSimdDecodeSecPerValue);
        CpuWorkerModel cpu_lz(cfg, cal::kCpuDecodeSecPerValue, lz);
        CpuWorkerModel cpu_entropy(cfg, cal::kCpuDecodeSecPerValue,
                                   entropy);
        IspDeviceModel ssd(IspParams::smartSsd(), cfg);
        IspDeviceModel ssd_lz(IspParams::smartSsdCompressed(), cfg);
        IspDeviceModel ssd_entropy(IspParams::smartSsdEntropy(), cfg);
        const double base = cpu.throughput(1);

        std::vector<std::string> row = {cfg.name};
        for (int n : kCoreCounts)
            row.push_back(formatDouble(cpu.throughput(n) / base, 1));
        const double presto_norm = ssd.throughput() / base;
        row.push_back(formatDouble(presto_norm, 1));
        const double d64_ratio = cpu.throughput(64) / ssd.throughput();
        ratio_sum += d64_ratio;
        measured_ratio_sum +=
            cpu_measured.throughput(64) / ssd.throughput();
        compressed_ratio_sum +=
            cpu_lz.throughput(64) / ssd_lz.throughput();
        entropy_ratio_sum +=
            cpu_entropy.throughput(64) / ssd_entropy.throughput();
        row.push_back(formatDouble(d64_ratio, 2) + "x");
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nAverage Disagg(64)/PreSto ratio: %.2fx\n", ratio_sum / 5);
    std::printf("Same ratio with measured SIMD decode on the CPU worker "
                "(BENCH_decode.json): %.2fx\n",
                measured_ratio_sum / 5);
    std::printf("Same ratio with LZ-compressed PSF pages on both sides "
                "(stored ratio %.2f, BENCH_decode.json): %.2fx\n",
                cal::kMeasuredLzStoredRatio, compressed_ratio_sum / 5);
    std::printf("Same ratio with full-menu entropy PSF pages on both "
                "sides (stored ratio %.2f, BENCH_decode.json): %.2fx\n",
                cal::kMeasuredEntropyStoredRatio, entropy_ratio_sum / 5);
    std::printf("Paper reference: one SmartSSD beats Disagg(32) on every "
                "workload; Disagg(64) wins by ~27%% at 2x the cost.\n");
    return 0;
}
