/**
 * @file
 * Service-tier scenario bench: one simulated day of multi-tenant
 * ingestion under diurnal traffic from millions of users, replayed on
 * the DES engine (service/service_scenario.h). Prints deterministic
 * JSON (committed as BENCH_service.json); identical seeds produce
 * byte-identical output, which CI checks by running it twice.
 *
 * The bench is self-enforcing. It runs the same traffic twice —
 * admission control on ("controlled") and off ("uncontrolled") — and
 * exits non-zero unless all of the following hold:
 *
 *   1. controlled: every *admitted* tenant's p99 batch latency meets
 *      its SLO through the diurnal peak, the 1.6x load spike, and two
 *      injected device fail-stops;
 *   2. controlled: the oversubscribing late joiner is rejected at
 *      admission time with an explicit reason;
 *   3. uncontrolled: the same joiner is admitted and violates its SLO —
 *      overload that admission control would have named up front
 *      surfaces as silent latency instead;
 *   4. the tenant whose trainer stalls fills its bounded output queue
 *      exactly to capacity and never beyond it (backpressure, not
 *      unbounded buffering).
 *
 * Usage: bench_service [--quick]   (--quick compresses the day to one
 * hour; rates, fractions-of-day windows, and all gates are unchanged)
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "service/service_scenario.h"

using namespace presto;

namespace {

constexpr double kFullDaySec = 86400.0;

/** The day's cast: three steady tenants plus an oversubscribing joiner. */
std::vector<ScenarioTenant>
makeTenants(double day)
{
    // --quick shrinks the day; scaling the populations by the same
    // factor keeps every per-second rate (and thus every gate) intact.
    const double scale = day / kFullDaySec;
    // All demand curves peak at 0.55 day, on top of the load spike.
    const double phase = 0.30 * day;

    std::vector<ScenarioTenant> tenants;

    ScenarioTenant ranker;
    ranker.name = "ranker";
    ranker.users = 2.0e6 * scale;
    ranker.requests_per_user_per_day = 400;
    ranker.samples_per_batch = 1024;
    ranker.traffic.diurnal = {0, 0.35, day, phase};
    ranker.traffic.spikes = {{0.55 * day, 0.60 * day, 1.6}};
    ranker.weight = 2.0;
    ranker.slo_p99_sec = 1.0;
    ranker.queue_capacity = 12;
    tenants.push_back(ranker);

    ScenarioTenant retrieval;
    retrieval.name = "retrieval";
    retrieval.users = 1.0e6 * scale;
    retrieval.requests_per_user_per_day = 500;
    retrieval.samples_per_batch = 1024;
    retrieval.traffic.diurnal = {0, 0.35, day, phase};
    retrieval.traffic.spikes = {{0.55 * day, 0.60 * day, 1.6}};
    retrieval.slo_p99_sec = 1.5;
    retrieval.queue_capacity = 12;
    tenants.push_back(retrieval);

    // Best-effort evaluation job whose trainer stalls mid-morning: its
    // bounded output queue is the backpressure gate.
    ScenarioTenant eval;
    eval.name = "eval";
    eval.users = 6.0e5 * scale;
    eval.requests_per_user_per_day = 1000;
    eval.samples_per_batch = 1024;
    eval.traffic.diurnal = {0, 0.30, day, phase};
    eval.queue_capacity = 8;
    eval.stall_start_sec = 0.30 * day;
    eval.stall_end_sec = 0.35 * day;
    tenants.push_back(eval);

    // Oversubscribing backfill job joining mid-day: its peak demand
    // alone is ~60% of the fleet, pushing projected utilization past
    // the stable limit.
    ScenarioTenant backfill;
    backfill.name = "backfill";
    backfill.users = 6.0e6 * scale;
    backfill.requests_per_user_per_day = 625;
    backfill.samples_per_batch = 1024;
    backfill.traffic.diurnal = {0, 0.35, day, phase};
    backfill.slo_p99_sec = 1.0;
    backfill.queue_capacity = 24;
    backfill.join_sec = 0.40 * day;
    tenants.push_back(backfill);

    return tenants;
}

void
printTenant(const TenantReport& t, const ScenarioTenant& spec, bool last)
{
    std::printf(
        "      {\"name\": \"%s\", \"users\": %.0f, \"weight\": %.1f, "
        "\"slo_p99_sec\": %.2f, \"admitted\": %s, "
        "\"reject_reason\": \"%s\", \"projected_p99_sec\": %.6e,\n"
        "       \"arrivals\": %llu, \"served\": %llu, "
        "\"mean_latency_sec\": %.6e, \"p99_latency_sec\": %.6e, "
        "\"max_latency_sec\": %.6e,\n"
        "       \"queue_capacity\": %zu, \"max_queue_occupancy\": %zu, "
        "\"backlog_peak\": %llu, \"slo_met\": %s}%s\n",
        t.name.c_str(), spec.users, spec.weight, spec.slo_p99_sec,
        t.admitted ? "true" : "false", t.reject_reason.c_str(),
        t.projected_p99_sec,
        static_cast<unsigned long long>(t.arrivals),
        static_cast<unsigned long long>(t.served), t.mean_latency_sec,
        t.p99_latency_sec, t.max_latency_sec, t.queue_capacity,
        t.max_queue_occupancy,
        static_cast<unsigned long long>(t.backlog_peak),
        t.slo_met ? "true" : "false", last ? "" : ",");
}

void
printRun(const char* key, const ScenarioReport& r,
         const std::vector<ScenarioTenant>& tenants)
{
    std::printf(
        "  \"%s\": {\n"
        "    \"devices_failed\": %llu, \"fleet_utilization\": %.4f, "
        "\"busy_device_sec\": %.6e, \"total_arrivals\": %llu, "
        "\"total_served\": %llu,\n"
        "    \"tenants\": [\n",
        key, static_cast<unsigned long long>(r.devices_failed),
        r.fleet_utilization, r.busy_device_sec,
        static_cast<unsigned long long>(r.total_arrivals),
        static_cast<unsigned long long>(r.total_served));
    for (size_t i = 0; i < r.tenants.size(); ++i)
        printTenant(r.tenants[i], tenants[i], i + 1 == r.tenants.size());
    std::printf("    ]\n  },\n");
}

const TenantReport*
find(const ScenarioReport& r, const std::string& name)
{
    for (const TenantReport& t : r.tenants) {
        if (t.name == name)
            return &t;
    }
    return nullptr;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    const double day = quick ? 3600.0 : kFullDaySec;
    const std::vector<ScenarioTenant> tenants = makeTenants(day);

    ScenarioOptions options;
    options.devices = 24;
    options.service_sec = 0.25;
    options.duration_sec = day;
    options.faults.fail_stops = {{3, 0.56 * day}, {11, 0.57 * day}};

    options.admission_control = true;
    const ScenarioReport controlled = runServiceScenario(options, tenants);
    options.admission_control = false;
    const ScenarioReport uncontrolled = runServiceScenario(options, tenants);

    // --- Gates -----------------------------------------------------------
    bool admitted_meet_slo = true;
    for (const TenantReport& t : controlled.tenants) {
        if (t.admitted && !t.slo_met)
            admitted_meet_slo = false;
    }

    const TenantReport* backfill_c = find(controlled, "backfill");
    const bool overload_rejected = backfill_c != nullptr &&
                                   !backfill_c->admitted &&
                                   !backfill_c->reject_reason.empty();

    bool uncontrolled_violates = false;
    for (const TenantReport& t : uncontrolled.tenants) {
        if (t.admitted && !t.slo_met)
            uncontrolled_violates = true;
    }

    const TenantReport* eval_c = find(controlled, "eval");
    const TenantReport* eval_u = find(uncontrolled, "eval");
    const bool queue_bounded =
        eval_c != nullptr && eval_u != nullptr &&
        eval_c->max_queue_occupancy == eval_c->queue_capacity &&
        eval_u->max_queue_occupancy <= eval_u->queue_capacity;

    const bool gates_ok = admitted_meet_slo && overload_rejected &&
                          uncontrolled_violates && queue_bounded;

    std::printf("{\n"
                "  \"bench\": \"service\",\n"
                "  \"quick\": %s,\n"
                "  \"devices\": %d,\n"
                "  \"service_sec\": %.3f,\n"
                "  \"duration_sec\": %.0f,\n"
                "  \"seed\": %llu,\n",
                quick ? "true" : "false", options.devices,
                options.service_sec, options.duration_sec,
                static_cast<unsigned long long>(options.seed));
    printRun("controlled", controlled, tenants);
    printRun("uncontrolled", uncontrolled, tenants);
    std::printf("  \"gates\": {\"admitted_meet_slo_controlled\": %s, "
                "\"overload_rejected_with_reason\": %s, "
                "\"uncontrolled_violates_slo\": %s, "
                "\"stalled_queue_bounded\": %s},\n"
                "  \"gates_ok\": %s\n}\n",
                admitted_meet_slo ? "true" : "false",
                overload_rejected ? "true" : "false",
                uncontrolled_violates ? "true" : "false",
                queue_bounded ? "true" : "false",
                gates_ok ? "true" : "false");

    if (!gates_ok) {
        std::fprintf(stderr, "bench_service: gate failure (see JSON)\n");
        return 1;
    }
    return 0;
}
