/**
 * @file
 * Service-tier scenario bench: one simulated day of multi-tenant
 * ingestion under diurnal traffic from millions of users, replayed on
 * the DES engine (service/service_scenario.h). Prints deterministic
 * JSON (committed as BENCH_service.json); identical seeds produce
 * byte-identical output, which CI checks by running it twice.
 *
 * The bench is self-enforcing. It runs the same traffic twice —
 * admission control on ("controlled") and off ("uncontrolled") — and
 * exits non-zero unless all of the following hold:
 *
 *   1. controlled: every *admitted* tenant's p99 batch latency meets
 *      its SLO through the diurnal peak, the 1.6x load spike, and two
 *      injected device fail-stops;
 *   2. controlled: the oversubscribing late joiner is rejected at
 *      admission time with an explicit reason;
 *   3. uncontrolled: the same joiner is admitted and violates its SLO —
 *      overload that admission control would have named up front
 *      surfaces as silent latency instead;
 *   4. the tenant whose trainer stalls fills its bounded output queue
 *      exactly to capacity and never beyond it (backpressure, not
 *      unbounded buffering);
 *   5. retention (multi-day replay, "retention"): epochs publish every
 *      few hours for --days simulated days while trainers pin a mix of
 *      head and historical epochs — the modeled disk footprint stays
 *      bounded by (retain_epochs + pinned old epochs) * epoch_bytes at
 *      every retention pass, pinned epochs survive, and cold-epoch pin
 *      latency exceeds the hot-tier (head) latency it is compared
 *      against;
 *   6. retention over real storage ("retention_store"): a persistent
 *      DatasetCatalog over temp-dir SegmentStores publishes and
 *      retires real epochs — measured live bytes stay bounded, the
 *      pinned epoch replays bit-identically after newer epochs were
 *      retired around it, the head is served from the hot memory tier,
 *      and the scrub cursor prioritizes the pinned epoch's segments.
 *
 * Usage: bench_service [--quick] [--days N]
 *   --quick compresses the day to one hour; rates, fractions-of-day
 *   windows, and all gates are unchanged. --days (default 3) sets the
 *   retention replay's length in (possibly compressed) days.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>
#include <sys/stat.h>

#include "service/dataset_catalog.h"
#include "service/service_scenario.h"
#include "store/segment_store.h"

using namespace presto;

namespace {

constexpr double kFullDaySec = 86400.0;

/** The day's cast: three steady tenants plus an oversubscribing joiner. */
std::vector<ScenarioTenant>
makeTenants(double day)
{
    // --quick shrinks the day; scaling the populations by the same
    // factor keeps every per-second rate (and thus every gate) intact.
    const double scale = day / kFullDaySec;
    // All demand curves peak at 0.55 day, on top of the load spike.
    const double phase = 0.30 * day;

    std::vector<ScenarioTenant> tenants;

    ScenarioTenant ranker;
    ranker.name = "ranker";
    ranker.users = 2.0e6 * scale;
    ranker.requests_per_user_per_day = 400;
    ranker.samples_per_batch = 1024;
    ranker.traffic.diurnal = {0, 0.35, day, phase};
    ranker.traffic.spikes = {{0.55 * day, 0.60 * day, 1.6}};
    ranker.weight = 2.0;
    ranker.slo_p99_sec = 1.0;
    ranker.queue_capacity = 12;
    tenants.push_back(ranker);

    ScenarioTenant retrieval;
    retrieval.name = "retrieval";
    retrieval.users = 1.0e6 * scale;
    retrieval.requests_per_user_per_day = 500;
    retrieval.samples_per_batch = 1024;
    retrieval.traffic.diurnal = {0, 0.35, day, phase};
    retrieval.traffic.spikes = {{0.55 * day, 0.60 * day, 1.6}};
    retrieval.slo_p99_sec = 1.5;
    retrieval.queue_capacity = 12;
    tenants.push_back(retrieval);

    // Best-effort evaluation job whose trainer stalls mid-morning: its
    // bounded output queue is the backpressure gate.
    ScenarioTenant eval;
    eval.name = "eval";
    eval.users = 6.0e5 * scale;
    eval.requests_per_user_per_day = 1000;
    eval.samples_per_batch = 1024;
    eval.traffic.diurnal = {0, 0.30, day, phase};
    eval.queue_capacity = 8;
    eval.stall_start_sec = 0.30 * day;
    eval.stall_end_sec = 0.35 * day;
    tenants.push_back(eval);

    // Oversubscribing backfill job joining mid-day: its peak demand
    // alone is ~60% of the fleet, pushing projected utilization past
    // the stable limit.
    ScenarioTenant backfill;
    backfill.name = "backfill";
    backfill.users = 6.0e6 * scale;
    backfill.requests_per_user_per_day = 625;
    backfill.samples_per_batch = 1024;
    backfill.traffic.diurnal = {0, 0.35, day, phase};
    backfill.slo_p99_sec = 1.0;
    backfill.queue_capacity = 24;
    backfill.join_sec = 0.40 * day;
    tenants.push_back(backfill);

    return tenants;
}

void
printTenant(const TenantReport& t, const ScenarioTenant& spec, bool last)
{
    std::printf(
        "      {\"name\": \"%s\", \"users\": %.0f, \"weight\": %.1f, "
        "\"slo_p99_sec\": %.2f, \"admitted\": %s, "
        "\"reject_reason\": \"%s\", \"projected_p99_sec\": %.6e,\n"
        "       \"arrivals\": %llu, \"served\": %llu, "
        "\"mean_latency_sec\": %.6e, \"p99_latency_sec\": %.6e, "
        "\"max_latency_sec\": %.6e,\n"
        "       \"queue_capacity\": %zu, \"max_queue_occupancy\": %zu, "
        "\"backlog_peak\": %llu, \"slo_met\": %s}%s\n",
        t.name.c_str(), spec.users, spec.weight, spec.slo_p99_sec,
        t.admitted ? "true" : "false", t.reject_reason.c_str(),
        t.projected_p99_sec,
        static_cast<unsigned long long>(t.arrivals),
        static_cast<unsigned long long>(t.served), t.mean_latency_sec,
        t.p99_latency_sec, t.max_latency_sec, t.queue_capacity,
        t.max_queue_occupancy,
        static_cast<unsigned long long>(t.backlog_peak),
        t.slo_met ? "true" : "false", last ? "" : ",");
}

void
printRun(const char* key, const ScenarioReport& r,
         const std::vector<ScenarioTenant>& tenants)
{
    std::printf(
        "  \"%s\": {\n"
        "    \"devices_failed\": %llu, \"fleet_utilization\": %.4f, "
        "\"busy_device_sec\": %.6e, \"total_arrivals\": %llu, "
        "\"total_served\": %llu,\n"
        "    \"tenants\": [\n",
        key, static_cast<unsigned long long>(r.devices_failed),
        r.fleet_utilization, r.busy_device_sec,
        static_cast<unsigned long long>(r.total_arrivals),
        static_cast<unsigned long long>(r.total_served));
    for (size_t i = 0; i < r.tenants.size(); ++i)
        printTenant(r.tenants[i], tenants[i], i + 1 == r.tenants.size());
    std::printf("    ]\n  },\n");
}

const TenantReport*
find(const ScenarioReport& r, const std::string& name)
{
    for (const TenantReport& t : r.tenants) {
        if (t.name == name)
            return &t;
    }
    return nullptr;
}

/**
 * The retention replay's cast: two head-followers, a trainer replaying
 * one epoch behind until it catches up mid-run, and a historical
 * backfill job that pins an old epoch for the whole run — the epoch
 * retention must spare while newer ones retire around it.
 */
std::vector<ScenarioTenant>
makeRetentionTenants(double day, double duration)
{
    const double scale = day / kFullDaySec;
    const double phase = 0.30 * day;

    std::vector<ScenarioTenant> tenants;

    ScenarioTenant ranker;
    ranker.name = "ranker";
    ranker.users = 2.0e6 * scale;
    ranker.requests_per_user_per_day = 400;
    ranker.samples_per_batch = 1024;
    ranker.traffic.diurnal = {0, 0.35, day, phase};
    ranker.weight = 2.0;
    ranker.slo_p99_sec = 1.0;
    ranker.queue_capacity = 12;
    tenants.push_back(ranker);

    ScenarioTenant retrieval;
    retrieval.name = "retrieval";
    retrieval.users = 1.0e6 * scale;
    retrieval.requests_per_user_per_day = 500;
    retrieval.samples_per_batch = 1024;
    retrieval.traffic.diurnal = {0, 0.35, day, phase};
    retrieval.slo_p99_sec = 1.5;
    retrieval.queue_capacity = 12;
    tenants.push_back(retrieval);

    // Replays one epoch behind the head (cold) until it catches up at
    // mid-run, then follows the (hot) head like the others.
    ScenarioTenant eval;
    eval.name = "eval";
    eval.users = 6.0e5 * scale;
    eval.requests_per_user_per_day = 1000;
    eval.samples_per_batch = 1024;
    eval.traffic.diurnal = {0, 0.30, day, phase};
    eval.queue_capacity = 8;
    eval.pin_lag_epochs = 1;
    eval.hold_pin_until_sec = 0.5 * duration;
    tenants.push_back(eval);

    // Historical backfill: joins late, pins two epochs back, and holds
    // that pin to the end — its epoch must never be retired.
    ScenarioTenant backfill;
    backfill.name = "backfill";
    backfill.users = 5.0e5 * scale;
    backfill.requests_per_user_per_day = 400;
    backfill.samples_per_batch = 1024;
    backfill.traffic.diurnal = {0, 0.35, day, phase};
    backfill.queue_capacity = 12;
    backfill.join_sec = 0.25 * duration;
    backfill.pin_lag_epochs = 2;
    backfill.hold_pin_until_sec = duration;
    tenants.push_back(backfill);

    return tenants;
}

/** Outcome of the real-storage retention soak. */
struct StoreSoak {
    bool ran = false;
    uint64_t epochs_published = 0;
    uint64_t epochs_retired = 0;
    uint64_t epochs_kept_pinned = 0;
    uint64_t partitions_retired = 0;
    uint64_t bytes_reclaimed = 0;
    uint64_t epoch_bytes = 0;       ///< measured from epoch 1
    uint64_t live_bytes_final = 0;
    uint64_t bound_bytes = 0;       ///< final-pass footprint bound
    uint64_t scrub_pages_total = 0;
    uint64_t scrub_pages_prioritized = 0;
    bool footprint_ok = false;      ///< live <= bound at every pass
    bool pinned_never_retired = false;
    bool pinned_replay_identical = false;
    bool head_served_hot = false;   ///< head read hit the memory tier
    bool pinned_served_cold = false;
};

/**
 * Retention over real storage: publish kEpochs epochs into two
 * temp-dir SegmentStore shards with retain_epochs = 2 while a reader
 * pins epoch 1 the whole time, applying retention after every publish
 * and checking the measured on-disk footprint against the policy
 * bound. Everything printed is deterministic (content is a pure
 * function of the seed; paths are not printed).
 */
StoreSoak
runStoreSoak()
{
    constexpr uint64_t kEpochs = 6;
    constexpr uint64_t kRetain = 2;

    StoreSoak soak;
    char tmpl[] = "/tmp/bench_service_store.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr)
        return soak;
    const std::string root = tmpl;

    {
        std::vector<std::unique_ptr<SegmentStore>> stores;
        std::vector<SegmentStore*> shards;
        for (int s = 0; s < 2; ++s) {
            const std::string dir = root + "/shard" + std::to_string(s);
            if (::mkdir(dir.c_str(), 0755) != 0)
                return soak;
            SegmentStoreOptions opts;
            opts.directory = dir;
            auto store = SegmentStore::open(opts);
            if (!store.ok())
                return soak;
            stores.push_back(std::move(store).value());
            shards.push_back(stores.back().get());
        }

        DatasetSpec spec;
        spec.name = "soak";
        spec.config = rmConfig(1);
        spec.config.batch_size = 64;
        spec.generator.seed = 0xfeed;
        spec.partitions_per_epoch = 4;
        spec.cache_budget_bytes = 1 << 20;
        spec.retain_epochs = kRetain;

        DatasetCatalog catalog;
        if (!catalog.registerDataset(spec, shards).ok())
            return soak;
        auto liveBytes = [&] {
            auto bytes = catalog.liveBytes("soak");
            return bytes.ok() ? *bytes : uint64_t{0};
        };

        if (!catalog.publishEpoch("soak").ok())
            return soak;
        soak.epochs_published = 1;
        soak.epoch_bytes = liveBytes();
        // Encoded epochs differ slightly in size (content-dependent
        // encoding), so the footprint bound sums the measured size of
        // each epoch that is allowed to stay live.
        std::vector<uint64_t> epoch_sizes{0, soak.epoch_bytes};

        // Pin epoch 1 for the whole soak and snapshot its bytes.
        auto pinned = catalog.pin("soak", 1);
        if (!pinned.ok())
            return soak;
        std::vector<std::vector<uint8_t>> snapshot;
        for (size_t i = 0; i < pinned->numPartitions(); ++i) {
            auto bytes = pinned->fetchEncoded(i);
            if (!bytes.ok())
                return soak;
            snapshot.push_back(std::move(bytes).value());
        }

        soak.footprint_ok = true;
        for (uint64_t epoch = 2; epoch <= kEpochs; ++epoch) {
            const uint64_t before = liveBytes();
            if (!catalog.publishEpoch("soak").ok())
                return soak;
            epoch_sizes.push_back(liveBytes() - before);
            ++soak.epochs_published;
            auto report = catalog.applyRetention("soak");
            if (!report.ok())
                return soak;
            soak.epochs_retired += report->epochs_retired;
            soak.epochs_kept_pinned += report->epochs_kept_pinned;
            soak.partitions_retired += report->partitions_retired;
            soak.bytes_reclaimed += report->bytes_reclaimed;
            // Footprint bound: the newest kRetain epochs plus the
            // pinned epoch 1 once it ages out of the retention window.
            soak.bound_bytes = 0;
            for (uint64_t live = epoch > kRetain ? epoch - kRetain + 1
                                                 : 1;
                 live <= epoch; ++live) {
                soak.bound_bytes += epoch_sizes[live];
            }
            if (epoch > kRetain)
                soak.bound_bytes += epoch_sizes[1];
            if (liveBytes() > soak.bound_bytes)
                soak.footprint_ok = false;
        }
        soak.live_bytes_final = liveBytes();

        auto retired = catalog.epochRetired("soak", 1);
        soak.pinned_never_retired = retired.ok() && !*retired;

        // The pinned epoch replays bit-identically although every
        // unpinned epoch between it and the retention window is gone.
        soak.pinned_replay_identical = true;
        for (size_t i = 0; i < pinned->numPartitions(); ++i) {
            bool hot = false;
            auto bytes = pinned->fetchEncoded(i, 0, &hot);
            if (!bytes.ok() || *bytes != snapshot[i]) {
                soak.pinned_replay_identical = false;
                break;
            }
            if (!hot)
                soak.pinned_served_cold = true;
        }

        // The head epoch is promoted into the hot memory tier.
        auto head = catalog.pin("soak");
        if (head.ok()) {
            bool hot = false;
            auto bytes = head->fetchEncoded(0, 0, &hot);
            soak.head_served_hot = bytes.ok() && hot;
        }

        // Pin-aware scrub: with epoch 1 pinned, its segments carry
        // priority > 0 and get verified ahead of the cold ones.
        for (SegmentStore* store : shards) {
            (void)store->scrubSome(64);
            const ScrubCounters counters = store->scrubCounters();
            soak.scrub_pages_total += counters.pages_total;
            soak.scrub_pages_prioritized += counters.pages_prioritized;
        }
        soak.ran = true;
    }
    ::system(("rm -rf " + root).c_str());
    return soak;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    int days = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
            days = std::atoi(argv[++i]);
            if (days < 1)
                days = 1;
        }
    }

    const double day = quick ? 3600.0 : kFullDaySec;
    const std::vector<ScenarioTenant> tenants = makeTenants(day);

    ScenarioOptions options;
    options.devices = 24;
    options.service_sec = 0.25;
    options.duration_sec = day;
    options.faults.fail_stops = {{3, 0.56 * day}, {11, 0.57 * day}};

    options.admission_control = true;
    const ScenarioReport controlled = runServiceScenario(options, tenants);
    options.admission_control = false;
    const ScenarioReport uncontrolled = runServiceScenario(options, tenants);

    // Multi-day retention replay: epochs publish every day/8 while a
    // mix of head-followers and historical pins stream; retention must
    // keep the modeled footprint bounded the whole run.
    const double retention_duration = day * days;
    const std::vector<ScenarioTenant> retention_tenants =
        makeRetentionTenants(day, retention_duration);
    ScenarioOptions retention_options;
    retention_options.devices = 24;
    retention_options.service_sec = 0.25;
    retention_options.duration_sec = retention_duration;
    retention_options.lifecycle.publish_period_sec = day / 8.0;
    retention_options.lifecycle.retain_epochs = 3;
    retention_options.lifecycle.epoch_bytes = 1ull << 30;
    retention_options.lifecycle.cold_extra_sec = 0.15;
    const ScenarioReport retention =
        runServiceScenario(retention_options, retention_tenants);

    const StoreSoak soak = runStoreSoak();

    // --- Gates -----------------------------------------------------------
    bool admitted_meet_slo = true;
    for (const TenantReport& t : controlled.tenants) {
        if (t.admitted && !t.slo_met)
            admitted_meet_slo = false;
    }

    const TenantReport* backfill_c = find(controlled, "backfill");
    const bool overload_rejected = backfill_c != nullptr &&
                                   !backfill_c->admitted &&
                                   !backfill_c->reject_reason.empty();

    bool uncontrolled_violates = false;
    for (const TenantReport& t : uncontrolled.tenants) {
        if (t.admitted && !t.slo_met)
            uncontrolled_violates = true;
    }

    const TenantReport* eval_c = find(controlled, "eval");
    const TenantReport* eval_u = find(uncontrolled, "eval");
    const bool queue_bounded =
        eval_c != nullptr && eval_u != nullptr &&
        eval_c->max_queue_occupancy == eval_c->queue_capacity &&
        eval_u->max_queue_occupancy <= eval_u->queue_capacity;

    // Retention gates: footprint bounded with real retirements, the
    // held historical pin survives and streams cold, and hot-tier
    // (head) reads are both dominant and faster than cold-pin reads.
    const LifecycleReport& lc = retention.lifecycle;
    const bool retention_footprint_bounded =
        lc.footprint_bounded && lc.epochs_retired > 0;
    const TenantReport* backfill_r = find(retention, "backfill");
    const bool pinned_epoch_survives =
        backfill_r != nullptr && backfill_r->admitted &&
        backfill_r->pinned_epoch != 0 && backfill_r->cold_served > 0 &&
        lc.epochs_kept_pinned > 0;
    const bool tiering_separates =
        lc.hot_served > 0 && lc.cold_served > 0 &&
        lc.hot_hit_rate >= 0.5 &&
        lc.mean_cold_latency_sec > lc.mean_hot_latency_sec;

    // Real-storage soak gates.
    const bool store_footprint_bounded = soak.ran && soak.footprint_ok &&
                                         soak.epochs_retired > 0;
    const bool store_pinned_replay =
        soak.ran && soak.pinned_never_retired &&
        soak.pinned_replay_identical && soak.pinned_served_cold;
    const bool store_tiering =
        soak.ran && soak.head_served_hot &&
        soak.scrub_pages_prioritized > 0;

    const bool gates_ok = admitted_meet_slo && overload_rejected &&
                          uncontrolled_violates && queue_bounded &&
                          retention_footprint_bounded &&
                          pinned_epoch_survives && tiering_separates &&
                          store_footprint_bounded && store_pinned_replay &&
                          store_tiering;

    std::printf("{\n"
                "  \"bench\": \"service\",\n"
                "  \"quick\": %s,\n"
                "  \"devices\": %d,\n"
                "  \"service_sec\": %.3f,\n"
                "  \"duration_sec\": %.0f,\n"
                "  \"seed\": %llu,\n",
                quick ? "true" : "false", options.devices,
                options.service_sec, options.duration_sec,
                static_cast<unsigned long long>(options.seed));
    printRun("controlled", controlled, tenants);
    printRun("uncontrolled", uncontrolled, tenants);

    std::printf(
        "  \"retention\": {\n"
        "    \"days\": %d, \"publish_period_sec\": %.1f, "
        "\"retain_epochs\": %zu, \"epoch_bytes\": %llu, "
        "\"cold_extra_sec\": %.3f,\n"
        "    \"epochs_published\": %llu, \"epochs_retired\": %llu, "
        "\"epochs_kept_pinned\": %llu, \"peak_live_epochs\": %llu, "
        "\"peak_live_bytes\": %llu, \"final_live_bytes\": %llu, "
        "\"footprint_bounded\": %s,\n"
        "    \"hot_served\": %llu, \"cold_served\": %llu, "
        "\"hot_hit_rate\": %.4f, \"mean_hot_latency_sec\": %.6e, "
        "\"mean_cold_latency_sec\": %.6e, "
        "\"p99_cold_latency_sec\": %.6e,\n"
        "    \"tenants\": [\n",
        days, retention_options.lifecycle.publish_period_sec,
        retention_options.lifecycle.retain_epochs,
        static_cast<unsigned long long>(
            retention_options.lifecycle.epoch_bytes),
        retention_options.lifecycle.cold_extra_sec,
        static_cast<unsigned long long>(lc.epochs_published),
        static_cast<unsigned long long>(lc.epochs_retired),
        static_cast<unsigned long long>(lc.epochs_kept_pinned),
        static_cast<unsigned long long>(lc.peak_live_epochs),
        static_cast<unsigned long long>(lc.peak_live_bytes),
        static_cast<unsigned long long>(lc.final_live_bytes),
        lc.footprint_bounded ? "true" : "false",
        static_cast<unsigned long long>(lc.hot_served),
        static_cast<unsigned long long>(lc.cold_served),
        lc.hot_hit_rate, lc.mean_hot_latency_sec,
        lc.mean_cold_latency_sec, lc.p99_cold_latency_sec);
    for (size_t i = 0; i < retention.tenants.size(); ++i) {
        const TenantReport& t = retention.tenants[i];
        const ScenarioTenant& spec = retention_tenants[i];
        std::printf(
            "      {\"name\": \"%s\", \"pin_lag_epochs\": %llu, "
            "\"pinned_epoch\": %llu, \"hot_served\": %llu, "
            "\"cold_served\": %llu, \"p99_latency_sec\": %.6e}%s\n",
            t.name.c_str(),
            static_cast<unsigned long long>(spec.pin_lag_epochs),
            static_cast<unsigned long long>(t.pinned_epoch),
            static_cast<unsigned long long>(t.hot_served),
            static_cast<unsigned long long>(t.cold_served),
            t.p99_latency_sec,
            i + 1 == retention.tenants.size() ? "" : ",");
    }
    std::printf("    ]\n  },\n");

    std::printf(
        "  \"retention_store\": {\n"
        "    \"ran\": %s, \"epochs_published\": %llu, "
        "\"epochs_retired\": %llu, \"epochs_kept_pinned\": %llu, "
        "\"partitions_retired\": %llu, \"bytes_reclaimed\": %llu,\n"
        "    \"epoch_bytes\": %llu, \"final_live_bytes\": %llu, "
        "\"bound_bytes\": %llu, \"footprint_ok\": %s,\n"
        "    \"pinned_never_retired\": %s, "
        "\"pinned_replay_identical\": %s, \"pinned_served_cold\": %s, "
        "\"head_served_hot\": %s,\n"
        "    \"scrub_pages_total\": %llu, "
        "\"scrub_pages_prioritized\": %llu\n"
        "  },\n",
        soak.ran ? "true" : "false",
        static_cast<unsigned long long>(soak.epochs_published),
        static_cast<unsigned long long>(soak.epochs_retired),
        static_cast<unsigned long long>(soak.epochs_kept_pinned),
        static_cast<unsigned long long>(soak.partitions_retired),
        static_cast<unsigned long long>(soak.bytes_reclaimed),
        static_cast<unsigned long long>(soak.epoch_bytes),
        static_cast<unsigned long long>(soak.live_bytes_final),
        static_cast<unsigned long long>(soak.bound_bytes),
        soak.footprint_ok ? "true" : "false",
        soak.pinned_never_retired ? "true" : "false",
        soak.pinned_replay_identical ? "true" : "false",
        soak.pinned_served_cold ? "true" : "false",
        soak.head_served_hot ? "true" : "false",
        static_cast<unsigned long long>(soak.scrub_pages_total),
        static_cast<unsigned long long>(soak.scrub_pages_prioritized));

    std::printf("  \"gates\": {\"admitted_meet_slo_controlled\": %s, "
                "\"overload_rejected_with_reason\": %s, "
                "\"uncontrolled_violates_slo\": %s, "
                "\"stalled_queue_bounded\": %s,\n"
                "            \"retention_footprint_bounded\": %s, "
                "\"pinned_epoch_survives\": %s, "
                "\"tiering_separates_hot_cold\": %s,\n"
                "            \"store_footprint_bounded\": %s, "
                "\"store_pinned_replay_identical\": %s, "
                "\"store_hot_tier_and_scrub_priority\": %s},\n"
                "  \"gates_ok\": %s\n}\n",
                admitted_meet_slo ? "true" : "false",
                overload_rejected ? "true" : "false",
                uncontrolled_violates ? "true" : "false",
                queue_bounded ? "true" : "false",
                retention_footprint_bounded ? "true" : "false",
                pinned_epoch_survives ? "true" : "false",
                tiering_separates ? "true" : "false",
                store_footprint_bounded ? "true" : "false",
                store_pinned_replay ? "true" : "false",
                store_tiering ? "true" : "false",
                gates_ok ? "true" : "false");

    if (!gates_ok) {
        std::fprintf(stderr, "bench_service: gate failure (see JSON)\n");
        return 1;
    }
    return 0;
}
