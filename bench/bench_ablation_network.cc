/**
 * @file
 * Ablation: storage-node network pressure. A storage node serving a
 * disaggregated preprocessing pool must push every job's *raw* bytes
 * through its NIC; with PreSto only the (smaller) train-ready tensors
 * leave the node. This bench derives, per workload, how many
 * preprocessing workers one storage node's 10 GbE NIC can feed before
 * saturating — the fleet-scale pressure Section VI-A describes.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/calibration.h"
#include "models/cpu_model.h"
#include "models/gpu_model.h"
#include "models/data_size.h"

using namespace presto;

int
main()
{
    printSection("Ablation: storage-node NIC saturation (10 GbE)");

    TablePrinter table({"Model", "Raw bytes/batch", "Tensor bytes/batch",
                        "NIC bytes saved/batch", "Disagg cores/NIC",
                        "8xA100 job NIC load (Disagg)",
                        "8xA100 job NIC load (PreSto)"});
    for (const auto& cfg : allRmConfigs()) {
        CpuWorkerModel cpu(cfg);
        GpuTrainModel gpu(cfg);
        const double raw = rawEncodedBytes(cfg);
        const double tensors = miniBatchBytes(cfg);
        const double demand = gpu.maxThroughput() * 8;  // batches/sec

        // One disaggregated core pulls raw bytes at its batch rate; how
        // many cores can a 10 GbE storage node feed?
        const double core_raw_rate = raw * cpu.throughputPerCore();
        const double cores_per_nic =
            cal::kNetworkBytesPerSec / core_raw_rate;

        // Whole-job steady-state traffic on the datacenter fabric.
        const double disagg_load = (raw + tensors) * demand;
        const double presto_load = tensors * demand;

        table.addRow({cfg.name, formatBytes(raw), formatBytes(tensors),
                      formatBytes(raw),  // exactly the raw hop disappears
                      formatDouble(cores_per_nic, 0),
                      formatBandwidth(disagg_load),
                      formatBandwidth(presto_load)});
    }
    table.print();

    std::printf("\nOne 10 GbE storage node can feed raw data to only ~19 "
                "disaggregated cores for the production workloads (an "
                "RM5 job needs 300+), forcing wide striping; PreSto "
                "removes the raw hop entirely, cutting a job's fabric "
                "load by the raw/tensor ratio (~2.6x for RM5) and leaving "
                "only train-ready tensors on the network. Sustaining a "
                "full job's tensor stream still asks for >10 GbE "
                "storage-node uplinks -- which is why the train manager "
                "spreads its SmartSSDs across storage nodes.\n");
    return 0;
}
