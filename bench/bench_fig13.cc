/**
 * @file
 * Figure 13: aggregate RPC time for inter-node data movement per
 * mini-batch, Disagg vs PreSto.
 */
#include "common/table_printer.h"
#include "common/units.h"
#include "models/network_model.h"

using namespace presto;

int
main()
{
    printSection("Figure 13: RPC-invoked inter-node communication time "
                 "per mini-batch");

    const NetworkModel net = NetworkModel::datacenter();

    TablePrinter table({"Model", "Disagg raw-in", "Disagg tensors-out",
                        "Disagg total", "PreSto tensors-out", "PreSto total",
                        "Reduction"});
    double reduction_sum = 0;
    for (const auto& cfg : allRmConfigs()) {
        const RpcBreakdown d = net.disaggRpc(cfg);
        const RpcBreakdown p = net.prestoRpc(cfg);
        const double reduction = d.total() / p.total();
        reduction_sum += reduction;
        table.addRow({cfg.name, formatTime(d.raw_in_seconds),
                      formatTime(d.tensors_out_seconds), formatTime(d.total()),
                      formatTime(p.tensors_out_seconds), formatTime(p.total()),
                      formatDouble(reduction, 2) + "x"});
    }
    table.print();

    std::printf("\nAverage RPC communication-time reduction: %.2fx "
                "(paper: 2.9x)\n", reduction_sum / 5);
    return 0;
}
